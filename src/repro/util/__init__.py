"""Shared utilities: time handling, humanised formatting, operation log."""

from repro.util.timefmt import (
    MICROS_PER_SECOND,
    parse_iso8601,
    format_iso8601,
    day_of_year,
    from_ymd,
)
from repro.util.human import format_bytes, format_duration
from repro.util.oplog import OperationLog, OpEntry

__all__ = [
    "MICROS_PER_SECOND",
    "parse_iso8601",
    "format_iso8601",
    "day_of_year",
    "from_ymd",
    "format_bytes",
    "format_duration",
    "OperationLog",
    "OpEntry",
]
