"""Humanised formatting for sizes and durations, used by demo/bench output."""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def format_bytes(count: float) -> str:
    """Render a byte count like ``3.2 MiB`` (two significant decimals)."""
    value = float(count)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration like ``1.24 s``, ``380 ms`` or ``12.5 us``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= 60.0:
        minutes = int(seconds // 60)
        return f"{minutes}m{seconds - 60 * minutes:04.1f}s"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table (paper-style bench output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
