"""Structured operation log — demo capability (8).

The paper's GUI lets the audience "look through the log to see what
operations are performed and in which order".  :class:`OperationLog` is the
library-wide equivalent: subsystems append :class:`OpEntry` records
(category + message + structured detail), and the demo/examples render them.

The log is intentionally append-only and cheap; it is also what the test
suite inspects to assert *behavioural* properties such as "a cache hit
performs no file extraction".
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class OpEntry:
    """One logged operation."""

    seq: int
    wall_time: float
    category: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = ""
        if self.detail:
            pairs = ", ".join(f"{k}={v}" for k, v in self.detail.items())
            extras = f"  [{pairs}]"
        return f"#{self.seq:05d} {self.category:<12} {self.message}{extras}"


class OperationLog:
    """Append-only structured log shared by the engine and the ETL layer."""

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter) -> None:
        self._entries: list[OpEntry] = []
        self._clock = clock
        self._counter = itertools.count(1)
        self._listeners: list[Callable[[OpEntry], None]] = []
        # Concurrent sessions log through one shared instance; keep the
        # seq/append pair atomic so orderings stay coherent.
        self._lock = threading.Lock()

    def record(self, category: str, message: str, **detail: Any) -> OpEntry:
        """Append one entry and return it."""
        with self._lock:
            entry = OpEntry(
                seq=next(self._counter),
                wall_time=self._clock(),
                category=category,
                message=message,
                detail=detail,
            )
            self._entries.append(entry)
            listeners = list(self._listeners)
        for listener in listeners:
            listener(entry)
        return entry

    def subscribe(self, listener: Callable[[OpEntry], None]) -> None:
        """Register a callback invoked for every new entry (demo live view)."""
        self._listeners.append(listener)

    def entries(self, category: str | None = None) -> list[OpEntry]:
        """All entries, optionally filtered by category."""
        if category is None:
            return list(self._entries)
        return [e for e in self._entries if e.category == category]

    def categories(self) -> list[str]:
        """Distinct categories in first-seen order."""
        seen: dict[str, None] = {}
        for entry in self._entries:
            seen.setdefault(entry.category, None)
        return list(seen)

    def clear(self) -> None:
        self._entries.clear()

    def tail(self, count: int = 20) -> list[OpEntry]:
        """The most recent ``count`` entries."""
        return self._entries[-count:]

    def render(self, category: str | None = None) -> str:
        """Human-readable rendering of the (filtered) log."""
        return "\n".join(e.render() for e in self.entries(category))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[OpEntry]:
        return iter(self._entries)
