"""Time representation used throughout the warehouse.

All timestamps are integer **microseconds since the Unix epoch (UTC)**.
Integer microseconds keep sample-time arithmetic exact: an mSEED record's
per-sample timestamps are ``start + round(i * 1e6 / rate)``, which a float
representation would corrupt for long series.

The SQL layer stores TIMESTAMP columns as int64 microsecond arrays; the
mSEED layer converts BTIME fields through :func:`from_ymd`.
"""

from __future__ import annotations

import datetime as _dt

MICROS_PER_SECOND = 1_000_000
MICROS_PER_DAY = 86_400 * MICROS_PER_SECOND

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def from_ymd(
    year: int,
    month: int,
    day: int,
    hour: int = 0,
    minute: int = 0,
    second: int = 0,
    microsecond: int = 0,
) -> int:
    """Convert a calendar date/time (UTC) to epoch microseconds."""
    moment = _dt.datetime(
        year, month, day, hour, minute, second, microsecond, tzinfo=_dt.timezone.utc
    )
    return int((moment - _EPOCH) / _dt.timedelta(microseconds=1))


def from_yday(year: int, yday: int, hour: int = 0, minute: int = 0,
              second: int = 0, microsecond: int = 0) -> int:
    """Convert a (year, day-of-year) date — SEED's native form — to epoch us."""
    base = _dt.datetime(year, 1, 1, tzinfo=_dt.timezone.utc) + _dt.timedelta(days=yday - 1)
    moment = base.replace(hour=hour, minute=minute, second=second, microsecond=microsecond)
    return int((moment - _EPOCH) / _dt.timedelta(microseconds=1))


def to_datetime(micros: int) -> _dt.datetime:
    """Convert epoch microseconds to an aware UTC datetime."""
    return _EPOCH + _dt.timedelta(microseconds=int(micros))


def day_of_year(micros: int) -> tuple[int, int]:
    """Return ``(year, day_of_year)`` for an epoch-microsecond timestamp."""
    moment = to_datetime(micros)
    return moment.year, moment.timetuple().tm_yday


def parse_iso8601(text: str) -> int:
    """Parse an ISO-8601 timestamp or date into epoch microseconds.

    Accepts the forms used by the paper's queries, e.g.
    ``2010-01-12T22:15:00.000``, ``2010-01-12 22:15:00``, ``2010-01-12``.
    A trailing ``Z`` or explicit offset is honoured; naive stamps are UTC.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty timestamp literal")
    normalized = text.replace(" ", "T", 1) if " " in text and "T" not in text else text
    if normalized.endswith("Z"):
        normalized = normalized[:-1] + "+00:00"
    try:
        if "T" in normalized:
            moment = _dt.datetime.fromisoformat(normalized)
        else:
            moment = _dt.datetime.fromisoformat(normalized + "T00:00:00")
    except ValueError as exc:
        raise ValueError(f"invalid timestamp literal {text!r}") from exc
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH) / _dt.timedelta(microseconds=1))


def format_iso8601(micros: int, *, millis: bool = True) -> str:
    """Format epoch microseconds as ``YYYY-MM-DDTHH:MM:SS.mmm`` (UTC).

    With ``millis=False`` the full microsecond precision is printed.
    """
    moment = to_datetime(int(micros))
    base = moment.strftime("%Y-%m-%dT%H:%M:%S")
    if millis:
        return f"{base}.{moment.microsecond // 1000:03d}"
    return f"{base}.{moment.microsecond:06d}"


def sample_interval_us(rate_hz: float) -> float:
    """Microseconds between consecutive samples at ``rate_hz``."""
    if rate_hz <= 0:
        raise ValueError(f"sample rate must be positive, got {rate_hz}")
    return MICROS_PER_SECOND / rate_hz
