"""Lazy ETL for scientific data warehouses.

A from-scratch reproduction of Kargın et al., *Lazy ETL in Action: ETL
Technology Dates Scientific Data* (PVLDB 6(12), 2013) and its companion
system paper (BIRTE 2012): a scientific data warehouse whose initial
loading covers only metadata, with actual data extracted, transformed and
loaded transparently at query time.

Quickstart::

    from repro import SeismicWarehouse, build_repository, fig1_query1

    manifest = build_repository("/tmp/mseed-repo")
    wh = SeismicWarehouse("/tmp/mseed-repo", mode="lazy")
    print(wh.query(fig1_query1()).format())

Packages:

* :mod:`repro.mseed` — the mSEED file-format substrate (Steim codecs,
  records, synthetic repositories);
* :mod:`repro.api` — the unified client API: Connection / Cursor /
  PreparedStatement with streaming fetch and plan caching;
* :mod:`repro.db` — the columnar SQL engine (MonetDB stand-in) with
  run-time plan rewriting and intermediate-result recycling;
* :mod:`repro.etl` — the Lazy ETL core plus eager and external baselines;
* :mod:`repro.service` — concurrent query serving: admission control,
  session fairness, single-flight extraction coalescing;
* :mod:`repro.net` — the wire protocol: TCP server with server-side
  cursors, sync and asyncio remote clients, the ``repro-serve`` CLI;
* :mod:`repro.seismology` — the demo application: schema, Figure-1
  queries, STA/LTA event hunting, metadata browsing;
* :mod:`repro.bench` — workload generators and the experiment harness.
"""

import logging as _logging

from repro.api import Connection, Cursor, PreparedStatement, connect
from repro.db import Database, Result
from repro.etl import (
    EagerETL,
    ExternalTableETL,
    ExtractionCache,
    Granularity,
    LazyETL,
    MSeedAdapter,
    MetadataSync,
)
from repro.mseed import (
    Repository,
    RepositorySpec,
    SimulatedRemoteRepository,
    build_repository,
)
from repro.net import connect_tcp, connect_tcp_async
from repro.seismology import (
    SeismicWarehouse,
    analytical_suite,
    fig1_query1,
    fig1_query2,
    hunt_events,
)
from repro.service import ServiceConfig, WarehouseService

# Library convention: the package root gets a NullHandler so subsystem
# loggers ("repro.service", "repro.etl.lazy", ...) stay silent until the
# application configures logging — and background threads never print
# "no handler could be found" warnings.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Connection",
    "Cursor",
    "PreparedStatement",
    "connect",
    "connect_tcp",
    "connect_tcp_async",
    "Database",
    "Result",
    "LazyETL",
    "EagerETL",
    "ExternalTableETL",
    "ExtractionCache",
    "Granularity",
    "MSeedAdapter",
    "MetadataSync",
    "Repository",
    "RepositorySpec",
    "SimulatedRemoteRepository",
    "build_repository",
    "SeismicWarehouse",
    "ServiceConfig",
    "WarehouseService",
    "analytical_suite",
    "fig1_query1",
    "fig1_query2",
    "hunt_events",
    "__version__",
]
