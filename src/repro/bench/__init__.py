"""Benchmark support: workload generation, experiment harness, reporting.

Each experiment Ei from DESIGN.md §4 has a ``run_eN`` function in
:mod:`repro.bench.harness` that builds its workload, measures the three
ingestion strategies and returns an :class:`~repro.bench.reporting.ExperimentTable`
whose rows mirror what the paper reports.  The pytest benches under
``benchmarks/`` and the ``EXPERIMENTS.md`` generator both call these.
"""

from repro.bench.reporting import ExperimentTable
from repro.bench.workload import (
    RepoScale,
    SCALES,
    build_scaled_repo,
    shared_demo_repo,
    stream_window_queries,
)
from repro.bench import harness

__all__ = [
    "ExperimentTable",
    "RepoScale",
    "SCALES",
    "build_scaled_repo",
    "shared_demo_repo",
    "stream_window_queries",
    "harness",
]
