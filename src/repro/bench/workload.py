"""Workload generation for the experiments.

Repositories are generated once per (scale, seed) into a module-level
registry of temporary directories, so one pytest session shares them
across benches instead of re-synthesising waveforms per test.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.mseed.inventory import DEFAULT_INVENTORY
from repro.mseed.synthesize import (
    RepositoryManifest,
    RepositorySpec,
    build_repository,
)
from repro.util.timefmt import MICROS_PER_SECOND, format_iso8601


@dataclass(frozen=True)
class RepoScale:
    """A repository size point for the loading sweep (E1)."""

    name: str
    n_stations: int
    channels: tuple[str, ...]
    files_per_stream: int
    file_span_minutes: int

    @property
    def n_files(self) -> int:
        return self.n_stations * len(self.channels) * self.files_per_stream


SCALES: dict[str, RepoScale] = {
    "S": RepoScale("S", 3, ("BHZ",), 1, 5),
    "M": RepoScale("M", 6, ("BHE", "BHN", "BHZ"), 1, 5),
    "L": RepoScale("L", 9, ("BHE", "BHN", "BHZ"), 2, 5),
}

_REPO_REGISTRY: dict[tuple, tuple[str, RepositoryManifest]] = {}


def _cleanup_registry() -> None:  # pragma: no cover - process teardown
    for path, _manifest in _REPO_REGISTRY.values():
        shutil.rmtree(path, ignore_errors=True)


atexit.register(_cleanup_registry)


def build_scaled_repo(scale: RepoScale,
                      *, seed: int = 20130826) -> tuple[str, RepositoryManifest]:
    """Build (or reuse) the repository for a scale point."""
    key = (scale, seed)
    if key not in _REPO_REGISTRY:
        root = tempfile.mkdtemp(prefix=f"lazyetl-{scale.name}-")
        spec = RepositorySpec(
            stations=DEFAULT_INVENTORY[: scale.n_stations],
            channel_codes=scale.channels,
            files_per_stream=scale.files_per_stream,
            file_span_minutes=scale.file_span_minutes,
        )
        manifest = build_repository(root, spec, seed=seed)
        _REPO_REGISTRY[key] = (root, manifest)
    return _REPO_REGISTRY[key]


def shared_demo_repo(*, seed: int = 20130826) -> tuple[str, RepositoryManifest]:
    """The default paper-day repository shared by E2/E3/E5/E8.

    Nine stations, three broadband channels, two 10-minute windows from
    2010-01-12T22:00 — large enough that full scans visibly hurt, small
    enough for a test session.
    """
    key = ("demo", seed)
    if key not in _REPO_REGISTRY:
        root = tempfile.mkdtemp(prefix="lazyetl-demo-")
        manifest = build_repository(root, RepositorySpec(files_per_stream=2),
                                    seed=seed)
        _REPO_REGISTRY[key] = (root, manifest)
    return _REPO_REGISTRY[key]


def stream_window_queries(
    manifest: RepositoryManifest,
    count: int,
    *,
    window_seconds: float = 30.0,
    seed: int = 7,
    view: str = "mseed.dataview",
) -> list[str]:
    """Random point queries, each over one stream and a short window.

    The E5/E7 workloads: every query is selective (one station, one
    channel, ``window_seconds`` of data), the kind of ad-hoc exploration
    the paper argues lazy ETL serves best.
    """
    rng = np.random.default_rng(seed)
    entries = manifest.entries
    queries = []
    for _ in range(count):
        entry = entries[int(rng.integers(len(entries)))]
        span = entry.end_time_us - entry.start_time_us
        window_us = round(window_seconds * MICROS_PER_SECOND)
        offset = int(rng.integers(max(span - window_us, 1)))
        start = entry.start_time_us + offset
        queries.append(
            f"""SELECT AVG(D.sample_value), COUNT(*)
FROM {view}
WHERE F.station = '{entry.station}' AND F.channel = '{entry.channel}'
AND D.sample_time >= '{format_iso8601(start)}'
AND D.sample_time < '{format_iso8601(start + window_us)}'"""
        )
    return queries


def full_stream_query(station: str, channel: str,
                      view: str = "mseed.dataview") -> str:
    """A query scanning one entire stream (used by the E7 crossover)."""
    return (
        f"SELECT MIN(D.sample_value), MAX(D.sample_value), COUNT(*) "
        f"FROM {view} WHERE F.station = '{station}' "
        f"AND F.channel = '{channel}'"
    )
