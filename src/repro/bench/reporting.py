"""Paper-style result tables."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """One experiment's output: a titled table plus interpretation notes."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    reports: dict = field(default_factory=dict)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def attach_report(self, label: str, report) -> None:
        """Keep a labelled :class:`QueryReport` alongside the table.

        Stored via ``report.to_dict()``, so the JSON artifacts pick up
        new engine counters automatically as the report grows.
        """
        self.reports[label] = report.to_dict()

    def render(self) -> str:
        from repro.util.human import format_table

        lines = [f"[{self.experiment}] {self.title}",
                 format_table(self.headers, self.rows)]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self, **extra: object) -> dict:
        """Machine-readable form (the ``BENCH_E*.json`` artifacts).

        ``extra`` lets the runner attach environment/params/timing
        metadata alongside the table itself.
        """
        payload: dict = {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
        if self.reports:
            payload["reports"] = dict(self.reports)
        payload.update(extra)
        return payload

    def to_json(self, path: str, **extra: object) -> None:
        """Write :meth:`to_dict` to ``path`` (tracked across PRs by CI)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(**extra), handle, indent=2, default=str)
            handle.write("\n")

    def markdown(self) -> str:
        lines = [f"### {self.experiment} — {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)
