"""The experiment harness: one ``run_eN`` per DESIGN.md experiment.

All functions are pure "build → measure → tabulate"; they create their
warehouses on the shared workload repositories and return an
:class:`~repro.bench.reporting.ExperimentTable` whose rows carry the same
quantities the paper (and its companion BIRTE'12 evaluation) reports.
Absolute numbers depend on this Python substrate; the *shapes* are the
reproduction target.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.bench.reporting import ExperimentTable
from repro.bench.workload import (
    SCALES,
    RepoScale,
    build_scaled_repo,
    full_stream_query,
    shared_demo_repo,
    stream_window_queries,
)
from repro.etl.metadata import Granularity
from repro.mseed.synthesize import RepositoryManifest, WaveformSynthesizer
from repro.seismology.queries import analytical_suite, fig1_query1, fig1_query2
from repro.seismology.warehouse import SeismicWarehouse
from repro.util.human import format_bytes, format_duration


def _timed(fn: Callable) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


# ---------------------------------------------------------------------------
# E1 — initial loading & time-to-first-answer
# ---------------------------------------------------------------------------


def run_e1(scales: list[str] | None = None) -> ExperimentTable:
    """Initial-load time and time-to-first-answer across repository sizes."""
    table = ExperimentTable(
        "E1", "initial loading and time to first answer (§1, §4 items 1/3)",
        ["scale", "files", "samples", "mode", "load", "first query",
         "time-to-answer"],
    )
    for name in scales or list(SCALES):
        scale = SCALES[name]
        root, manifest = build_scaled_repo(scale)
        station = manifest.entries[0].station
        channel = manifest.entries[0].channel
        probe = full_stream_query(station, channel)
        for mode in ("lazy", "eager", "external"):
            load_s, wh = _timed(lambda m=mode: SeismicWarehouse(root, mode=m))
            query_s, _ = _timed(lambda w=wh: w.query(probe))
            table.add_row(
                scale.name, scale.n_files, manifest.total_samples, mode,
                format_duration(load_s), format_duration(query_s),
                format_duration(load_s + query_s),
            )
    table.add_note(
        "lazy loads only metadata: near-instant readiness; eager pays full "
        "extraction up front; external loads nothing but re-extracts the "
        "whole repository per query."
    )
    return table


# ---------------------------------------------------------------------------
# E2 / E3 — the Figure-1 queries
# ---------------------------------------------------------------------------


def _fig1_experiment(eid: str, sql: str, title: str) -> ExperimentTable:
    root, _manifest = shared_demo_repo()
    table = ExperimentTable(
        eid, title, ["mode", "latency", "rows extracted", "files touched"],
    )
    lazy = SeismicWarehouse(root, mode="lazy")
    cold_s, _ = _timed(lambda: lazy.query(sql))
    cold_extracted = lazy.db.last_report.rows_extracted
    table.attach_report("lazy cold", lazy.db.last_report)
    cold_files = len(lazy.files_extracted_by_last_query())
    warm_s, _ = _timed(lambda: lazy.query(sql))
    warm_extracted = lazy.db.last_report.rows_extracted
    table.attach_report("lazy warm", lazy.db.last_report)

    # Cache-hit path without the plan-level recycler: extraction cache only.
    nocache = SeismicWarehouse(root, mode="lazy", enable_recycler=False)
    nocache.query(sql)
    cachehit_s, _ = _timed(lambda: nocache.query(sql))
    cachehit_extracted = nocache.db.last_report.rows_extracted

    eager = SeismicWarehouse(root, mode="eager")
    eager_s, _ = _timed(lambda: eager.query(sql))

    external = SeismicWarehouse(root, mode="external")
    external_s, _ = _timed(lambda: external.query(sql))
    external_extracted = external.db.last_report.rows_extracted

    table.add_row("lazy (cold)", format_duration(cold_s), cold_extracted,
                  cold_files)
    table.add_row("lazy (warm, recycler)", format_duration(warm_s),
                  warm_extracted, 0)
    table.add_row("lazy (warm, cache only)", format_duration(cachehit_s),
                  cachehit_extracted, 0)
    table.add_row("eager (post-load)", format_duration(eager_s), 0, 0)
    table.add_row("external", format_duration(external_s),
                  external_extracted, "all")
    table.add_note(
        "eager excludes its initial load (see E1); external re-extracts "
        "everything on every query."
    )
    return table


def run_e2() -> ExperimentTable:
    """Figure 1 Q1: the 2-second STA window at ISK.BHE."""
    return _fig1_experiment("E2", fig1_query1(),
                            "Figure 1 Q1 — short-term average (ISK, BHE)")


def run_e3() -> ExperimentTable:
    """Figure 1 Q2: min/max per NL station on BHZ."""
    return _fig1_experiment("E3", fig1_query2(),
                            "Figure 1 Q2 — min/max per NL station (BHZ)")


# ---------------------------------------------------------------------------
# E4 — storage blow-up
# ---------------------------------------------------------------------------


def run_e4() -> ExperimentTable:
    """Warehouse storage vs. the compressed repository (the ~10x claim)."""
    root, manifest = shared_demo_repo()
    table = ExperimentTable(
        "E4", "storage footprint vs repository size (§4: 'up to 10 times')",
        ["configuration", "bytes", "x repository"],
    )
    repo_bytes = manifest.total_bytes
    table.add_row("repository (Steim-2 mSEED)", format_bytes(repo_bytes), "1.00x")

    lazy = SeismicWarehouse(root, mode="lazy")
    meta_bytes = lazy.warehouse_bytes()
    table.add_row("lazy warehouse (metadata only)", format_bytes(meta_bytes),
                  f"{meta_bytes / repo_bytes:.2f}x")

    eager = SeismicWarehouse(root, mode="eager")
    eager_bytes = eager.warehouse_bytes()
    table.add_row("eager warehouse (fully loaded)", format_bytes(eager_bytes),
                  f"{eager_bytes / repo_bytes:.2f}x")

    # Lazy after the workload has touched everything: cache holds actual data.
    lazy.query(fig1_query2(network="NL"))
    lazy.query(fig1_query2(network="KO"))
    lazy.query(fig1_query2(network="GE"))
    touched_bytes = lazy.warehouse_bytes()
    table.add_row("lazy warehouse + extraction cache (after BHZ workload)",
                  format_bytes(touched_bytes),
                  f"{touched_bytes / repo_bytes:.2f}x")
    table.add_note(
        "eager materialises 8-byte timestamps plus 8-byte values per sample "
        "for ~1.3 compressed bytes per sample in the repository — the "
        "paper's order-of-magnitude blow-up."
    )
    return table


# ---------------------------------------------------------------------------
# E5 — extraction cache behaviour
# ---------------------------------------------------------------------------


def run_e5(*, queries: int = 24, policies: tuple[str, ...] = ("lru", "fifo", "cost")
           ) -> ExperimentTable:
    """Cache hit rates and latency under budget pressure and policies."""
    root, manifest = shared_demo_repo()
    workload = stream_window_queries(manifest, queries, seed=11)
    # Size the budget relative to the fully-extracted data footprint.
    probe = SeismicWarehouse(root, mode="lazy")
    for sql in workload:
        probe.query(sql)
    full_bytes = max(probe.cache.used_bytes, 1)

    table = ExperimentTable(
        "E5", "extraction cache: budget pressure and eviction policy (§3.3)",
        ["policy", "budget", "pass-1 time", "pass-2 time", "hit rate",
         "evictions"],
    )
    for policy in policies:
        for fraction in (1.0, 0.25, 0.05):
            budget = max(int(full_bytes * fraction), 64 * 1024)
            wh = SeismicWarehouse(root, mode="lazy",
                                  cache_budget_bytes=budget,
                                  cache_policy=policy,
                                  enable_recycler=False)
            pass1, _ = _timed(lambda: [wh.query(q) for q in workload])
            pass2, _ = _timed(lambda: [wh.query(q) for q in workload])
            stats = wh.cache.stats
            table.add_row(
                policy, f"{fraction:.0%}", format_duration(pass1),
                format_duration(pass2), f"{stats.hit_rate:.0%}",
                stats.evictions,
            )
    table.add_note(
        "at 100% budget the second pass is pure cache hits ('no ETL process "
        "needs to be performed'); shrinking the budget forces re-extraction."
    )
    return table


# ---------------------------------------------------------------------------
# E6 — refresh after repository updates
# ---------------------------------------------------------------------------


def _modify_files(manifest: RepositoryManifest, repo_root: str,
                  count: int) -> list[str]:
    """Overwrite ``count`` files with freshly synthesised content."""
    from repro.mseed.files import write_mseed_file
    from repro.mseed.inventory import DEFAULT_INVENTORY
    import os

    synth = WaveformSynthesizer([], seed=99)
    stations = {s.code: s for s in DEFAULT_INVENTORY}
    touched = []
    for entry in manifest.entries[:count]:
        station = stations[entry.station]
        channel = next(c for c in station.channels if c.code == entry.channel)
        samples = synth.synthesize(
            station, channel, entry.start_time_us, entry.n_samples
        )
        write_mseed_file(
            entry.path,
            network=entry.network, station=entry.station,
            location=entry.location, channel=entry.channel,
            start_time_us=entry.start_time_us,
            sample_rate=entry.sample_rate, samples=samples,
        )
        stat = os.stat(entry.path)
        os.utime(entry.path, ns=(stat.st_atime_ns,
                                 stat.st_mtime_ns + 1_000_000_000))
        touched.append(os.path.relpath(entry.path, repo_root))
    return touched


def run_e6(*, modified_files: int = 4) -> ExperimentTable:
    """Refresh cost after updating files: lazy vs eager."""
    import shutil
    import tempfile

    source_root, manifest = shared_demo_repo()
    # Private copy: this experiment mutates the repository.
    root = tempfile.mkdtemp(prefix="lazyetl-e6-")
    shutil.copytree(source_root, root, dirs_exist_ok=True)
    private = RepositoryManifest(
        root=root, spec=manifest.spec,
        entries=[
            type(e)(**{**e.__dict__,
                       "path": e.path.replace(source_root, root)})
            for e in manifest.entries
        ],
        events=manifest.events,
    )

    table = ExperimentTable(
        "E6", f"refresh after modifying {modified_files} files (§1, §3.3)",
        ["mode", "refresh", "next Q2", "rows refetched (cache+extract)"],
    )
    lazy = SeismicWarehouse(root, mode="lazy")
    eager = SeismicWarehouse(root, mode="eager")
    q2 = fig1_query2()
    lazy.query(q2)  # warm the cache so staleness has something to catch
    eager.query(q2)

    _modify_files(private, root, modified_files)

    sync_s, sync_report = _timed(lazy.sync)
    lazy_q_s, _ = _timed(lambda: lazy.query(q2))
    lazy_re = lazy.db.last_report.rows_extracted
    table.add_row("lazy (metadata sync + staleness re-extract)",
                  format_duration(sync_s), format_duration(lazy_q_s), lazy_re)

    refresh_s, refresh_report = _timed(eager.sync)
    eager_q_s, _ = _timed(lambda: eager.query(q2))
    table.add_row("eager (full re-extract of changed files)",
                  format_duration(refresh_s), format_duration(eager_q_s),
                  refresh_report.samples_reloaded)

    # Lazy without an explicit sync: the cache's mtime check alone.
    lazy2 = SeismicWarehouse(root, mode="lazy")
    lazy2.query(q2)
    _modify_files(private, root, modified_files)
    implicit_s, _ = _timed(lambda: lazy2.query(q2))
    table.add_row("lazy (no sync: query-time staleness only)",
                  "0 s", format_duration(implicit_s),
                  lazy2.db.last_report.rows_extracted)
    table.add_note(
        "lazy refresh touches only metadata and the changed files actually "
        "queried; eager must re-extract every changed file immediately."
    )
    shutil.rmtree(root, ignore_errors=True)
    return table


# ---------------------------------------------------------------------------
# E7 — cumulative crossover
# ---------------------------------------------------------------------------


def run_e7() -> ExperimentTable:
    """Cumulative time vs queries: where eager loading amortises (§3.1)."""
    root, manifest = shared_demo_repo()
    streams = sorted({(e.station, e.channel) for e in manifest.entries})
    queries = [full_stream_query(st, ch) for st, ch in streams]

    lazy_load_s, lazy = _timed(lambda: SeismicWarehouse(root, mode="lazy"))
    eager_load_s, eager = _timed(lambda: SeismicWarehouse(root, mode="eager"))

    table = ExperimentTable(
        "E7", "cumulative time to answer k distinct full-stream queries",
        ["k", "lazy cumulative", "eager cumulative", "leader"],
    )
    lazy_total = lazy_load_s
    eager_total = eager_load_s
    crossover = None
    checkpoints = {1, 2, 4, 8, 12, 18, 27, len(queries)}
    for k, sql in enumerate(queries, start=1):
        lazy_s, _ = _timed(lambda q=sql: lazy.query(q))
        eager_s, _ = _timed(lambda q=sql: eager.query(q))
        lazy_total += lazy_s
        eager_total += eager_s
        if crossover is None and eager_total < lazy_total:
            crossover = k
        if k in checkpoints:
            table.add_row(
                k, format_duration(lazy_total), format_duration(eager_total),
                "lazy" if lazy_total <= eager_total else "eager",
            )
    if crossover is None:
        table.add_note(
            "eager never catches up within this workload: every query was "
            "answered lazily before eager finished loading."
        )
    else:
        table.add_note(
            f"eager overtakes lazy after {crossover} distinct full-stream "
            "queries — the paper's worst case (§3.1) where the required "
            "subset approaches the entire repository."
        )
    return table


# ---------------------------------------------------------------------------
# E8 — the analytical suite
# ---------------------------------------------------------------------------


def run_e8() -> ExperimentTable:
    """Per-query latency for the BIRTE'12-style suite in all modes."""
    from repro.seismology.queries import suite_for_external

    root, _manifest = shared_demo_repo()
    suite = analytical_suite()
    lazy = SeismicWarehouse(root, mode="lazy")
    eager = SeismicWarehouse(root, mode="eager")
    external = SeismicWarehouse(root, mode="external")
    ext_suite = suite_for_external(suite)

    table = ExperimentTable(
        "E8", "analytical suite latency (lazy cold/warm vs eager vs external)",
        ["query", "lazy cold", "lazy warm", "eager", "external"],
    )
    for spec, ext_spec in zip(suite, ext_suite):
        cold_s, _ = _timed(lambda s=spec: lazy.query(s.sql))
        table.attach_report(f"{spec.qid} lazy cold", lazy.db.last_report)
        warm_s, _ = _timed(lambda s=spec: lazy.query(s.sql))
        table.attach_report(f"{spec.qid} lazy warm", lazy.db.last_report)
        eager_s, _ = _timed(lambda s=spec: eager.query(s.sql))
        ext_s, _ = _timed(lambda s=ext_spec: external.query(s.sql))
        table.add_row(f"{spec.qid} {spec.title[:38]}",
                      format_duration(cold_s), format_duration(warm_s),
                      format_duration(eager_s), format_duration(ext_s))
    table.add_note(
        "Q8 is metadata-only: lazy answers it without touching a single "
        "payload, external must still scan everything."
    )
    return table


# ---------------------------------------------------------------------------
# E9 — metadata granularity ablation
# ---------------------------------------------------------------------------


def run_e9() -> ExperimentTable:
    """Granularity ablation: filename vs file-header vs per-record."""
    root, _manifest = shared_demo_repo()
    q1 = fig1_query1()
    table = ExperimentTable(
        "E9", "metadata granularity: load cost vs extraction selectivity",
        ["granularity", "load", "metadata rows", "Q1 cold", "rows extracted"],
    )
    for granularity in (Granularity.FILENAME, Granularity.FILE,
                        Granularity.RECORD):
        load_s, wh = _timed(
            lambda g=granularity: SeismicWarehouse(root, mode="lazy",
                                                   granularity=g)
        )
        meta_rows = wh.query(
            "SELECT COUNT(*) FROM mseed.records").scalar()
        q1_s, _ = _timed(lambda w=wh: w.query(q1))
        table.add_row(
            granularity.value, format_duration(load_s), meta_rows,
            format_duration(q1_s), wh.db.last_report.rows_extracted,
        )
    table.add_note(
        "filename metadata is free but extracts whole files; per-record "
        "metadata costs a header scan at load time and prunes extraction "
        "down to the exact records overlapping the query window (§3)."
    )
    return table


# ---------------------------------------------------------------------------
# E10 — format micro-benchmarks
# ---------------------------------------------------------------------------


def run_e10() -> ExperimentTable:
    """Why metadata is cheap: header scans vs full decode, codec speed.

    Also measures the SQL compile path: parse/bind/optimise split for a
    cold Figure-1-style query vs a plan-cache hit, and prepared
    re-execution with rebound parameters — the hot path of repeat
    interactive queries.
    """
    import os

    from repro.mseed import steim
    from repro.mseed.files import read_file, scan_file_headers
    from repro.seismology.queries import fig1_query2_template

    root, manifest = shared_demo_repo()
    paths = [e.path for e in manifest.entries[:6]]
    total_bytes = sum(os.path.getsize(p) for p in paths)
    total_samples = sum(e.n_samples for e in manifest.entries[:6])

    scan_s, _ = _timed(lambda: [scan_file_headers(p) for p in paths])
    full_s, _ = _timed(lambda: [read_file(p) for p in paths])

    rng = np.random.default_rng(3)
    wave = np.cumsum(rng.integers(-80, 80, 200_000)).astype(np.int32)
    enc_s, _ = _timed(lambda: steim.encode_steim2(wave, 10_000))
    payload, count = steim.encode_steim2(wave, 10_000)
    dec_s, _ = _timed(lambda: steim.decode_steim2(payload, count))

    table = ExperimentTable(
        "E10", "format micro-costs: header-only scan vs full decode",
        ["operation", "volume", "time", "throughput"],
    )
    table.add_row("header-only scan (metadata path)",
                  f"{len(paths)} files / {format_bytes(total_bytes)}",
                  format_duration(scan_s),
                  f"{total_samples / max(scan_s, 1e-9):,.0f} samples/s eq.")
    table.add_row("full decode (actual-data path)",
                  f"{len(paths)} files / {total_samples} samples",
                  format_duration(full_s),
                  f"{total_samples / max(full_s, 1e-9):,.0f} samples/s")
    table.add_row("Steim-2 encode", f"{count} samples",
                  format_duration(enc_s),
                  f"{count / max(enc_s, 1e-9):,.0f} samples/s")
    table.add_row("Steim-2 decode", f"{count} samples",
                  format_duration(dec_s),
                  f"{count / max(dec_s, 1e-9):,.0f} samples/s")

    # SQL compile costs: cold parse+bind+optimise vs a plan-cache hit,
    # prepared re-execution across parameter sets (unified API tentpole).
    wh = SeismicWarehouse(root, mode="lazy")
    template = fig1_query2_template()
    _res, cold, _trace = wh.db.query_with_report(
        template, {"network": "NL", "channel": "BHZ"})
    warm_plans = []
    exec_times = []
    for network in ("KO", "GE", "NL"):
        _res, rep, _trace = wh.db.query_with_report(
            template, {"network": network, "channel": "BHZ"})
        warm_plans.append(rep.plan_s)
        exec_times.append(rep.execute_s)
    warm_plan = sum(warm_plans) / len(warm_plans)
    speedup = cold.plan_s / max(warm_plan, 1e-9)
    table.add_row(
        "SQL compile, cold (Fig-1 Q2, parameterised)",
        f"parse {cold.parse_s * 1e3:.2f} ms / bind {cold.bind_s * 1e3:.2f} ms"
        f" / optimise {cold.optimize_s * 1e3:.2f} ms",
        format_duration(cold.plan_s), "1x (baseline)",
    )
    table.add_row(
        "SQL compile, plan-cache hit (prepared re-execution)",
        f"3 re-executions, execute {format_duration(sum(exec_times))}",
        format_duration(warm_plan), f"{speedup:,.0f}x faster",
    )
    table.add_note(
        f"header scanning is {full_s / max(scan_s, 1e-9):.0f}x cheaper than "
        "decoding — the asymmetry metadata-only initial loading exploits."
    )
    table.add_note(
        f"plan-cached re-execution skips parse+bind+optimise entirely: "
        f"{speedup:,.0f}x faster on the compile portion (acceptance "
        "threshold: >= 3x); one compiled plan serves every parameter set."
    )
    return table


# ---------------------------------------------------------------------------
# E11 — persistent storage: warm starts, compression, lazy I/O
# ---------------------------------------------------------------------------


def run_e11() -> ExperimentTable:
    """Storage engine: cold vs warm start, compression ratio, page pruning."""
    import shutil
    import tempfile

    from repro.seismology.queries import fig1_query1

    root, _manifest = shared_demo_repo()
    ckpt = tempfile.mkdtemp(prefix="repro-e11-")
    try:
        table = ExperimentTable(
            "E11", "persistent storage: warm starts, compression, lazy I/O",
            ["phase", "ready-in", "query", "rows extracted",
             "pages read/skipped", "cache hits"],
        )
        q1 = fig1_query1()

        # Cold: harvest + first-query extraction, then checkpoint.
        load_s, cold = _timed(
            lambda: SeismicWarehouse(root, mode="lazy", storage_path=ckpt)
        )
        q_s, _ = _timed(lambda: cold.query(q1))
        table.add_row(
            "cold start", format_duration(load_s), format_duration(q_s),
            cold.db.last_report.rows_extracted,
            "-", cold.cache.stats.hits,
        )
        ckpt_s, entries = _timed(cold.checkpoint)

        # Warm: attach the checkpoint, answer the same query from cache.
        warm_s, warm = _timed(
            lambda: SeismicWarehouse(root, mode="lazy", storage_path=ckpt)
        )
        wq_s, _ = _timed(lambda: warm.query(q1))
        extracted_files = warm.files_extracted_by_last_query()
        report = warm.db.last_report
        table.attach_report("warm start q1", report)
        table.add_row(
            "warm start", format_duration(warm_s), format_duration(wq_s),
            f"{len(extracted_files)} files re-extracted",
            f"{report.pages_read}/{report.pages_skipped}",
            warm.cache.stats.hits,
        )

        # Column pruning: project 1 column of the file-metadata table.
        warm.query("SELECT count(*) FROM mseed.files")
        narrow = warm.db.last_report
        warm.query("SELECT * FROM mseed.files")
        wide = warm.db.last_report
        table.add_row(
            "1-column scan", "-", "-", "-",
            f"{narrow.pages_read}/{narrow.pages_skipped}", "-",
        )
        table.add_row(
            "all-column scan", "-", "-", "-",
            f"{wide.pages_read}/{wide.pages_skipped}", "-",
        )

        # Compression: checkpoint footprint vs resident warehouse bytes.
        disk = warm.store.disk_bytes()
        resident = cold.warehouse_bytes()
        table.add_row(
            "checkpoint", format_duration(ckpt_s), "-",
            f"{entries} cache entries", "-", "-",
        )
        ratio = resident / max(disk, 1)
        table.add_note(
            f"checkpoint footprint: {format_bytes(disk)} on disk vs "
            f"{format_bytes(resident)} resident — "
            + (f"{ratio:.1f}x smaller on disk." if ratio >= 1
               else f"{1 / max(ratio, 1e-9):.1f}x LARGER on disk.")
        )
        table.add_note(
            "warm start restores prior extractions from the segment "
            "snapshot: the repeated query is pure cache fetch — zero "
            "re-extraction after a process restart (§3.3: materialisation "
            "is simply caching, now durable)."
        )
        table.add_note(
            "pages read/skipped counts segment pages: a narrow projection "
            "reads only the projected columns' pages — lazy ETL extended "
            "into lazy I/O."
        )
        return table
    finally:
        shutil.rmtree(ckpt, ignore_errors=True)


# ---------------------------------------------------------------------------
# E12 — concurrent serving: throughput, tail latency, coalescing
# ---------------------------------------------------------------------------


def _e12_queries(streams: list[tuple[str, str]], agg: str) -> list[str]:
    """One session's workload: ``agg`` over every stream (multi-file)."""
    return [
        (f"SELECT {agg}(D.sample_value), COUNT(*) FROM mseed.dataview "
         f"WHERE F.station = '{station}' AND F.channel = '{channel}'")
        for station, channel in streams
    ]


def _e12_percentile(latencies: list[float], q: float) -> float:
    from repro.service.service import latency_percentile

    return latency_percentile(latencies, q)


def run_e12(*, smoke: bool = False) -> ExperimentTable:
    """Concurrent query service: sessions share one warehouse.

    Each session runs a *distinct* aggregate (so the plan-level recycler
    cannot dedupe the work) over the *same* streams (so the record-level
    extraction ranges overlap completely).  The extraction cache budget is
    deliberately smaller than one query's extraction footprint — the
    working-set-larger-than-memory regime — which makes the single-flight
    coalescer the only mechanism that can share extraction work between
    sessions.  Serial execution is the same total workload, one query at
    a time, streams adjacent (the kindest possible ordering for a cache).
    """
    from repro.seismology.warehouse import SeismicWarehouse

    root, manifest = shared_demo_repo()
    streams = sorted({(e.station, e.channel) for e in manifest.entries})
    streams = streams[: (2 if smoke else 6)]
    aggs = ["MIN", "MAX", "AVG", "SUM"]
    tiny_budget = 64 * 1024  # << one stream's extracted footprint

    table = ExperimentTable(
        "E12",
        "concurrent serving: throughput / p99 under coalesced lazy extraction",
        ["configuration", "sessions", "queries", "throughput",
         "p50", "p99", "rows extracted", "rows shared"],
    )

    def measure_serial(cache_budget: int) -> dict:
        wh = SeismicWarehouse(root, mode="lazy",
                              cache_budget_bytes=cache_budget)
        latencies, extracted, shared, n = [], 0, 0, 0
        started = time.perf_counter()
        # Stream-adjacent order: all aggregates of one stream in a row,
        # the most cache-friendly serial schedule.
        for stream in streams:
            for agg in aggs:
                sql = _e12_queries([stream], agg)[0]
                q_s, _ = _timed(lambda s=sql: wh.query(s))
                latencies.append(q_s)
                extracted += wh.db.last_report.rows_extracted_here
                shared += wh.db.last_report.rows_coalesced
                n += 1
        return {"elapsed": time.perf_counter() - started, "n": n,
                "latencies": latencies, "extracted": extracted,
                "shared": shared}

    def measure_service(sessions: int, *, coalesce: bool, cache_budget: int,
                        extract_workers: int = 0, prewarm: bool = False
                        ) -> dict:
        wh = SeismicWarehouse(root, mode="lazy",
                              cache_budget_bytes=cache_budget)
        if prewarm:
            for agg in aggs:
                for sql in _e12_queries(streams, agg):
                    wh.query(sql)
        with wh.serve(max_workers=min(sessions, 16), coalesce=coalesce,
                      queue_depth=4096,
                      extract_workers=extract_workers) as svc:
            handles = [svc.session(f"s{i}") for i in range(sessions)]
            started = time.perf_counter()
            futures = []
            # Interleave submissions stream-major so concurrent sessions'
            # overlapping ranges are actually in flight together.
            for qi in range(len(streams)):
                for si, session in enumerate(handles):
                    sql = _e12_queries([streams[qi]], aggs[si % len(aggs)])[0]
                    futures.append(session.submit(sql))
            outcomes = [f.result() for f in futures]
            elapsed = time.perf_counter() - started
            stats = svc.stats()
        return {
            "elapsed": elapsed, "n": len(outcomes),
            "latencies": stats.latencies_s,
            "extracted": sum(o.rows_extracted_here for o in outcomes),
            "shared": sum(o.rows_coalesced for o in outcomes),
        }

    def add_row(label: str, sessions: object, run: dict) -> float:
        qps = run["n"] / max(run["elapsed"], 1e-9)
        table.add_row(
            label, sessions, run["n"], f"{qps:.1f} q/s",
            format_duration(_e12_percentile(run["latencies"], 50)),
            format_duration(_e12_percentile(run["latencies"], 99)),
            run["extracted"], run["shared"],
        )
        return qps

    serial = measure_serial(tiny_budget)
    serial_qps = add_row("serial, constrained cache", 1, serial)
    add_row("service, no coalescing, constrained cache", 4,
            measure_service(4, coalesce=False, cache_budget=tiny_budget))
    coalesced_qps = add_row(
        "service, coalescing, constrained cache", 4,
        measure_service(4, coalesce=True, cache_budget=tiny_budget))
    if not smoke:
        add_row("service, coalescing, constrained cache", 16,
                measure_service(16, coalesce=True, cache_budget=tiny_budget))
        add_row("service, coalescing + parallel extraction", 4,
                measure_service(4, coalesce=True, cache_budget=tiny_budget,
                                extract_workers=4))
    add_row("service, coalescing, warm cache", 4,
            measure_service(4, coalesce=True,
                            cache_budget=256 * 1024 * 1024, prewarm=True))
    speedup = coalesced_qps / max(serial_qps, 1e-9)
    table.add_note(
        f"4 coalesced sessions vs serial on multi-file queries: "
        f"{speedup:.1f}x throughput.  Sessions run distinct aggregates "
        "(the recycler cannot help) over the same streams; with the cache "
        "budget below one query's footprint, single-flight coalescing is "
        "the only sharing mechanism — in-flight results travel through "
        "the flight, no cache residency required."
    )
    table.add_note(
        "'rows extracted' is work done by the reporting session itself; "
        "'rows shared' arrived by waiting on another session's in-flight "
        "extraction (the per-session QueryReport distinction)."
    )
    return table


# ---------------------------------------------------------------------------
# E13 — adaptive lazy→eager promotion under a skewed workload
# ---------------------------------------------------------------------------


def run_e13(*, smoke: bool = False, rounds: int | None = None
            ) -> ExperimentTable:
    """Adaptive promotion trajectory: skewed workload, lazy vs adaptive.

    Both warehouses get an extraction cache deliberately smaller than the
    hot set (the working-set-larger-than-memory regime where pure lazy
    re-extracts every repeat) and run the same skewed workload: a small
    hot set of streams queried repeatedly plus a rotating cold query per
    round.  The adaptive side additionally owns storage and runs one
    promotion cycle per round — the heat tracker notices the hot units
    and the promoter materializes them into promoted segments, so the
    steady-state hot queries become disk-page reads instead of
    re-extraction.  The plan-level recycler is disabled on *both* sides:
    it would hide the extraction path this experiment isolates.

    Acceptance (ISSUE 5): steady-state hot-set speedup >= 2x over pure
    lazy; cold start (first query, nothing promoted yet) within 1.2x of
    pure lazy; promotion state survives checkpoint() -> warm start with
    zero re-extraction of promoted ranges.
    """
    import shutil
    import tempfile

    root, manifest = shared_demo_repo()
    streams = sorted({(e.station, e.channel) for e in manifest.entries})
    hot_streams = streams[:2]
    cold_streams = streams[2:4] if smoke else streams[2:]
    hot_sqls = [full_stream_query(st, ch) for st, ch in hot_streams]
    cold_sqls = [full_stream_query(st, ch) for st, ch in cold_streams]
    tiny_budget = 64 * 1024  # << the hot set's extracted footprint
    n_rounds = rounds if rounds is not None else (3 if smoke else 5)

    # One throwaway pass so the OS file cache is warm before any
    # measurement — both sides then see identical I/O conditions.
    prewarm = SeismicWarehouse(root, mode="lazy",
                               cache_budget_bytes=tiny_budget,
                               enable_recycler=False)
    for sql in hot_sqls:
        prewarm.query(sql)

    store_path = tempfile.mkdtemp(prefix="repro-e13-")
    try:
        lazy = SeismicWarehouse(root, mode="lazy",
                                cache_budget_bytes=tiny_budget,
                                enable_recycler=False)
        adaptive = SeismicWarehouse(root, mode="lazy",
                                    cache_budget_bytes=tiny_budget,
                                    enable_recycler=False,
                                    storage_path=store_path)

        table = ExperimentTable(
            "E13",
            "adaptive lazy→eager promotion: skewed-workload trajectory",
            ["phase", "lazy hot-set", "adaptive hot-set",
             "adaptive eager rows", "promoted units", "promoted bytes"],
        )

        # Cold start: first queries, nothing promoted yet — the adaptive
        # side must not tax the lazy grade it inherits.  Both sides do
        # the same fresh extraction and differ only by heat-tracker
        # bookkeeping, so the gate is timing-noise-dominated: take the
        # min over the hot streams on the trajectory warehouses PLUS a
        # second disposable pair, interleaved so a scheduler hiccup on a
        # shared CI runner cannot land on one side's every sample.
        lazy_samples = [_timed(lambda s=sql: lazy.query(s))[0]
                        for sql in hot_sqls]
        adaptive_samples = [_timed(lambda s=sql: adaptive.query(s))[0]
                            for sql in hot_sqls]
        spare_store = tempfile.mkdtemp(prefix="repro-e13-spare-")
        try:
            lazy2 = SeismicWarehouse(root, mode="lazy",
                                     cache_budget_bytes=tiny_budget,
                                     enable_recycler=False)
            adaptive2 = SeismicWarehouse(root, mode="lazy",
                                         cache_budget_bytes=tiny_budget,
                                         enable_recycler=False,
                                         storage_path=spare_store)
            for sql in hot_sqls:
                lazy_samples.append(_timed(lambda s=sql: lazy2.query(s))[0])
                adaptive_samples.append(
                    _timed(lambda s=sql: adaptive2.query(s))[0])
        finally:
            shutil.rmtree(spare_store, ignore_errors=True)
        lazy_cold_s = min(lazy_samples)
        adaptive_cold_s = min(adaptive_samples)
        table.add_row(
            "cold start (first query)", format_duration(lazy_cold_s),
            format_duration(adaptive_cold_s),
            adaptive.db.last_report.rows_served_eager, 0, "0 B",
        )

        def hot_pass(wh: SeismicWarehouse) -> tuple[float, int]:
            total, eager = 0.0, 0
            for sql in hot_sqls * 2:   # each hot stream hit twice a round
                q_s, _ = _timed(lambda s=sql: wh.query(s))
                total += q_s
                eager += wh.db.last_report.rows_served_eager
            return total / (2 * len(hot_sqls)), eager

        lazy_steady = adaptive_steady = 0.0
        for rnd in range(1, n_rounds + 1):
            lazy_hot_s, _ = hot_pass(lazy)
            adaptive_hot_s, eager_rows = hot_pass(adaptive)
            # The skew: one cold stream per round, then promote.
            cold_sql = cold_sqls[(rnd - 1) % len(cold_sqls)]
            lazy.query(cold_sql)
            adaptive.query(cold_sql)
            promo = adaptive.promote(budget_bytes=64 * 1024 * 1024,
                                     min_score=1.5)
            table.add_row(
                f"round {rnd} (hot x2 + 1 cold, then promote)",
                format_duration(lazy_hot_s), format_duration(adaptive_hot_s),
                eager_rows, promo.live_units, format_bytes(promo.disk_bytes),
            )
            lazy_steady, adaptive_steady = lazy_hot_s, adaptive_hot_s

        # Restart durability: promoted ranges answer with zero
        # re-extraction in a fresh process.
        adaptive.checkpoint()
        warm_s, warm = _timed(lambda: SeismicWarehouse(
            root, mode="lazy", cache_budget_bytes=tiny_budget,
            enable_recycler=False, storage_path=store_path))
        warm_q_s, _ = _timed(lambda: warm.query(hot_sqls[0]))
        warm_report = warm.db.last_report
        table.add_row(
            "warm start (new process, hot query)", "-",
            format_duration(warm_q_s), warm_report.rows_served_eager,
            len(warm.promoted), format_bytes(warm.promoted.disk_bytes()),
        )

        speedup = lazy_steady / max(adaptive_steady, 1e-9)
        cold_ratio = adaptive_cold_s / max(lazy_cold_s, 1e-9)
        table.add_note(
            f"steady-state hot-set speedup: {speedup:.1f}x vs pure lazy "
            "(acceptance: >= 2x) — promoted units serve from disk pages "
            "through the buffer pool instead of re-extracting."
        )
        table.add_note(
            f"cold-start ratio (adaptive/lazy first query): "
            f"{cold_ratio:.2f}x (acceptance: <= 1.2x) — heat tracking "
            "costs noise; nothing is promoted until the workload proves "
            "hot."
        )
        table.add_note(
            f"warm start re-extracted {warm_report.rows_extracted_here} "
            f"rows and served {warm_report.rows_served_eager} rows from "
            "promoted segments (acceptance: zero re-extraction of "
            "promoted ranges)."
        )
        table.add_note(
            "recycler disabled on both sides; extraction cache budget "
            f"{format_bytes(tiny_budget)} — far below the hot set, so "
            "pure lazy re-extracts every repeat (E7's eager-wins regime, "
            "now closed adaptively at runtime)."
        )
        # Machine-checkable acceptance values (BENCH_E13.json):
        table.add_row(
            "acceptance: speedup / cold ratio / warm re-extraction",
            f"{speedup:.2f}", f"{cold_ratio:.3f}",
            warm_report.rows_served_eager,
            warm_report.rows_extracted_here, "-",
        )
        return table
    finally:
        shutil.rmtree(store_path, ignore_errors=True)


# ---------------------------------------------------------------------------
# E15 — vectorised batch executor vs the row-at-a-time baseline
# ---------------------------------------------------------------------------


def run_e15(*, smoke: bool = False, repeats: int | None = None
            ) -> ExperimentTable:
    """Vectorised end-to-end execution vs the pre-vectorised row path.

    Baseline: ``Database.query_rowpath`` — the tuple-at-a-time reference
    interpreter (scalar expression evaluation, dict joins and grouping,
    no recycler, no zone maps) — with the Steim decoder routed through
    its scalar reference implementation.  Together they model the
    pre-vectorised engine.  The vectorised side is the ordinary query
    path: table-driven Steim decode, column-batch operators, zone-map
    page skipping.

    Workloads mirror the acceptance gates: E1's cold full-stream load
    and the two filter-heavy Figure-1 queries (E2/E3).  Every pair runs
    on fresh warehouses so both sides pay cold extraction; both sides'
    results are cross-checked row for row before timing counts.

    Acceptance (ISSUE 6): >= 5x on each workload.
    """
    from repro.mseed import steim

    root, manifest = shared_demo_repo()
    station = manifest.entries[0].station
    channel = manifest.entries[0].channel
    workloads = [
        ("cold load, full stream (E1)", full_stream_query(station, channel)),
        ("fig1 Q1 — STA window (E2)", fig1_query1()),
        ("fig1 Q2 — min/max per station (E3)", fig1_query2()),
    ]
    n_repeats = repeats if repeats is not None else (1 if smoke else 2)

    table = ExperimentTable(
        "E15",
        "vectorised batch executor vs row-at-a-time baseline (ISSUE 6)",
        ["workload", "rowpath baseline", "vectorised", "speedup", "rows"],
    )

    def fresh() -> SeismicWarehouse:
        # No recycler on either side: repeats must measure execution,
        # not result caching.
        return SeismicWarehouse(root, mode="lazy", enable_recycler=False)

    speedups: list[float] = []
    for label, sql in workloads:
        base_s = vec_s = float("inf")
        base_rows = vec_rows = None
        for _ in range(n_repeats):
            base_wh = fresh()
            with steim.reference_decoding():
                sample_s, (result, report, _trace) = _timed(
                    lambda w=base_wh, s=sql: w.db.query_rowpath(s))
            base_s = min(base_s, sample_s)
            base_rows = result.rows()
            vec_wh = fresh()
            sample_s, result = _timed(lambda w=vec_wh, s=sql: w.query(s))
            vec_s = min(vec_s, sample_s)
            vec_rows = result.rows()
        # The bench doubles as a coarse oracle: a speedup on wrong
        # answers is worthless.
        assert base_rows == vec_rows, f"row/batch divergence on {label!r}"
        speedup = base_s / max(vec_s, 1e-9)
        speedups.append(speedup)
        table.add_row(label, format_duration(base_s),
                      format_duration(vec_s), f"{speedup:.1f}x",
                      len(vec_rows))

    table.add_note(
        "baseline = query_rowpath (tuple-at-a-time interpreter) with the "
        "scalar reference Steim decoder — the pre-vectorised engine; "
        "vectorised = batch executor with table-driven Steim decode and "
        "zone maps.  Fresh warehouses per measurement: both sides pay "
        "cold extraction."
    )
    table.add_note(
        f"acceptance (ISSUE 6): >= 5x per workload; measured "
        f"{', '.join(f'{s:.1f}x' for s in speedups)}."
    )
    # Machine-checkable acceptance values (BENCH_E15.json):
    table.add_row(
        "acceptance: cold-load / Q1 / Q2 speedups",
        f"{speedups[0]:.2f}", f"{speedups[1]:.2f}", f"{speedups[2]:.2f}",
        "-",
    )
    return table


def run_e16(*, smoke: bool = False, connections: int | None = None,
            queries_per_conn: int | None = None) -> ExperimentTable:
    """The wire protocol under load: 100+ real TCP connections.

    Serves the shared demo warehouse over TCP
    (``serve(tcp_port=0, auth_tokens=...)``) and drives it with real
    concurrent connections from the asyncio client — every query pays
    framing, auth, admission, server-side cursors and codec transport —
    against an in-process baseline where the same sessions submit
    through :meth:`WarehouseService.session` directly (no socket).
    Reports p50/p95/p99 latency and aggregate throughput for both
    paths, then verifies graceful drain *under load*: live streaming
    cursors opened before ``close()`` must run to completion through
    the drain window.

    Acceptance (ISSUE 9): >= 100 concurrent connections sustained,
    zero dropped queries, drain clean under load.
    """
    import asyncio
    import threading

    from repro.net import connect_tcp, connect_tcp_async

    n_conns = connections if connections is not None else 100
    n_queries = queries_per_conn if queries_per_conn is not None \
        else (1 if smoke else 4)
    token = "bench-e16-secret"

    root, manifest = shared_demo_repo()
    station = manifest.entries[0].station
    sql = ("SELECT station, COUNT(*) AS n FROM mseed.files "
           f"WHERE station <> '{station}' GROUP BY station ORDER BY station")
    drain_sql = "SELECT sample_time, sample_value FROM mseed.dataview"

    table = ExperimentTable(
        "E16",
        "wire protocol at 100+ concurrent TCP connections (ISSUE 9)",
        ["path", "connections", "queries", "wall", "throughput",
         "p50", "p95", "p99"],
    )

    wh = SeismicWarehouse(root, mode="lazy")
    wh.query(sql)  # warm: measure serving, not first-touch extraction
    drain_rows = wh.query(drain_sql).row_count
    # A streaming cursor pins a worker while its backpressure window is
    # full, so the drain phase needs fewer live cursors than workers.
    n_drain = 6
    service = wh.serve(max_workers=8, queue_depth=4 * n_conns,
                       tcp_port=0, auth_tokens=[token],
                       tcp_drain_s=60.0)
    dropped = 0
    try:
        # -- in-process baseline: same sessions, no socket ------------------
        local_latencies: list[float] = []
        lock = threading.Lock()

        def local_worker(i: int) -> None:
            session = service.session(f"e16-local-{i}")
            mine = []
            for _ in range(n_queries):
                started = time.perf_counter()
                session.query(sql)
                mine.append(time.perf_counter() - started)
            with lock:
                local_latencies.extend(mine)

        threads = [threading.Thread(target=local_worker, args=(i,))
                   for i in range(n_conns)]
        wall_local, _ = _timed(lambda: [
            [t.start() for t in threads], [t.join() for t in threads]])

        # -- remote: real concurrent TCP connections ------------------------
        async def remote_all() -> tuple[list[float], int]:
            conns = await asyncio.gather(*[
                connect_tcp_async("127.0.0.1", service.tcp_port,
                                  token=token)
                for _ in range(n_conns)])
            failures = 0
            latencies: list[float] = []

            async def drive(conn) -> None:
                nonlocal failures
                for _ in range(n_queries):
                    started = time.perf_counter()
                    try:
                        cursor = await conn.execute(sql)
                        await cursor.fetchall()
                    except Exception:
                        failures += 1
                    else:
                        latencies.append(time.perf_counter() - started)
                await conn.close()

            # Every connection is open before the first query fires, so
            # the peak concurrency really is n_conns.
            await asyncio.gather(*[drive(c) for c in conns])
            return latencies, failures

        started = time.perf_counter()
        remote_latencies, dropped = asyncio.run(remote_all())
        wall_remote = time.perf_counter() - started

        def add_path(label: str, wall: float, lat: list[float]) -> None:
            p50, p95, p99 = np.percentile(lat, [50, 95, 99])
            table.add_row(label, n_conns, len(lat),
                          format_duration(wall),
                          f"{len(lat) / wall:.0f} q/s",
                          format_duration(p50), format_duration(p95),
                          format_duration(p99))

        add_path("in-process sessions", wall_local, local_latencies)
        add_path("remote TCP (asyncio)", wall_remote, remote_latencies)

        # -- graceful drain under load --------------------------------------
        drain_conns = [connect_tcp("127.0.0.1", service.tcp_port,
                                   token=token) for _ in range(n_drain)]
        drain_batch = 4096
        cursors = []
        for conn in drain_conns:
            cursor = conn.cursor(batch_rows=drain_batch)
            cursor.execute(drain_sql)
            # one batch fetched: the stream is live when close() lands
            first = len(cursor.fetchmany(drain_batch))
            cursors.append((cursor, first))
        fetched: list[object] = [None] * len(cursors)

        def finish(i: int) -> None:
            cursor, first = cursors[i]
            try:
                fetched[i] = first + len(cursor.fetchall())
            except Exception as exc:  # noqa: BLE001 - recorded, asserted below
                fetched[i] = exc

        finishers = [threading.Thread(target=finish, args=(i,))
                     for i in range(len(cursors))]
        for thread in finishers:
            thread.start()
        service.close()  # drain: in-flight cursors finish, then stop
        for thread in finishers:
            thread.join(timeout=120)
        for conn in drain_conns:
            conn.close()
        drain_clean = all(count == drain_rows for count in fetched)
    finally:
        service.close()
        wh.close()

    overhead = (np.percentile(remote_latencies, 50)
                / max(np.percentile(local_latencies, 50), 1e-9))
    table.add_note(
        "remote = asyncio client, every query over a real authenticated "
        "TCP connection with codec-compressed batches; baseline = the "
        "same session count submitting in-process.  Warm warehouse: "
        "both paths measure serving, not extraction."
    )
    table.add_note(
        f"wire overhead at p50: {overhead:.1f}x the in-process path; "
        f"drain under load: {len(cursors)} live streaming cursors "
        f"{'all finished' if drain_clean else 'DID NOT finish'} through "
        "close()."
    )
    table.add_note(
        f"acceptance (ISSUE 9): >= 100 concurrent connections, 0 dropped, "
        f"graceful drain under load; measured {n_conns} connections, "
        f"{dropped} dropped, drain_clean={str(drain_clean).lower()}."
    )
    # Machine-checkable acceptance values (BENCH_E16.json):
    table.add_row(
        "acceptance: connections / dropped / drain_clean",
        n_conns, dropped, str(drain_clean).lower(), "-", "-", "-", "-",
    )
    return table


# ---------------------------------------------------------------------------
# E17 — sharded scatter-gather execution (ISSUE 10)
# ---------------------------------------------------------------------------


def run_e17(*, smoke: bool = False,
            shard_counts: "tuple[int, ...] | None" = None,
            repeats: "int | None" = None) -> ExperimentTable:
    """Multi-process sharding vs the single-process engine.

    Runs one CPU-bound decomposable aggregation — full-corpus Steim
    decoding plus grouped MIN/MAX/SUM/COUNT — cold (all extraction
    caches dropped) and warm, at each shard count, and verifies every
    configuration returns the single-process result exactly (same rows,
    same float values).  The acceptance row reports the cold-path
    speedup at the highest shard count; the >= 2.5x gate only binds on
    machines with >= 4 cores (``os.cpu_count()``), since worker
    processes cannot beat the GIL without cores to run on.
    """
    import os

    counts = tuple(shard_counts) if shard_counts else (1, 2, 4)
    n_repeats = repeats if repeats is not None else (1 if smoke else 3)
    root, _manifest = shared_demo_repo()
    sql = ("SELECT F.network, COUNT(*) AS n, "
           "MIN(D.sample_value) AS lo, MAX(D.sample_value) AS hi, "
           "SUM(D.sample_value) AS total "
           "FROM mseed.dataview GROUP BY F.network ORDER BY F.network")

    table = ExperimentTable(
        "E17",
        "sharded scatter-gather execution vs single process (ISSUE 10)",
        ["configuration", "cold", "warm", "extracted", "rows/s cold",
         "identical"],
    )

    baseline_rows = None
    baseline_cold = None
    last_speedup = 1.0
    all_identical = True
    for n in counts:
        wh = SeismicWarehouse(root, mode="lazy", shards=n)
        try:
            cold_times, warm_times = [], []
            extracted = 0
            result = None
            for _ in range(n_repeats):
                if wh.sharding is not None:
                    wh.sharding.clear_caches()
                if wh.cache is not None:
                    wh.cache.clear()
                wh.db.clear_plan_cache()
                elapsed, (result, report, _trace) = _timed(
                    lambda: wh.db.query_with_report(sql))
                cold_times.append(elapsed)
                extracted = report.rows_extracted
                warm, _ = _timed(lambda: wh.query(sql))
                warm_times.append(warm)
            rows = result.rows()
            if baseline_rows is None:
                baseline_rows = rows
                baseline_cold = min(cold_times)
            identical = rows == baseline_rows
            all_identical = all_identical and identical
            cold = min(cold_times)
            last_speedup = baseline_cold / cold if cold > 0 else 1.0
            table.add_row(
                f"shards={n}" + (" (single process)" if n == 1 else ""),
                format_duration(cold), format_duration(min(warm_times)),
                f"{extracted:,}",
                f"{extracted / cold:,.0f}" if cold > 0 else "-",
                "true" if identical else "FALSE",
            )
        finally:
            wh.close()

    cpu = os.cpu_count() or 1
    table.add_row(
        f"acceptance: {counts[-1]}-shard cold speedup / cpus / identical",
        f"{last_speedup:.2f}", str(cpu),
        "true" if all_identical else "FALSE", "", "")
    table.add_note(
        "cold = every extraction cache dropped (workers included); the "
        "speedup gate (>= 2.5x) binds only when os.cpu_count() >= 4")
    return table


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentTable]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E15": run_e15,
    "E16": run_e16,
    "E17": run_e17,
}

# Reduced-parameter variants for CI smoke runs; experiments not listed
# here run at full size even in smoke mode (they are already fast).
SMOKE_EXPERIMENTS: dict[str, Callable[[], ExperimentTable]] = {
    **ALL_EXPERIMENTS,
    "E1": lambda: run_e1(["S"]),
    "E5": lambda: run_e5(queries=8, policies=("lru",)),
    "E6": lambda: run_e6(modified_files=2),
    "E12": lambda: run_e12(smoke=True),
    "E13": lambda: run_e13(smoke=True),
    "E15": lambda: run_e15(smoke=True),
    "E16": lambda: run_e16(smoke=True),
    "E17": lambda: run_e17(smoke=True),
}
