"""Per-query span trees over the flat run-time trace.

The engine always kept a flat ``ctx.trace`` list of run-time rewrite
events.  This module adds the structure around it: a
:class:`QueryProfile` records one :class:`OpFrame` per physical-operator
invocation (stack-nested, so the frame tree mirrors the execution tree),
and :func:`span_tree` assembles the full query span —
parse → bind → optimize → execute, one child span per operator, and the
trace events (extractions, cache fetches, promoted reads) nested under
the operator that produced them — as plain JSON-serialisable dicts.

Frames attribute three things per operator: wall time (total and self,
i.e. minus children), rows out, and page I/O (total and self).  Trace
events are claimed positionally: a frame owns the ``ctx.trace`` indices
appended during its execution that no child frame's window covers.

The profile is attached as ``ExecutionContext.profile``; ``None`` (the
default) keeps the execution path exactly as before — operators only pay
for profiling when EXPLAIN ANALYZE or span tracing asked for it.
"""

from __future__ import annotations

from typing import Optional

#: ``ctx.trace`` ops that carry a wall-time measurement of their own.
_TIMED_TRACE_OPS = frozenset({"extract", "extract_wait"})


class OpFrame:
    """One physical-operator invocation inside a :class:`QueryProfile`."""

    __slots__ = ("op", "label", "total_s", "child_s", "rows_out",
                 "pages_read", "child_pages", "recycled",
                 "trace_begin", "trace_end", "children")

    def __init__(self, op: str, label: str) -> None:
        self.op = op                # operator class name, e.g. "PFilter"
        self.label = label          # node.describe() text
        self.total_s = 0.0
        self.child_s = 0.0
        self.rows_out = 0
        self.pages_read = 0
        self.child_pages = 0
        self.recycled = False
        self.trace_begin = 0
        self.trace_end = 0
        self.children: list["OpFrame"] = []

    @property
    def self_s(self) -> float:
        """Wall time spent in this operator, excluding child operators."""
        return max(self.total_s - self.child_s, 0.0)

    @property
    def self_pages(self) -> int:
        return max(self.pages_read - self.child_pages, 0)

    def own_trace_indices(self) -> list[int]:
        """Trace indices this frame produced itself (children excluded).

        A child's window covers its whole subtree, so subtracting the
        direct children's windows is sufficient.
        """
        covered = [(c.trace_begin, c.trace_end) for c in self.children]
        return [
            i for i in range(self.trace_begin, self.trace_end)
            if not any(begin <= i < end for begin, end in covered)
        ]


class QueryProfile:
    """Operator-level profile of one query execution (stack-nested)."""

    def __init__(self) -> None:
        self.roots: list[OpFrame] = []
        self._stack: list[OpFrame] = []

    def enter(self, node) -> OpFrame:
        frame = OpFrame(type(node).__name__, node.describe())
        if self._stack:
            self._stack[-1].children.append(frame)
        else:
            self.roots.append(frame)
        self._stack.append(frame)
        return frame

    def exit(self, frame: OpFrame, *, elapsed_s: float, rows_out: int,
             pages_read: int, trace_begin: int, trace_end: int,
             recycled: bool) -> None:
        if self._stack and self._stack[-1] is frame:
            self._stack.pop()
        frame.total_s = elapsed_s
        frame.rows_out = rows_out
        frame.pages_read = pages_read
        frame.trace_begin = trace_begin
        frame.trace_end = trace_end
        frame.recycled = recycled
        if self._stack:
            parent = self._stack[-1]
            parent.child_s += elapsed_s
            parent.child_pages += pages_read

    def total_operator_s(self) -> float:
        """Wall time attributed to operators = sum of root-frame totals.

        Equivalently the sum of every frame's *self* time; EXPLAIN
        ANALYZE's accounting invariant checks this against the report's
        ``execute_s``.
        """
        return sum(frame.total_s for frame in self.roots)


def _trace_span(entry: dict) -> dict:
    attrs = {k: v for k, v in entry.items() if k != "op"}
    span = {"name": f"trace:{entry.get('op', '?')}", "attrs": attrs}
    if entry.get("op") in _TIMED_TRACE_OPS:
        span["elapsed_s"] = entry.get("seconds", 0.0)
    return span


def operator_span(frame: OpFrame, trace: list[dict]) -> dict:
    """One operator frame (and its subtree) as a span dict."""
    children: list[dict] = []
    own = set(frame.own_trace_indices())
    child_iter = iter(frame.children)
    next_child = next(child_iter, None)
    # Interleave trace-event spans with child-operator spans in trace
    # order so the span tree reads in execution order.
    for index in range(frame.trace_begin, frame.trace_end):
        while next_child is not None and next_child.trace_begin <= index:
            children.append(operator_span(next_child, trace))
            next_child = next(child_iter, None)
        if index in own:
            children.append(_trace_span(trace[index]))
    while next_child is not None:
        children.append(operator_span(next_child, trace))
        next_child = next(child_iter, None)
    span = {
        "name": frame.op,
        "detail": frame.label,
        "elapsed_s": frame.total_s,
        "self_s": frame.self_s,
        "rows_out": frame.rows_out,
    }
    if frame.pages_read:
        span["pages_read"] = frame.pages_read
    if frame.recycled:
        span["recycled"] = True
    if children:
        span["children"] = children
    return span


def span_tree(sql: str, report, profile: Optional[QueryProfile],
              trace: list[dict]) -> dict:
    """The whole query as one JSON-serialisable span tree.

    ``profile`` may be ``None`` (plan-cache-hit streaming runs through
    operator overrides, for instance): the compile/execute phases are
    still exact, the execute span just has no operator children.
    """
    execute_span: dict = {
        "name": "execute",
        "elapsed_s": report.execute_s,
        "rows_out": report.rows_out,
    }
    operator_children = (
        [operator_span(frame, trace) for frame in profile.roots]
        if profile is not None else []
    )
    if operator_children:
        execute_span["children"] = operator_children
    elif trace:
        # No operator attribution — keep the trace events visible as
        # direct children of the execute span.
        execute_span["children"] = [_trace_span(entry) for entry in trace]
    return {
        "name": "query",
        "attrs": {
            "sql": sql,
            "plan_cache_hit": report.plan_cache_hit,
        },
        "elapsed_s": report.total_s,
        "children": [
            {"name": "parse", "elapsed_s": report.parse_s},
            {"name": "bind", "elapsed_s": report.bind_s},
            {"name": "optimize", "elapsed_s": report.optimize_s},
            execute_span,
        ],
    }
