"""Threshold-gated slow-query log.

Queries whose end-to-end latency crosses the threshold emit one
structured stdlib-logging record on ``repro.obs.slowquery`` (the full
record dict travels in ``record.slow_query`` for structured handlers;
the formatted message carries the human-readable summary) and are kept
in a bounded in-memory ring for introspection without any handler
configured.

Each record carries the query's ``journal_id`` and ``params_hash``, so
a slow-log line joins back to its full journal entry with
``SELECT * FROM sys.queries WHERE id = :journal_id`` and to every
execution of the same parameter binding via ``params_hash`` (see the
README's "System tables" section for the workflow).
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Optional

logger = logging.getLogger("repro.obs.slowquery")


class SlowQueryLog:
    """Record queries slower than a threshold (thread-safe)."""

    def __init__(self, threshold_s: float, *, capacity: int = 256,
                 log: Optional[logging.Logger] = None) -> None:
        if threshold_s < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_s = threshold_s
        self._entries: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._logger = log or logger

    def observe(self, *, session_id: str, sql: str, total_s: float,
                queued_s: float, execute_s: float, report=None) -> bool:
        """Record the query if it crossed the threshold; True if it did."""
        if total_s < self.threshold_s:
            return False
        record = {
            "session": session_id,
            "sql": sql,
            "total_s": round(total_s, 6),
            "queued_s": round(queued_s, 6),
            "execute_s": round(execute_s, 6),
        }
        if report is not None:
            record.update(
                rows_out=report.rows_out,
                rows_extracted=report.rows_extracted,
                pages_read=report.pages_read,
                plan_cache_hit=report.plan_cache_hit,
                # Correlation back to the query journal: the slow-log
                # line joins to sys.queries on id = journal_id, and
                # params_hash groups every execution of one binding.
                journal_id=getattr(report, "journal_id", 0),
                params_hash=getattr(report, "params_hash", ""),
            )
        with self._lock:
            self._entries.append(record)
        self._logger.warning(
            "slow query (%.3fs >= %.3fs) on %s: %s",
            total_s, self.threshold_s, session_id,
            sql[:120].replace("\n", " "),
            extra={"slow_query": record},
        )
        return True

    def entries(self) -> list[dict]:
        """Recorded slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
