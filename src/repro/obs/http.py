"""The stdlib HTTP observability endpoint of a served warehouse.

Three read-only routes, served by a daemon thread off a
:class:`http.server.ThreadingHTTPServer`:

* ``GET /metrics`` — the Prometheus text exposition (scrape target).
* ``GET /healthz`` — liveness plus degradation checks (queue depth,
  worker liveness, metrics staleness); ``200 ok`` / ``503 degraded``.
* ``GET /sys/<table>`` — any registered system table as JSON rows,
  the same provider snapshot SQL over ``sys.<table>`` would scan.

Owned by :class:`~repro.service.service.WarehouseService` via
``serve(http_port=...)``: bound before the service is usable, shut
down gracefully (no dangling socket, thread joined) on ``close()``.
Port ``0`` binds an ephemeral port, published as :attr:`port`.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.export import render_prometheus

logger = logging.getLogger("repro.obs.http")

DEFAULT_HTTP_HOST = "127.0.0.1"


class ObservabilityServer:
    """HTTP façade over one served warehouse's observability surface."""

    def __init__(self, service, host: str = DEFAULT_HTTP_HOST,
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves ephemeral binds), None when down."""
        return None if self._httpd is None else self._httpd.server_address[1]

    @property
    def url(self) -> Optional[str]:
        return None if self.port is None else f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self.service)
        self._httpd = ThreadingHTTPServer((self.host, self.requested_port),
                                          handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http", daemon=True,
        )
        self._thread.start()
        logger.info("observability endpoint listening on %s", self.url)
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)


def _make_handler(service):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # quiet: route to our logger
            logger.debug("http %s", fmt % args)

        def _send(self, status: int, content_type: str,
                  body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload) -> None:
            body = json.dumps(payload, indent=1).encode("utf-8")
            self._send(status, "application/json; charset=utf-8", body)

        def do_GET(self) -> None:  # noqa: N802 (stdlib handler protocol)
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    text = render_prometheus(service.metrics)
                    self._send(200,
                               "text/plain; version=0.0.4; charset=utf-8",
                               text.encode("utf-8"))
                elif path == "/healthz":
                    health = service.health()
                    status = 200 if health["status"] == "ok" else 503
                    self._send_json(status, health)
                elif path.startswith("/sys/"):
                    self._serve_system_table(path[len("/sys/"):])
                elif path == "/":
                    tables = sorted(
                        service.warehouse.db.catalog.system_tables())
                    self._send_json(200, {
                        "routes": ["/metrics", "/healthz", "/sys/<table>"],
                        "system_tables": tables,
                    })
                else:
                    self._send_json(404, {"error": f"no route {path!r}"})
            except BrokenPipeError:  # client went away mid-write
                pass
            except Exception as exc:  # surface, never kill the server
                logger.exception("observability route %s failed", path)
                try:
                    self._send_json(500, {"error": str(exc)})
                except OSError:
                    pass

        def _serve_system_table(self, name: str) -> None:
            tables = service.warehouse.db.catalog.system_tables()
            table = tables.get(name.lower())
            if table is None:
                self._send_json(404, {
                    "error": f"unknown system table {name!r}",
                    "system_tables": sorted(tables),
                })
                return
            self._send_json(200, {
                "table": f"sys.{name.lower()}",
                "rows": table.rows(),
            })

    return Handler
