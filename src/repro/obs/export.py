"""Metric exporters: Prometheus text exposition + JSON snapshots.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.
MetricsRegistry` snapshot into the Prometheus text exposition format
(version 0.0.4): ``# HELP`` / ``# TYPE`` comment lines followed by one
sample line per series.  Histograms export as *summaries* — quantile
series plus ``_sum`` and ``_count`` — because the reservoir answers
quantiles directly and never kept fixed buckets.

:func:`parse_exposition` is the matching validator: it re-parses an
exposition into ``(name, labels, value)`` samples, raising
:class:`~repro.errors.MetricsError` on any malformed line.  CI's obs
smoke step scrapes a served warehouse and runs the scrape through it,
then bounds per-metric label cardinality with
:func:`label_cardinality`.
"""

from __future__ import annotations

import json
import re

from repro.errors import MetricsError

_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_NAME_RE})(?:\{{(.*)\}})? (-?(?:[0-9.eE+-]+|[Nn]a[Nn]|[+-]?[Ii]nf))$"
)
_LABEL_RE = re.compile(rf'({_NAME_RE})="((?:[^"\\]|\\.)*)"')


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: object) -> str:
    # HELP text escapes backslash and newline only (format 0.0.4);
    # quotes stay literal.
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label(value: str, lineno: int) -> str:
    """Single-pass left-to-right unescape of one quoted label value.

    Order matters and sequential ``str.replace`` passes get it wrong: a
    literal backslash before an ``n`` renders as ``\\\\n``, which a
    replace chain would corrupt into backslash+newline.  Unknown escape
    sequences are rejected — this parser is CI's strict validator.
    """
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value) or value[i + 1] not in _UNESCAPES:
                raise MetricsError(
                    f"line {lineno}: bad escape in label value "
                    f"{value[:60]!r}")
            out.append(_UNESCAPES[value[i + 1]])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(blob: str, lineno: int) -> dict[str, str]:
    """Parse a label blob by tiling it with ``name="value"`` pairs.

    Counting ``=`` characters (the old completeness check) miscounts as
    soon as a label *value* contains one — SQL fragments routinely do —
    so coverage is verified positionally instead: every character of
    the blob must belong to a matched pair or a separating comma.
    """
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(blob):
        match = _LABEL_RE.match(blob, pos)
        if match is None:
            raise MetricsError(
                f"line {lineno}: malformed labels {blob[pos:pos + 80]!r}")
        labels[match.group(1)] = _unescape_label(match.group(2), lineno)
        pos = match.end()
        if pos < len(blob):
            if blob[pos] != ",":
                raise MetricsError(
                    f"line {lineno}: malformed labels "
                    f"{blob[pos:pos + 80]!r}")
            pos += 1
    return labels


def _fmt_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def render_prometheus(source) -> str:
    """Render a registry (or a raw snapshot dict) as exposition text."""
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    lines: list[str] = []
    for name in sorted(snapshot):
        meta = snapshot[name]
        kind = meta.get("type", "gauge")
        help_text = meta.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(
            f"# TYPE {name} "
            f"{'summary' if kind == 'histogram' else kind}"
        )
        for sample in meta.get("samples", []):
            labels = sample.get("labels", {})
            if kind == "histogram":
                for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                                      ("0.99", "p99")):
                    lines.append(
                        f"{name}"
                        f"{_fmt_labels(labels, {'quantile': quantile})} "
                        f"{_fmt_value(sample.get(key, 0.0))}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(labels)} "
                             f"{_fmt_value(sample.get('sum', 0.0))}")
                lines.append(f"{name}_count{_fmt_labels(labels)} "
                             f"{_fmt_value(sample.get('count', 0))}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} "
                             f"{_fmt_value(sample.get('value', 0))}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> list[tuple[str, dict, float]]:
    """Parse exposition text back into ``(name, labels, value)`` samples.

    Strict on purpose — this is the validator CI scrapes through.
    """
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                raise MetricsError(
                    f"line {lineno}: unknown comment {line[:60]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricsError(
                f"line {lineno}: malformed sample {line[:80]!r}")
        name, label_blob, value_text = match.groups()
        labels: dict[str, str] = {}
        if label_blob:
            labels = _parse_labels(label_blob, lineno)
        try:
            value = float(value_text)
        except ValueError as exc:
            raise MetricsError(
                f"line {lineno}: bad value {value_text!r}") from exc
        samples.append((name, labels, value))
    return samples


def label_cardinality(samples: list[tuple[str, dict, float]]
                      ) -> dict[str, int]:
    """Distinct label sets per metric name (the CI cardinality bound)."""
    seen: dict[str, set] = {}
    for name, labels, _value in samples:
        base = name[:-len("_sum")] if name.endswith("_sum") else \
            name[:-len("_count")] if name.endswith("_count") else name
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "quantile"))
        seen.setdefault(base, set()).add(key)
    return {name: len(keys) for name, keys in seen.items()}


def snapshot_json(source, **extra: object) -> str:
    """A registry snapshot as a JSON document (``warehouse.metrics()``
    already returns the dict; this adds stable serialisation)."""
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    payload = {"metrics": snapshot}
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True, default=str)
