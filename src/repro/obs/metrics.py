"""Thread-safe metrics: counters, gauges, bounded-reservoir histograms.

One :class:`MetricsRegistry` serves a whole warehouse.  Two feeding
styles coexist:

* **instruments** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  objects obtained get-or-create from the registry and bumped on the hot
  path (query latency, admission wait, extraction seconds).  Each update
  is one short critical section on the instrument's own lock;
* **collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that are invoked only at
  snapshot/scrape time and read counters the subsystems already keep
  (cache stats, buffer-pool stats, plan-cache hits, promotion totals).
  Collectors add **zero** hot-path overhead, which is what keeps the
  acceptance-gated vectorised-executor speedups intact with metrics on.

Label cardinality is bounded per metric: once ``max_label_sets`` distinct
label combinations exist, further combinations fold into a single
``__other__`` series instead of growing without bound (a scrape target
must never OOM its own exporter because session ids are unbounded).

Histograms keep exact ``count``/``sum`` plus a bounded reservoir
(Vitter's algorithm R, deterministic seed) from which p50/p95/p99 are
answered — memory stays O(reservoir) regardless of observation count.

Collector outputs use the Prometheus naming convention to pick a type:
names ending in ``_total`` snapshot as counters, everything else as
gauges.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import MetricsError

logger = logging.getLogger("repro.obs.metrics")

OVERFLOW_LABEL = "__other__"
"""Label value that absorbs series beyond the per-metric cardinality cap."""

DEFAULT_MAX_LABEL_SETS = 64
DEFAULT_RESERVOIR_SIZE = 1024
QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) \
            or name[0].isdigit():
        raise MetricsError(f"invalid metric name {name!r}")
    return name


class _Metric:
    """Common labelled-series machinery (one lock per metric)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...],
                 max_label_sets: int) -> None:
        self.name = _validate_name(name)
        self.help = help_text
        self.label_names = tuple(label_names)
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        """Resolve **labels to a series key, folding overflow series.

        Callers hold ``self._lock``.
        """
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        if key not in self._series and key and \
                len(self._series) >= self._max_label_sets:
            key = tuple(OVERFLOW_LABEL for _ in self.label_names)
        return key

    def _labels_of(self, key: tuple) -> dict:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def samples(self) -> list[dict]:
        with self._lock:
            return [{"labels": self._labels_of(key), "value": value}
                    for key, value in self._series.items()]


class Gauge(_Metric):
    """A value that can go up and down; optionally callback-backed."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        with self._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` at snapshot time (unlabelled gauges only)."""
        if self.label_names:
            raise MetricsError(
                f"set_function on labelled gauge {self.name}")
        self._fn = fn

    def value(self, **labels: object) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def samples(self) -> list[dict]:
        if self._fn is not None:
            try:
                return [{"labels": {}, "value": float(self._fn())}]
            except Exception:
                logger.exception("gauge callback %s failed", self.name)
                return []
        with self._lock:
            return [{"labels": self._labels_of(key), "value": value}
                    for key, value in self._series.items()]


class _Reservoir:
    """Per-series histogram state: exact count/sum + sampled values."""

    __slots__ = ("count", "sum", "values", "rng")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.values: list[float] = []
        # Deterministic per-series stream: snapshots are reproducible in
        # tests and the sampler never touches the global random state.
        self.rng = random.Random(0x5EED)


class Histogram(_Metric):
    """Bounded-reservoir histogram answering p50/p95/p99."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...], max_label_sets: int,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        super().__init__(name, help_text, label_names, max_label_sets)
        self._reservoir_size = reservoir_size

    def observe(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._key(labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Reservoir()
            series.count += 1
            series.sum += value
            if len(series.values) < self._reservoir_size:
                series.values.append(value)
            else:
                # Vitter's algorithm R: each of the n observations ends
                # up in the reservoir with probability size/n.
                slot = series.rng.randrange(series.count)
                if slot < self._reservoir_size:
                    series.values[slot] = value

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return 0 if series is None else series.count

    def percentile(self, q: float, **labels: object) -> float:
        """Nearest-rank percentile over the reservoir (q in [0, 100])."""
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None or not series.values:
                return 0.0
            return _nearest_rank(sorted(series.values), q)

    def samples(self) -> list[dict]:
        with self._lock:
            out = []
            for key, series in self._series.items():
                ordered = sorted(series.values)
                sample = {
                    "labels": self._labels_of(key),
                    "count": series.count,
                    "sum": series.sum,
                }
                for _q, name in QUANTILES:
                    sample[name] = (_nearest_rank(ordered,
                                                  float(_q) * 100)
                                    if ordered else 0.0)
                out.append(sample)
            return out


def _nearest_rank(ordered: list[float], q: float) -> float:
    rank = min(len(ordered) - 1,
               max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


class MetricsRegistry:
    """Get-or-create home for every metric of one warehouse."""

    def __init__(self, *, max_label_sets: int = DEFAULT_MAX_LABEL_SETS
                 ) -> None:
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], "dict | Iterable"]] = []

    # -- instruments ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Iterable[str]) -> _Metric:
        label_names = tuple(labels)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, label_names,
                             self.max_label_sets)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise MetricsError(
                f"metric {name} already registered as {metric.kind}")
        if metric.label_names != label_names:
            raise MetricsError(
                f"metric {name} labels {metric.label_names} != "
                f"{label_names}")
        return metric

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = ()) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labels)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn: Callable[[], "dict | Iterable"]
                           ) -> Callable:
        """Register a scrape-time sampler.

        ``fn`` returns either ``{name: value}`` (``_total`` suffix →
        counter, else gauge) or an iterable of
        ``(name, kind, help, labels_dict, value)`` tuples.  Returns the
        handle to pass to :meth:`unregister_collector`.
        """
        with self._lock:
            self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Callable) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def collector_count(self) -> int:
        """Registered collectors (lifecycle-leak regression checks)."""
        with self._lock:
            return len(self._collectors)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Every metric as plain data: ``{name: {type, help, samples}}``.

        Instrument reads take each metric's own lock (point-in-time
        consistent per metric); collector failures are logged and
        skipped, never propagated into the serving path.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        out: dict[str, dict] = {}
        for metric in metrics:
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            }
        for fn in collectors:
            try:
                produced = fn()
            except Exception:
                logger.exception("metrics collector %r failed", fn)
                continue
            self._merge_collected(out, produced)
        return out

    @staticmethod
    def _merge_collected(out: dict, produced) -> None:
        if isinstance(produced, dict):
            produced = (
                (name, "counter" if name.endswith("_total") else "gauge",
                 "", {}, value)
                for name, value in produced.items()
            )
        for name, kind, help_text, labels, value in produced:
            entry = out.setdefault(
                name, {"type": kind, "help": help_text, "samples": []})
            entry["samples"].append(
                {"labels": dict(labels), "value": value})


class MetricsSnapshotter:
    """Daemon thread snapshotting a registry at a fixed interval.

    Owned by :class:`~repro.service.service.WarehouseService` when
    ``metrics_interval_s`` is set; keeps a bounded history so a scraper
    (or a test) can read recent snapshots without ever touching the
    serving threads.
    """

    def __init__(self, registry: MetricsRegistry, interval_s: float,
                 *, history: int = 120) -> None:
        if interval_s <= 0:
            raise MetricsError("snapshot interval must be positive")
        self.registry = registry
        self.interval_s = interval_s
        self._snapshots: "deque[dict]" = deque(maxlen=history)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-snapshot", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()

    def snapshots(self) -> list[dict]:
        """Recent snapshots, oldest first: ``{"at": ts, "metrics": …}``."""
        with self._lock:
            return list(self._snapshots)

    def _take(self) -> None:
        snap = {"at": time.time(), "metrics": self.registry.snapshot()}
        with self._lock:
            self._snapshots.append(snap)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._take()
            except Exception:
                # A broken collector must not kill the snapshot thread.
                logger.exception("metrics snapshot failed (continuing)")
        # Final snapshot on shutdown so short-lived services record one.
        try:
            self._take()
        except Exception:
            logger.exception("final metrics snapshot failed")


class ExtractionInstruments:
    """Hot-path instruments the lazy binding bumps per extraction.

    Bundled so :class:`~repro.etl.lazy.LazyDataBinding` pays attribute
    reads, never registry lookups, on the extraction path.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.extract_seconds = registry.histogram(
            "repro_extract_seconds",
            "Wall time of one file-extraction call")
        self.extract_records_total = registry.counter(
            "repro_extract_records_total",
            "Records extracted from source files")
        self.extract_rows_total = registry.counter(
            "repro_extract_rows_total",
            "Rows extracted from source files")
        self.coalesce_wait_seconds = registry.histogram(
            "repro_coalesce_wait_seconds",
            "Time spent waiting on another session's in-flight extraction")
        self.stale_files_total = registry.counter(
            "repro_stale_files_total",
            "Files whose cache/promoted state was dropped after a rewrite")
