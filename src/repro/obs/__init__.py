"""Warehouse-wide observability: metrics, span tracing, exporters.

* :mod:`repro.obs.metrics` — the thread-safe :class:`MetricsRegistry`
  (counters, gauges, bounded-reservoir histograms) every hot layer
  reports through;
* :mod:`repro.obs.tracing` — per-query span trees
  (parse → bind → optimize → execute → per-operator frames →
  extraction events), the substrate of EXPLAIN ANALYZE;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshots, plus the strict parser CI validates scrapes with;
* :mod:`repro.obs.slowlog` — the threshold-gated slow-query log.
"""

from repro.obs.export import (
    label_cardinality,
    parse_exposition,
    render_prometheus,
    snapshot_json,
)
from repro.obs.metrics import (
    Counter,
    ExtractionInstruments,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshotter,
    OVERFLOW_LABEL,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import OpFrame, QueryProfile, span_tree

__all__ = [
    "Counter",
    "ExtractionInstruments",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "OVERFLOW_LABEL",
    "OpFrame",
    "QueryProfile",
    "SlowQueryLog",
    "label_cardinality",
    "parse_exposition",
    "render_prometheus",
    "snapshot_json",
    "span_tree",
]
