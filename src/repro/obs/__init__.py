"""Warehouse-wide observability: metrics, span tracing, exporters.

* :mod:`repro.obs.metrics` — the thread-safe :class:`MetricsRegistry`
  (counters, gauges, bounded-reservoir histograms) every hot layer
  reports through;
* :mod:`repro.obs.tracing` — per-query span trees
  (parse → bind → optimize → execute → per-operator frames →
  extraction events), the substrate of EXPLAIN ANALYZE;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshots, plus the strict parser CI validates scrapes with;
* :mod:`repro.obs.slowlog` — the threshold-gated slow-query log;
* :mod:`repro.obs.journal` — the bounded, durable per-query journal
  behind ``sys.queries`` / ``sys.sessions``;
* :mod:`repro.obs.systables` — ``sys.*`` virtual system tables served
  straight through the SQL engine;
* :mod:`repro.obs.http` — the stdlib HTTP observability endpoint
  (``/metrics``, ``/healthz``, ``/sys/<table>``).
"""

from repro.obs.export import (
    label_cardinality,
    parse_exposition,
    render_prometheus,
    snapshot_json,
)
from repro.obs.metrics import (
    Counter,
    ExtractionInstruments,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshotter,
    OVERFLOW_LABEL,
)
from repro.obs.http import ObservabilityServer
from repro.obs.journal import (
    QueryJournal,
    current_context,
    params_hash,
    query_context,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.systables import (
    SYSTEM_TABLE_COLUMNS,
    install_engine_system_tables,
    install_warehouse_system_tables,
)
from repro.obs.tracing import OpFrame, QueryProfile, span_tree

__all__ = [
    "Counter",
    "ExtractionInstruments",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "OVERFLOW_LABEL",
    "ObservabilityServer",
    "OpFrame",
    "QueryJournal",
    "QueryProfile",
    "SYSTEM_TABLE_COLUMNS",
    "SlowQueryLog",
    "current_context",
    "install_engine_system_tables",
    "install_warehouse_system_tables",
    "params_hash",
    "query_context",
    "label_cardinality",
    "parse_exposition",
    "render_prometheus",
    "snapshot_json",
    "span_tree",
]
