"""``sys.*`` system-table definitions and their providers.

The warehouse's own runtime state — queries, sessions, metrics, caches,
heat, promotions, on-disk segments — is exposed as read-only virtual
tables in the reserved ``sys`` schema, queryable through the normal
SQL surface (``SELECT status, count(*) FROM sys.queries GROUP BY
status`` just works, joins included).  Each table is a
:class:`~repro.db.table.SystemTable` whose provider samples the live
subsystem at *scan* time, so cached plans always see current data.

Two registration entry points:

* :func:`install_engine_system_tables` — journal-backed tables every
  :class:`~repro.db.exec.engine.Database` has (``sys.queries``,
  ``sys.sessions``).
* :func:`install_warehouse_system_tables` — subsystem tables wired by
  :class:`~repro.seismology.warehouse.SeismicWarehouse`
  (``sys.metrics``, ``sys.extraction_cache``, ``sys.bufferpool``,
  ``sys.heat``, ``sys.promoted``, ``sys.segments``, ``sys.shards``).
"""

from __future__ import annotations

import json
from typing import Callable, Sequence

from repro.db.table import ColumnSpec, SystemTable, TableSchema
from repro.db.types import DataType

B = DataType.BIGINT
D = DataType.DOUBLE
S = DataType.VARCHAR
BOOL = DataType.BOOLEAN

QUERIES_COLUMNS: list[tuple[str, DataType]] = [
    ("id", B), ("session", S), ("sql", S), ("params_hash", S),
    ("status", S), ("error", S),
    ("started_at", D), ("queued_s", D),
    ("parse_s", D), ("bind_s", D), ("optimize_s", D), ("execute_s", D),
    ("total_s", D),
    ("plan_cache_hit", BOOL),
    ("rows_out", B), ("rows_extracted", B), ("rows_extracted_here", B),
    ("rows_coalesced", B), ("rows_served_eager", B),
    ("pages_read", B), ("pages_skipped_zone", B),
]

SESSIONS_COLUMNS: list[tuple[str, DataType]] = [
    ("session", S), ("queries", B), ("errors", B),
    ("rows_out", B), ("rows_coalesced", B), ("rows_served_eager", B),
    ("pages_read", B),
    ("execute_s", D), ("total_s", D),
    ("first_at", D), ("last_at", D),
]

METRICS_COLUMNS: list[tuple[str, DataType]] = [
    ("name", S), ("kind", S), ("labels", S), ("stat", S), ("value", D),
]

EXTRACTION_CACHE_COLUMNS: list[tuple[str, DataType]] = [
    ("uri", S), ("seq_no", B), ("nbytes", B), ("hits", B),
]

BUFFERPOOL_COLUMNS: list[tuple[str, DataType]] = [
    ("lookups", B), ("hits", B), ("misses", B), ("evictions", B),
    ("disk_reads", B), ("bytes_read", B), ("coalesced_loads", B),
    ("pages", B), ("used_bytes", B), ("budget_bytes", B), ("pinned", B),
]

HEAT_COLUMNS: list[tuple[str, DataType]] = [
    ("uri", S), ("seq_no", B), ("score", D), ("extractions", B),
    ("cache_hits", B), ("eager_hits", B), ("nbytes", B), ("last_touch", D),
]

PROMOTED_COLUMNS: list[tuple[str, DataType]] = [
    ("uri", S), ("seq_no", B), ("segment", S), ("rows", B),
    ("columns", B), ("mtime_ns", B),
]

SEGMENTS_COLUMNS: list[tuple[str, DataType]] = [
    ("name", S), ("kind", S), ("segment", S), ("rows", B), ("bytes", B),
]

CONNECTIONS_COLUMNS: list[tuple[str, DataType]] = [
    ("session", S), ("peer", S), ("principal", S),
    ("open_cursors", B), ("cursors_total", B),
    ("bytes_in", B), ("bytes_out", B),
    ("idle_s", D), ("connected_at", D),
]

SHARDS_COLUMNS: list[tuple[str, DataType]] = [
    ("shard_id", B), ("pid", B), ("alive", BOOL), ("files", B),
    ("queries", B), ("extracts", B), ("rows_extracted", B),
    ("errors", B), ("restarts", B),
]

SYSTEM_TABLE_COLUMNS: dict[str, list[tuple[str, DataType]]] = {
    "queries": QUERIES_COLUMNS,
    "sessions": SESSIONS_COLUMNS,
    "metrics": METRICS_COLUMNS,
    "extraction_cache": EXTRACTION_CACHE_COLUMNS,
    "bufferpool": BUFFERPOOL_COLUMNS,
    "heat": HEAT_COLUMNS,
    "promoted": PROMOTED_COLUMNS,
    "segments": SEGMENTS_COLUMNS,
    "connections": CONNECTIONS_COLUMNS,
    "shards": SHARDS_COLUMNS,
}
"""Schema reference for every ``sys.*`` table (README + HTTP docs)."""


def _default_for(dtype: DataType):
    if dtype == S:
        return ""
    if dtype == BOOL:
        return False
    if dtype == D:
        return 0.0
    return 0


def rows_to_columns(rows: Sequence[dict],
                    columns: list[tuple[str, DataType]]) -> dict[str, list]:
    """Pivot row dicts into the aligned column lists a provider returns."""
    return {
        name: [row.get(name, _default_for(dtype)) for row in rows]
        for name, dtype in columns
    }


def _register(catalog, name: str,
              columns: list[tuple[str, DataType]],
              provider: Callable[[], dict]) -> SystemTable:
    schema = TableSchema([ColumnSpec(n, dtype) for n, dtype in columns])
    return catalog.register_system_table(
        SystemTable(f"sys.{name}", schema, provider)
    )


# -- engine-level tables (journal-backed) -----------------------------------


def install_engine_system_tables(db) -> None:
    """Register ``sys.queries`` and ``sys.sessions`` over ``db.journal``."""
    journal = db.journal

    def queries() -> dict:
        return rows_to_columns(journal.entries(), QUERIES_COLUMNS)

    def sessions() -> dict:
        return rows_to_columns(journal.session_summary(), SESSIONS_COLUMNS)

    _register(db.catalog, "queries", QUERIES_COLUMNS, queries)
    _register(db.catalog, "sessions", SESSIONS_COLUMNS, sessions)


# -- warehouse-level tables --------------------------------------------------


def _metrics_rows(registry) -> list[dict]:
    """Flatten a registry snapshot: one row per sample statistic."""
    rows: list[dict] = []
    for name, info in sorted(registry.snapshot().items()):
        kind = info.get("type", "gauge")
        for sample in info.get("samples", ()):
            labels = json.dumps(sample.get("labels", {}), sort_keys=True)
            if "value" in sample:
                rows.append({"name": name, "kind": kind, "labels": labels,
                             "stat": "value",
                             "value": float(sample["value"])})
                continue
            for stat in ("count", "sum", "p50", "p95", "p99"):
                if stat in sample:
                    rows.append({"name": name, "kind": kind,
                                 "labels": labels, "stat": stat,
                                 "value": float(sample[stat])})
    return rows


def install_warehouse_system_tables(warehouse) -> None:
    """Register the subsystem ``sys.*`` tables over a warehouse.

    Providers tolerate absent subsystems (eager mode has no extraction
    cache, memory-only warehouses have no bufferpool or segments) by
    returning zero rows — the tables always exist, they are just empty.
    """

    def metrics() -> dict:
        return rows_to_columns(_metrics_rows(warehouse.metrics_registry),
                               METRICS_COLUMNS)

    def extraction_cache() -> dict:
        cache = warehouse.cache
        rows = [] if cache is None else [
            {"uri": uri, "seq_no": seq, "nbytes": nbytes, "hits": hits}
            for uri, seq, nbytes, hits in cache.contents()
        ]
        return rows_to_columns(rows, EXTRACTION_CACHE_COLUMNS)

    def bufferpool() -> dict:
        store = warehouse.store
        rows = [] if store is None else [store.pool.snapshot()]
        return rows_to_columns(rows, BUFFERPOOL_COLUMNS)

    def heat() -> dict:
        tracker = warehouse.heat
        rows = [] if tracker is None else [
            {"uri": uri, "seq_no": seq, "score": score,
             "extractions": unit.extractions, "cache_hits": unit.cache_hits,
             "eager_hits": unit.eager_hits, "nbytes": unit.nbytes,
             "last_touch": unit.last_touch}
            for uri, seq, score, unit in tracker.snapshot()
        ]
        return rows_to_columns(rows, HEAT_COLUMNS)

    def promoted() -> dict:
        store = warehouse.promoted
        rows = []
        if store is not None:
            for uri, seq in sorted(store.unit_keys()):
                unit = store.unit(uri, seq)
                if unit is None:
                    continue  # demoted between keys() and unit()
                rows.append({"uri": uri, "seq_no": seq,
                             "segment": unit.segment, "rows": unit.rows,
                             "columns": len(unit.columns),
                             "mtime_ns": unit.mtime_ns})
        return rows_to_columns(rows, PROMOTED_COLUMNS)

    def segments() -> dict:
        store = warehouse.store
        rows = [] if store is None else store.segments_snapshot()
        return rows_to_columns(rows, SEGMENTS_COLUMNS)

    def shards() -> dict:
        executor = getattr(warehouse, "sharding", None)
        rows = [] if executor is None else executor.describe()
        return rows_to_columns(rows, SHARDS_COLUMNS)

    catalog = warehouse.db.catalog
    _register(catalog, "metrics", METRICS_COLUMNS, metrics)
    _register(catalog, "extraction_cache", EXTRACTION_CACHE_COLUMNS,
              extraction_cache)
    _register(catalog, "bufferpool", BUFFERPOOL_COLUMNS, bufferpool)
    _register(catalog, "heat", HEAT_COLUMNS, heat)
    _register(catalog, "promoted", PROMOTED_COLUMNS, promoted)
    _register(catalog, "segments", SEGMENTS_COLUMNS, segments)
    _register(catalog, "shards", SHARDS_COLUMNS, shards)


# -- wire-server table -------------------------------------------------------


def install_connections_table(db, snapshot: Callable[[], list]) -> None:
    """Register ``sys.connections`` over a wire server's live sessions.

    ``snapshot`` returns one row dict per open TCP session (see
    :meth:`repro.net.server.WireServer.connections_snapshot`).
    Re-registration replaces the provider, so serving the same
    warehouse again after a shutdown swaps in the new server's view.
    """

    def connections() -> dict:
        return rows_to_columns(snapshot(), CONNECTIONS_COLUMNS)

    _register(db.catalog, "connections", CONNECTIONS_COLUMNS, connections)
