"""The query journal behind ``sys.queries``.

A :class:`QueryJournal` is a bounded, thread-safe ring buffer of
finished executions — one JSON-friendly entry per query, fed from the
engine's :class:`~repro.db.exec.engine.QueryReport` path on both the
materialised and streaming routes, successes and failures alike.  The
``sys.queries`` and ``sys.sessions`` system tables are views over it,
and :meth:`export_state` / :meth:`import_state` round-trip it through
the table-store manifest so query history survives a checkpoint →
warm-start cycle the same way promoted segments do.

Enrichment that only the *serving* layer knows (which session issued
the query, how long it queued) travels through a context variable:
:func:`query_context` wraps an execution, and the engine reads
:func:`current_context` when it records the entry.  Direct, unserved
connections fall back to the ``"local"`` session.
"""

from __future__ import annotations

import contextvars
import hashlib
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional

DEFAULT_JOURNAL_CAPACITY = 1024

DEFAULT_SESSION = "local"
"""Session attributed to queries running outside a service worker."""

ENTRY_FIELDS = (
    "id", "session", "sql", "params_hash", "status", "error",
    "started_at", "queued_s",
    "parse_s", "bind_s", "optimize_s", "execute_s", "total_s",
    "plan_cache_hit",
    "rows_out", "rows_extracted", "rows_extracted_here", "rows_coalesced",
    "rows_served_eager", "pages_read", "pages_skipped_zone",
)
"""Every journal entry key, in ``sys.queries`` column order."""

_ENTRY_DEFAULTS = {
    "session": DEFAULT_SESSION, "sql": "", "params_hash": "",
    "status": "ok", "error": "",
    "started_at": 0.0, "queued_s": 0.0,
    "parse_s": 0.0, "bind_s": 0.0, "optimize_s": 0.0, "execute_s": 0.0,
    "total_s": 0.0,
    "plan_cache_hit": False,
    "rows_out": 0, "rows_extracted": 0, "rows_extracted_here": 0,
    "rows_coalesced": 0, "rows_served_eager": 0,
    "pages_read": 0, "pages_skipped_zone": 0,
}
"""Per-field defaults backfilled by :meth:`QueryJournal.append`, so
hand-appended entries aggregate (and scan) like engine-recorded ones."""

_ERROR_MAX_CHARS = 500

_query_context: contextvars.ContextVar[Optional[dict]] = \
    contextvars.ContextVar("repro_query_context", default=None)


@contextmanager
def query_context(session: str, *, queued_s: float = 0.0) -> Iterator[None]:
    """Attribute every query recorded inside to ``session``."""
    token = _query_context.set(
        {"session": str(session), "queued_s": float(queued_s)}
    )
    try:
        yield
    finally:
        _query_context.reset(token)


def current_context() -> dict:
    """The active attribution, or the local-connection default."""
    ctx = _query_context.get()
    if ctx is None:
        return {"session": DEFAULT_SESSION, "queued_s": 0.0}
    return ctx


def params_hash(values: "Mapping | None") -> str:
    """A short, stable hash of bound parameter values ("" for none).

    Joinable correlation id, not cryptography: the same parameter
    binding always hashes the same, so a slow-log line or log message
    carrying it groups with its `sys.queries` entry and with every
    other execution of the same binding.
    """
    if not values:
        return ""
    if isinstance(values, Mapping):
        canonical = repr(sorted(values.items(), key=lambda kv: repr(kv[0])))
    else:
        canonical = repr(values)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


class QueryJournal:
    """Bounded ring buffer of finished query executions.

    Appends are O(1) and lock-scoped to an id bump plus a deque append,
    so journaling adds no measurable cost to the query path.  When the
    buffer is full the oldest entry is evicted (ring semantics); ids
    keep rising monotonically across evictions *and* across
    :meth:`import_state` restores, so an id never refers to two
    different queries within one journal lineage.
    """

    STATE_VERSION = 1

    def __init__(self, capacity: int = DEFAULT_JOURNAL_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_id = 1
        self._recorded = 0
        self._errors = 0

    # -- recording ------------------------------------------------------------

    def append(self, entry: dict) -> int:
        """Append one entry (copied); returns its assigned id."""
        entry = {**_ENTRY_DEFAULTS, **entry}
        with self._lock:
            entry["id"] = self._next_id
            self._next_id += 1
            self._entries.append(entry)
            self._recorded += 1
            if entry.get("status", "ok") != "ok":
                self._errors += 1
        return entry["id"]

    def record_report(self, report, *, status: str = "ok",
                      error: str = "") -> int:
        """Journal one finished execution from its QueryReport."""
        ctx = current_context()
        entry = {
            "session": ctx["session"],
            "sql": report.sql,
            "params_hash": getattr(report, "params_hash", ""),
            "status": status,
            "error": str(error)[:_ERROR_MAX_CHARS],
            "started_at": time.time() - report.total_s,
            "queued_s": ctx["queued_s"],
            "parse_s": report.parse_s,
            "bind_s": report.bind_s,
            "optimize_s": report.optimize_s,
            "execute_s": report.execute_s,
            "total_s": report.total_s,
            "plan_cache_hit": bool(report.plan_cache_hit),
            "rows_out": report.rows_out,
            "rows_extracted": report.rows_extracted,
            "rows_extracted_here": report.rows_extracted_here,
            "rows_coalesced": report.rows_coalesced,
            "rows_served_eager": report.rows_served_eager,
            "pages_read": report.pages_read,
            "pages_skipped_zone": report.pages_skipped_zone,
        }
        return self.append(entry)

    # -- reading --------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[dict]:
        """Oldest-first copies of every retained entry."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "recorded_total": self._recorded,
                "evicted_total": self._recorded - len(self._entries),
                "errors_total": self._errors,
            }

    def session_summary(self) -> list[dict]:
        """Per-session aggregates over retained entries (sys.sessions)."""
        summaries: dict[str, dict] = {}
        for entry in self.entries():
            agg = summaries.get(entry["session"])
            if agg is None:
                agg = summaries[entry["session"]] = {
                    "session": entry["session"],
                    "queries": 0, "errors": 0,
                    "rows_out": 0, "rows_coalesced": 0,
                    "rows_served_eager": 0, "pages_read": 0,
                    "execute_s": 0.0, "total_s": 0.0,
                    "first_at": entry["started_at"],
                    "last_at": entry["started_at"],
                }
            agg["queries"] += 1
            agg["errors"] += 1 if entry["status"] != "ok" else 0
            agg["rows_out"] += entry["rows_out"]
            agg["rows_coalesced"] += entry["rows_coalesced"]
            agg["rows_served_eager"] += entry["rows_served_eager"]
            agg["pages_read"] += entry["pages_read"]
            agg["execute_s"] += entry["execute_s"]
            agg["total_s"] += entry["total_s"]
            agg["first_at"] = min(agg["first_at"], entry["started_at"])
            agg["last_at"] = max(agg["last_at"], entry["started_at"])
        return [summaries[name] for name in sorted(summaries)]

    # -- durability -----------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe snapshot for the table-store manifest."""
        with self._lock:
            return {
                "version": self.STATE_VERSION,
                "next_id": self._next_id,
                "recorded_total": self._recorded,
                "errors_total": self._errors,
                "entries": [dict(entry) for entry in self._entries],
            }

    def import_state(self, state: Optional[dict]) -> int:
        """Restore a spilled snapshot; returns entries restored.

        Restored entries keep their original ids; fresh ids continue
        strictly above everything restored, so history and new queries
        interleave without collisions.  Tolerates ``None`` / unknown
        versions (cold start, or a manifest from before the journal
        existed) by restoring nothing.
        """
        if not state or state.get("version") != self.STATE_VERSION:
            return 0
        entries = [dict(entry) for entry in state.get("entries", ())]
        entries = entries[-self.capacity:]
        with self._lock:
            self._entries.clear()
            self._entries.extend(entries)
            top = max((entry.get("id", 0) for entry in entries), default=0)
            self._next_id = max(int(state.get("next_id", 1)), top + 1,
                                self._next_id)
            self._recorded = int(state.get("recorded_total",
                                           len(entries)))
            self._errors = int(state.get("errors_total", 0))
        return len(entries)
