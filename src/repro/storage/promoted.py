"""Promoted segments: eagerly materialized extraction units on disk.

The adaptive promotion subsystem closes the paper's lazy-vs-eager
crossover at runtime: units the workload keeps re-touching are written
*once* into segment files (the same page codecs the table store uses) and
served from there afterwards — a disk-backed scan through the buffer
pool, like :class:`~repro.db.plan.physical.PDiskScan`, instead of
re-running extraction and transformation against the source file.

:class:`PromotedStore` owns the unit index and the read/write path:

* **promote** — :meth:`promote_batch` writes one immutable segment
  holding the transformed columns of a batch of ``(uri, seq_no)`` units
  and registers them in the store manifest (area ``promoted``), so they
  survive restarts exactly like checkpointed tables;
* **serve** — :meth:`fetch` returns a unit's columns if the segment
  covers the needed column set *and* the unit's admission mtime still
  matches the source file (staleness falls back to the lazy path);
* **demote** — :meth:`drop_segment` removes a whole segment (the
  demotion grain: segments are immutable, so cold data is reclaimed by
  dropping files, never rewritten).

Thread safety: queries ``fetch`` concurrently from service workers while
the background promoter mutates the index; the internal lock covers the
index, and segment files themselves are immutable once published.
Manifest commits are serialised by :attr:`mutate_lock`, which the
promoter holds for a whole promote/demote cycle.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import StorageError
from repro.storage.segment import IOCounter, SegmentReader
from repro.storage.store import TableStore


@dataclass
class PromotedUnit:
    """Index entry: where one promoted unit's columns live."""

    uri: str
    seq_no: int
    mtime_ns: int                  # source-file mtime at promotion
    segment: str                   # segment file name inside the store
    columns: dict[str, str]        # column name -> segment slot name
    rows: int


@dataclass
class PromotedStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stale_drops: int = 0
    promoted_units: int = 0
    demoted_units: int = 0


class PromotedStore:
    """Index + I/O for promoted segments inside one :class:`TableStore`."""

    def __init__(self, store: TableStore) -> None:
        self.store = store
        self._units: dict[tuple[str, int], PromotedUnit] = {}
        self._segments: dict[str, list[tuple[str, int]]] = {}
        # Per-file views: which seq_nos are promoted, and the source
        # file's mtime at promotion.  The mtime doubles as the
        # warm-start staleness sentinel for fully-promoted files, whose
        # cache entries are deliberately not spilled (see
        # LazyETL._covered_by_promotion) — without it, a rewrite across
        # a restart would never trigger the metadata refresh.
        self._by_uri: dict[str, set[int]] = {}
        self._file_mtime: dict[str, int] = {}
        self._readers: dict[str, SegmentReader] = {}
        self._lock = threading.RLock()
        # Serialises whole promote/demote cycles (manifest commits are
        # not safe to interleave from two promoters).
        self.mutate_lock = threading.Lock()
        self.stats = PromotedStats()
        self._load_index()

    def _load_index(self) -> None:
        for segment, entries in self.store.promoted_segments().items():
            keys: list[tuple[str, int]] = []
            for entry in entries:
                unit = PromotedUnit(
                    uri=entry["uri"], seq_no=int(entry["seq_no"]),
                    mtime_ns=int(entry["mtime_ns"]), segment=segment,
                    columns=dict(entry["columns"]), rows=int(entry["rows"]),
                )
                self._units[(unit.uri, unit.seq_no)] = unit
                self._by_uri.setdefault(unit.uri, set()).add(unit.seq_no)
                self._file_mtime[unit.uri] = unit.mtime_ns
                keys.append((unit.uri, unit.seq_no))
            self._segments[segment] = keys

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._units)

    def __contains__(self, key: tuple[str, int]) -> bool:
        with self._lock:
            return key in self._units

    def unit(self, uri: str, seq_no: int) -> Optional[PromotedUnit]:
        with self._lock:
            return self._units.get((uri, seq_no))

    def unit_keys(self) -> set[tuple[str, int]]:
        with self._lock:
            return set(self._units)

    def segments(self) -> dict[str, list[tuple[str, int]]]:
        with self._lock:
            return {seg: list(keys) for seg, keys in self._segments.items()}

    def segment_sizes(self) -> dict[str, int]:
        """On-disk bytes per live promoted segment."""
        with self._lock:
            segments = list(self._segments)
        sizes: dict[str, int] = {}
        for segment in segments:
            try:
                sizes[segment] = os.path.getsize(
                    os.path.join(self.store.root, segment))
            except OSError:
                sizes[segment] = 0
        return sizes

    def disk_bytes(self) -> int:
        """On-disk footprint of every live promoted segment."""
        return sum(self.segment_sizes().values())

    # -- serving -----------------------------------------------------------------

    def fetch(self, uri: str, seq_no: int, needed: Iterable[str],
              current_mtime_ns: int
              ) -> Optional[tuple[dict[str, np.ndarray], int]]:
        """Serve one unit's columns from its promoted segment.

        Returns ``(columns, pages_read)`` or ``None`` when the unit is
        not promoted, does not cover ``needed``, or is stale (the source
        file changed since promotion — the unit is dropped from the index
        so the lazy path re-extracts, and the next promoter cycle
        reclaims the segment if nothing live remains in it).
        """
        needed = list(needed)
        with self._lock:
            self.stats.lookups += 1
            unit = self._units.get((uri, seq_no))
            if unit is None or any(col not in unit.columns for col in needed):
                self.stats.misses += 1
                return None
            if unit.mtime_ns != current_mtime_ns:
                self._drop_unit_locked((uri, seq_no))
                self.stats.stale_drops += 1
                self.stats.misses += 1
                return None
            reader = self._reader_locked(unit.segment)
        io = IOCounter()  # private tally: the pool counters are shared
        try:
            columns = {col: reader.read_column(unit.columns[col],
                                               io=io).values
                       for col in needed}
        except (StorageError, ValueError, OSError):
            # The segment vanished under us (concurrent demotion swept
            # the file or closed the reader's mmap): behave like a miss,
            # the lazy path still works.
            with self._lock:
                self._drop_unit_locked((uri, seq_no))
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return columns, io.disk_reads

    def file_has_units(self, uri: str) -> bool:
        """Whether any unit of this file is promoted — the query path's
        per-file short-circuit, so files with nothing promoted pay one
        lock round-trip instead of one per record."""
        with self._lock:
            return uri in self._by_uri

    def file_is_stale(self, uri: str, current_mtime_ns: int) -> bool:
        """Whether the file changed since its units were promoted.

        The query path consults this alongside the extraction cache's
        ``validate_file``: for a fully-promoted file the cache may hold
        no entries (none were spilled), so this is the only staleness
        sentinel that survives a restart.
        """
        with self._lock:
            known = self._file_mtime.get(uri)
            return known is not None and known != current_mtime_ns

    def invalidate_file(self, uri: str) -> int:
        """Stop serving every unit of a changed file (in-memory only;
        the next promoter cycle garbage-collects emptied segments)."""
        with self._lock:
            doomed = [(uri, seq) for seq in self._by_uri.get(uri, ())]
            for key in doomed:
                self._drop_unit_locked(key)
            self.stats.stale_drops += len(doomed)
            return len(doomed)

    def _drop_unit_locked(self, key: tuple[str, int]) -> None:
        unit = self._units.pop(key, None)
        if unit is None:
            return
        keys = self._segments.get(unit.segment)
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
        seqs = self._by_uri.get(key[0])
        if seqs is not None:
            seqs.discard(key[1])
            if not seqs:
                del self._by_uri[key[0]]
                self._file_mtime.pop(key[0], None)

    def _reader_locked(self, segment: str) -> SegmentReader:
        reader = self._readers.get(segment)
        if reader is None:
            reader = SegmentReader(
                os.path.join(self.store.root, segment), self.store.pool
            )
            self._readers[segment] = reader
        return reader

    # -- promotion / demotion ------------------------------------------------------

    def promote_batch(
        self,
        entries: list[tuple[str, int, int, dict[str, np.ndarray]]],
        *, commit: bool = True,
    ) -> Optional[str]:
        """Write one segment of ``(uri, seq_no, mtime_ns, columns)`` units.

        Already-promoted units are re-promoted in the new segment (the
        fresh entry wins in the index; the old segment's copy becomes
        dead weight until demotion reclaims it).  Returns the segment
        file name, or ``None`` for an empty batch.
        """
        entries = [e for e in entries if e[3]]
        if not entries:
            return None
        segment, directory = self.store.save_promoted_segment(
            entries, commit=commit)
        with self._lock:
            keys: list[tuple[str, int]] = []
            for entry in directory:
                unit = PromotedUnit(
                    uri=entry["uri"], seq_no=int(entry["seq_no"]),
                    mtime_ns=int(entry["mtime_ns"]), segment=segment,
                    columns=dict(entry["columns"]), rows=int(entry["rows"]),
                )
                key = (unit.uri, unit.seq_no)
                self._drop_unit_locked(key)  # re-promotion: new copy wins
                self._units[key] = unit
                self._by_uri.setdefault(unit.uri, set()).add(unit.seq_no)
                self._file_mtime[unit.uri] = unit.mtime_ns
                keys.append(key)
            self._segments[segment] = keys
            self.stats.promoted_units += len(keys)
        return segment

    def drop_segment(self, segment: str, *, commit: bool = True) -> int:
        """Demote one whole segment; returns the number of live units
        it still carried."""
        with self._lock:
            keys = self._segments.pop(segment, [])
            for key in list(keys):
                self._drop_unit_locked(key)
            reader = self._readers.pop(segment, None)
            self.stats.demoted_units += len(keys)
        if reader is not None:
            reader.close()
        self.store.drop_promoted_segment(segment, commit=commit)
        return len(keys)

    def empty_segments(self) -> list[str]:
        """Segments whose units have all been invalidated (GC candidates)."""
        with self._lock:
            return [seg for seg, keys in self._segments.items() if not keys]

    def close(self) -> None:
        with self._lock:
            readers, self._readers = list(self._readers.values()), {}
        for reader in readers:
            reader.close()

    def render(self, max_rows: int = 12) -> str:
        with self._lock:
            lines = [
                f"promoted store: {len(self._units)} units in "
                f"{len(self._segments)} segments"
            ]
            for (uri, seq_no), unit in list(self._units.items())[:max_rows]:
                lines.append(
                    f"  {uri} seq={seq_no} rows={unit.rows} "
                    f"cols={sorted(unit.columns)} seg={unit.segment}"
                )
        return "\n".join(lines)
