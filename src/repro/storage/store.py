"""The TableStore: a directory of segment files plus an atomic manifest.

Store layout::

    <root>/
      manifest.json            # schema manifest, committed atomically
      <table>.<gen>.seg        # one segment file per persisted table
      __cache__.<gen>.seg      # extraction-cache snapshot arrays

The manifest records, per table, its qualified name, schema (column
names/types/constraints), row count and segment file, plus free-form
``meta`` keys (e.g. the lazy warehouse's harvest granularity) and the
extraction-cache snapshot directory.  Commits write ``manifest.json.tmp``
then ``os.replace`` it over the manifest — a crash before the rename
leaves the previous manifest fully intact (tested by the crash
simulation in ``tests/test_storage.py``).

Segment files carry a monotone *generation* in their name so an
overwritten table gets a fresh path: buffer-pool keys embed the path,
hence stale pages of the replaced generation can never be served.
Orphaned generations are deleted after a successful commit.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterable, Optional

import numpy as np

from repro.db.column import Column
from repro.db.table import ColumnSpec, ForeignKeySpec, Table, TableSchema
from repro.errors import StorageError
from repro.storage import format as fmt
from repro.storage.bufferpool import BufferPool
from repro.storage.segment import SegmentReader, SegmentWriter

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
_CACHE_SEGMENT = "__cache__"
_PROMOTED_SEGMENT = "__promoted__"


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "columns": [
            {"name": c.name, "dtype": fmt.dtype_name(c.dtype),
             "not_null": c.not_null}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {"columns": list(fk.columns), "ref_table": fk.ref_table,
             "ref_columns": list(fk.ref_columns)}
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_json(data: dict) -> TableSchema:
    return TableSchema(
        columns=[
            ColumnSpec(name=c["name"],
                       dtype=fmt.dtype_from_name(c["dtype"]),
                       not_null=bool(c.get("not_null", False)))
            for c in data["columns"]
        ],
        primary_key=tuple(data.get("primary_key", ())),
        foreign_keys=[
            ForeignKeySpec(columns=tuple(fk["columns"]),
                           ref_table=fk["ref_table"],
                           ref_columns=tuple(fk["ref_columns"]))
            for fk in data.get("foreign_keys", ())
        ],
    )


class TableBacking:
    """Disk residency of one table: what a lazy scan reads from.

    Opens its segment reader on first use and counts pages so the engine
    can report pages read vs skipped per scan.
    """

    def __init__(self, store: "TableStore", qualified_name: str,
                 segment_file: str, row_count: int) -> None:
        self.store = store
        self.qualified_name = qualified_name
        self.segment_file = segment_file
        self.row_count = row_count
        self._reader: Optional[SegmentReader] = None

    @property
    def reader(self) -> SegmentReader:
        if self._reader is None:
            self._reader = SegmentReader(
                os.path.join(self.store.root, self.segment_file),
                self.store.pool,
            )
        return self._reader

    def load_column(self, name: str) -> Column:
        return self.reader.read_column(name)

    def load_column_pages(self, name: str, pages: list[int],
                          io=None) -> Column:
        return self.reader.read_column_pages(name, pages, io)

    def pages_of(self, name: str) -> int:
        return self.reader.pages_of(name)

    def page_row_counts(self, name: str) -> list[int]:
        return self.reader.page_row_counts(name)

    def zone_map(self, name: str):
        return self.reader.zone_map(name)

    def total_pages(self) -> int:
        return self.reader.total_pages()

    def disk_bytes(self) -> int:
        return self.reader.disk_bytes()

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None


class TableStore:
    """Persist/load catalog tables and extraction-cache snapshots."""

    def __init__(self, root: "str | os.PathLike",
                 *, bufferpool_bytes: int = 64 * 1024 * 1024) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.pool = BufferPool(bufferpool_bytes)
        # Manifest writers can live on different threads (a checkpoint on
        # the main thread vs a BackgroundPromoter publishing segments):
        # one reentrant lock serialises every manifest mutation + commit,
        # so generations stay unique, json encoding never sees a dict
        # mutating under it, and the orphan sweep can never run between a
        # segment landing on disk and its manifest entry being recorded.
        self._mutate = threading.RLock()
        self._manifest: dict = {
            "version": MANIFEST_VERSION,
            "generation": 0,
            "tables": {},
            "cache": None,
            "promoted": {},
            "meta": {},
        }
        self._load_manifest()

    # -- manifest ---------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        if not os.path.exists(self.manifest_path):
            return
        with open(self.manifest_path, "rb") as handle:
            data = json.loads(handle.read().decode("utf-8"))
        if data.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"unsupported manifest version {data.get('version')!r} "
                f"in {self.manifest_path}"
            )
        self._manifest = data

    def commit(self) -> None:
        """Atomically publish the manifest, then sweep orphan segments."""
        with self._mutate:
            tmp_path = self.manifest_path + ".tmp"
            encoded = json.dumps(self._manifest, sort_keys=True,
                                 indent=1).encode("utf-8")
            with open(tmp_path, "wb") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.manifest_path)
            self._sweep_orphans()

    def _live_segments(self) -> set[str]:
        live = {entry["segment"] for entry in self._manifest["tables"].values()}
        cache = self._manifest.get("cache")
        if cache is not None:
            live.add(cache["segment"])
        live.update(self._manifest.get("promoted", {}))
        return live

    def _sweep_orphans(self) -> None:
        live = self._live_segments()
        for name in os.listdir(self.root):
            if not name.endswith(".seg"):
                continue
            if name not in live:
                try:
                    os.remove(os.path.join(self.root, name))
                except OSError:  # pragma: no cover - best effort
                    pass

    def _next_generation(self) -> int:
        with self._mutate:
            self._manifest["generation"] = \
                int(self._manifest["generation"]) + 1
            return self._manifest["generation"]

    # -- free-form metadata ----------------------------------------------------------

    def set_meta(self, key: str, value) -> None:
        with self._mutate:
            self._manifest["meta"][key] = value

    def get_meta(self, key: str, default=None):
        return self._manifest["meta"].get(key, default)

    # -- query journal spill (sys.queries durability) -------------------------------

    JOURNAL_META_KEY = "query_journal"

    def save_query_journal(self, state: dict, *, commit: bool = True) -> None:
        """Spill a journal snapshot into the manifest meta area.

        Rides the manifest's atomic commit: either the whole history
        snapshot is durable or the previous one survives intact.
        """
        self.set_meta(self.JOURNAL_META_KEY, state)
        if commit:
            self.commit()

    def load_query_journal(self) -> Optional[dict]:
        """The spilled journal snapshot, or ``None`` on a cold store."""
        return self.get_meta(self.JOURNAL_META_KEY)

    # -- segment inventory (sys.segments) -------------------------------------------

    def segments_snapshot(self) -> list[dict]:
        """Every live segment as a row dict: tables, cache, promoted."""
        with self._mutate:
            tables = {name: dict(entry) for name, entry
                      in self._manifest["tables"].items()}
            cache = self._manifest.get("cache")
            cache = None if cache is None else dict(cache)
            promoted = {seg: list(directory) for seg, directory
                        in self._manifest.get("promoted", {}).items()}

        def size_of(segment: str) -> int:
            try:
                return os.path.getsize(os.path.join(self.root, segment))
            except OSError:
                return 0  # swept or never committed

        rows = [
            {"name": name, "kind": "table", "segment": entry["segment"],
             "rows": int(entry["row_count"]),
             "bytes": size_of(entry["segment"])}
            for name, entry in sorted(tables.items())
        ]
        if cache is not None:
            rows.append({"name": _CACHE_SEGMENT, "kind": "cache",
                         "segment": cache["segment"],
                         "rows": len(cache.get("entries", ())),
                         "bytes": size_of(cache["segment"])})
        for segment, directory in sorted(promoted.items()):
            rows.append({"name": _PROMOTED_SEGMENT, "kind": "promoted",
                         "segment": segment, "rows": len(directory),
                         "bytes": size_of(segment)})
        return rows

    # -- tables -----------------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(self._manifest["tables"])

    def has_table(self, qualified_name: str) -> bool:
        return qualified_name in self._manifest["tables"]

    def schema_of(self, qualified_name: str) -> TableSchema:
        entry = self._entry(qualified_name)
        return _schema_from_json(entry["schema"])

    def row_count_of(self, qualified_name: str) -> int:
        return int(self._entry(qualified_name)["row_count"])

    def _entry(self, qualified_name: str) -> dict:
        try:
            return self._manifest["tables"][qualified_name]
        except KeyError:
            raise StorageError(
                f"store has no table {qualified_name!r}"
            ) from None

    def save_table(self, qualified_name: str, table: Table,
                   *, commit: bool = True) -> str:
        """Write one table's columns as a fresh segment generation."""
        with self._mutate:
            generation = self._next_generation()
            segment_file = f"{qualified_name}.{generation:08d}.seg"
            writer = SegmentWriter(os.path.join(self.root, segment_file))
            try:
                for spec in table.schema.columns:
                    writer.write_column(spec.name, table.column(spec.name))
                writer.finish()
            except BaseException:
                writer.abort()
                raise
            self._manifest["tables"][qualified_name] = {
                "segment": segment_file,
                "schema": _schema_to_json(table.schema),
                "row_count": table.row_count,
            }
            if commit:
                self.commit()
            return segment_file

    def drop_table(self, qualified_name: str, *, commit: bool = True) -> None:
        with self._mutate:
            self._manifest["tables"].pop(qualified_name, None)
            if commit:
                self.commit()

    def backing_for(self, qualified_name: str) -> TableBacking:
        entry = self._entry(qualified_name)
        return TableBacking(self, qualified_name, entry["segment"],
                            int(entry["row_count"]))

    def table_disk_bytes(self, qualified_name: str) -> int:
        entry = self._entry(qualified_name)
        return os.path.getsize(os.path.join(self.root, entry["segment"]))

    def disk_bytes(self) -> int:
        return sum(self.table_disk_bytes(name) for name in self.table_names())

    # -- per-unit segments (cache snapshots + promoted units) -----------------------

    def _write_entry_segment(
        self,
        prefix: str,
        entries: Iterable[tuple[dict, dict[str, np.ndarray]]],
    ) -> tuple[Optional[str], list[dict]]:
        """Write one segment of per-unit arrays; shared by cache
        snapshots and promoted segments so the two encodings can never
        drift apart.

        ``entries`` yields ``(meta, columns)``; each column array becomes
        one slot named ``<index>/<column>``, written as a single page —
        a unit read always wants the whole array, never a page subset.
        Returns ``(segment file, directory)``; an empty input aborts the
        writer and returns ``(None, [])``.  Callers hold ``_mutate``.
        """
        generation = self._next_generation()
        segment_file = f"{prefix}.{generation:08d}.seg"
        writer = SegmentWriter(os.path.join(self.root, segment_file),
                               uniform=False)
        directory: list[dict] = []
        try:
            for count, (meta, columns) in enumerate(entries):
                slot_columns = {}
                rows = 0
                for name, values in columns.items():
                    slot = f"{count}/{name}"
                    values = np.asarray(values)
                    rows = len(values)
                    writer.write_column(
                        slot,
                        Column.from_numpy(_np_to_sql_dtype(values), values),
                        page_rows=max(len(values), 1),
                    )
                    slot_columns[name] = slot
                directory.append({**meta, "columns": slot_columns,
                                  "rows": rows})
            if not directory:
                writer.abort()
                return None, []
            writer.finish()
        except BaseException:
            writer.abort()
            raise
        return segment_file, directory

    # -- extraction-cache snapshots ----------------------------------------------

    def has_cache_snapshot(self) -> bool:
        return self._manifest.get("cache") is not None

    def save_cache_snapshot(
        self,
        entries: Iterable[tuple[str, int, int, float,
                                dict[str, np.ndarray]]],
        *, commit: bool = True,
    ) -> int:
        """Persist extraction-cache entries.

        ``entries`` yields ``(uri, seq_no, mtime_ns, cost_estimate,
        columns)``; array payloads go into one segment (reusing the page
        codecs — sample data compresses like any other int64 column),
        entry keys into the manifest.
        """
        with self._mutate:
            segment_file, directory = self._write_entry_segment(
                _CACHE_SEGMENT,
                (({"uri": uri, "seq_no": seq_no, "mtime_ns": mtime_ns,
                   "cost": cost}, columns)
                 for uri, seq_no, mtime_ns, cost, columns in entries),
            )
            if segment_file is None:
                self._manifest["cache"] = None
            else:
                self._manifest["cache"] = {
                    "segment": segment_file,
                    "entries": directory,
                }
            if commit:
                self.commit()
            return len(directory)

    def load_cache_snapshot(
        self,
    ) -> list[tuple[str, int, int, float, dict[str, np.ndarray]]]:
        """Read back the snapshot written by :meth:`save_cache_snapshot`."""
        snapshot = self._manifest.get("cache")
        if snapshot is None:
            return []
        reader = SegmentReader(
            os.path.join(self.root, snapshot["segment"]), self.pool
        )
        try:
            out = []
            for entry in snapshot["entries"]:
                columns = {
                    name: reader.read_column(slot).values
                    for name, slot in entry["columns"].items()
                }
                out.append((
                    entry["uri"], int(entry["seq_no"]),
                    int(entry["mtime_ns"]), float(entry["cost"]), columns,
                ))
            return out
        finally:
            reader.close()

    # -- promoted segments (adaptive lazy→eager promotion) -------------------------

    def promoted_segments(self) -> dict[str, list[dict]]:
        """Manifest directory of promoted segments: file -> unit entries."""
        return self._manifest.get("promoted", {})

    def save_promoted_segment(
        self,
        entries: Iterable[tuple[str, int, int, dict[str, np.ndarray]]],
        *, commit: bool = True,
    ) -> tuple[str, list[dict]]:
        """Persist one batch of promoted units as an immutable segment.

        ``entries`` yields ``(uri, seq_no, mtime_ns, columns)``; the
        transformed arrays reuse the table page codecs, the unit
        directory lands in the manifest's ``promoted`` area.  Returns
        the segment file name and its directory entries.
        """
        with self._mutate:
            segment_file, directory = self._write_entry_segment(
                _PROMOTED_SEGMENT,
                (({"uri": uri, "seq_no": seq_no, "mtime_ns": mtime_ns},
                  columns)
                 for uri, seq_no, mtime_ns, columns in entries),
            )
            if segment_file is None:
                raise StorageError("empty promoted batch")
            self._manifest.setdefault("promoted", {})[segment_file] = \
                directory
            if commit:
                self.commit()
            return segment_file, directory

    def drop_promoted_segment(self, segment_file: str,
                              *, commit: bool = True) -> None:
        """Demote one promoted segment (the commit sweep deletes it)."""
        with self._mutate:
            self._manifest.get("promoted", {}).pop(segment_file, None)
            if commit:
                self.commit()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TableStore({self.root}, tables={len(self.table_names())}, "
                f"cache={'yes' if self.has_cache_snapshot() else 'no'})")


# Cache snapshots carry raw NumPy arrays (not typed Columns); map their
# physical dtype back to a SQL type for the page layer.
_NP_TO_SQL = {
    "int64": "bigint",
    "float64": "double",
    "bool": "boolean",
    "object": "varchar",
}


def _np_to_sql_dtype(values: np.ndarray):
    values = np.asarray(values)
    name = _NP_TO_SQL.get(values.dtype.name)
    if name is None:
        # Unusual widths (int32 etc.) widen losslessly to int64/double.
        if np.issubdtype(values.dtype, np.integer):
            name = "bigint"
        elif np.issubdtype(values.dtype, np.floating):
            name = "double"
        else:
            raise StorageError(
                f"cannot snapshot array of dtype {values.dtype}"
            )
    return fmt.dtype_from_name(name)
