"""The on-disk binary format: pages, segment framing, checksums.

A *page* is the unit of I/O and of buffer-pool caching: one encoded run
of up to :data:`repro.storage.segment.PAGE_ROWS` values of a single
column, framed as::

    +--------+-------+-------+-------+-----------+-------------+---------+
    | "LPG1" | codec | dtype | flags | row_count | payload_len | crc32   |
    |  4 B   |  u8   |  u8   |  u16  |    u32    |     u32     |  u32    |
    +--------+-------+-------+-------+-----------+-------------+---------+
    | payload (codec output) | null-mask bits (present iff flags & 1)    |
    +------------------------+-------------------------------------------+

The CRC covers payload *and* mask, so a flipped bit anywhere in the body
is detected at read time (:class:`~repro.errors.CorruptSegmentError`).
The segment footer (a JSON column directory, see
:mod:`repro.storage.segment`) carries its own CRC trailer, and the store
manifest commits via write-temp-then-``os.replace`` so a crash mid-write
can never expose a torn manifest.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.db.column import Column
from repro.db.types import DataType
from repro.errors import CorruptSegmentError
from repro.storage.codecs import decode_array, encode_array

PAGE_MAGIC = b"LPG1"
SEGMENT_MAGIC = b"LSEG1\0"
SEGMENT_VERSION = 1
FOOTER_TRAILER = struct.Struct("<II4s")   # footer_len, footer_crc, magic
FOOTER_END_MAGIC = b"GESL"

_PAGE_HEADER = struct.Struct("<4sBBHIII")
PAGE_HEADER_BYTES = _PAGE_HEADER.size

_FLAG_HAS_NULLS = 1

_DTYPE_CODES = {
    DataType.BOOLEAN: 0,
    DataType.BIGINT: 1,
    DataType.DOUBLE: 2,
    DataType.VARCHAR: 3,
    DataType.TIMESTAMP: 4,
}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}


def encode_page(column: Column) -> bytes:
    """Frame one column slice as a checksummed page.

    The CRC covers the header fields *and* the body — a flipped bit in
    ``row_count`` or ``payload_len`` is as corrupting as one in the
    payload, so it must be equally detectable.
    """
    codec_id, payload = encode_array(column.dtype, column.values)
    flags = 0
    body = payload
    if column.valid is not None:
        flags |= _FLAG_HAS_NULLS
        body = payload + np.packbits(column.valid.astype(bool)).tobytes()
    bare_header = _PAGE_HEADER.pack(
        PAGE_MAGIC,
        codec_id,
        _DTYPE_CODES[column.dtype],
        flags,
        len(column),
        len(payload),
        0,  # crc slot, excluded from its own checksum
    )
    crc = zlib.crc32(body, zlib.crc32(bare_header[:-4])) & 0xFFFFFFFF
    return bare_header[:-4] + struct.pack("<I", crc) + body


def decode_page(raw: bytes) -> Column:
    """Parse + verify one page; raises on corruption."""
    if len(raw) < PAGE_HEADER_BYTES:
        raise CorruptSegmentError("page truncated before header end")
    magic, codec_id, dtype_code, flags, row_count, payload_len, crc = \
        _PAGE_HEADER.unpack_from(raw, 0)
    if magic != PAGE_MAGIC:
        raise CorruptSegmentError(f"bad page magic {magic!r}")
    dtype = _CODE_DTYPES.get(dtype_code)
    if dtype is None:
        raise CorruptSegmentError(f"unknown dtype code {dtype_code}")
    body = raw[PAGE_HEADER_BYTES:]
    header_crc = zlib.crc32(raw[:PAGE_HEADER_BYTES - 4])
    if zlib.crc32(body, header_crc) & 0xFFFFFFFF != crc:
        raise CorruptSegmentError("page checksum mismatch")
    payload = body[:payload_len]
    values = decode_array(dtype, codec_id, payload, row_count)
    valid = None
    if flags & _FLAG_HAS_NULLS:
        mask_bytes = body[payload_len:]
        bits = np.unpackbits(np.frombuffer(mask_bytes, dtype=np.uint8),
                             count=row_count)
        valid = bits.astype(bool)
    return Column(dtype, values, valid)


def page_codec(raw: bytes) -> int:
    """The codec id of a framed page (introspection / stats)."""
    if len(raw) < PAGE_HEADER_BYTES:
        raise CorruptSegmentError("page truncated before header end")
    return _PAGE_HEADER.unpack_from(raw, 0)[1]


def dtype_name(dtype: DataType) -> str:
    return dtype.value


def dtype_from_name(name: str) -> DataType:
    for dtype in DataType:
        if dtype.value == name:
            return dtype
    raise CorruptSegmentError(f"unknown dtype name {name!r}")
