"""Persistent columnar storage: segment files, codecs, buffer pool, store.

The paper's §3.3 reads "materialization of the extracted and transformed
data is simply caching"; this package makes that cache (and the metadata
warehouse around it) survive process restarts.  Layers, bottom up:

* :mod:`repro.storage.codecs` — lightweight per-page compression (RLE,
  dictionary, frame-of-reference/delta, plain fallback);
* :mod:`repro.storage.format` — the on-disk page / segment-footer binary
  format with CRC checksums;
* :mod:`repro.storage.segment` — segment files: one file per table, one
  page run per column, read lazily via ``mmap`` so untouched columns
  never leave disk;
* :mod:`repro.storage.bufferpool` — a byte-budgeted LRU page cache with
  pin counts, shared by every reader of one store;
* :mod:`repro.storage.store` — the :class:`~repro.storage.store.TableStore`
  directory: schema manifest with atomic-rename commits, table
  persistence, and extraction-cache snapshots for warm starts.
"""

from repro.storage.bufferpool import BufferPool, PoolStats
from repro.storage.codecs import (
    CODEC_NAMES,
    decode_array,
    encode_array,
)
from repro.storage.segment import (
    PAGE_ROWS,
    SegmentReader,
    SegmentWriter,
)
from repro.storage.promoted import PromotedStore, PromotedUnit
from repro.storage.store import TableBacking, TableStore

__all__ = [
    "PromotedStore",
    "PromotedUnit",
    "BufferPool",
    "PoolStats",
    "CODEC_NAMES",
    "decode_array",
    "encode_array",
    "PAGE_ROWS",
    "SegmentReader",
    "SegmentWriter",
    "TableBacking",
    "TableStore",
]
