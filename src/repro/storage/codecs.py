"""Lightweight per-page compression codecs.

Four codecs cover the engine's physical types, in the same spirit as the
Steim coders in :mod:`repro.mseed.steim` (difference coding with reduced
bit widths) but simplified to byte-aligned widths so encode/decode stay
pure NumPy:

* ``plain``   — raw little-endian values (the always-correct fallback);
* ``rle``     — run-length pairs, for near-constant columns such as
  ``file_location`` or ``frequency``;
* ``dict``    — distinct-value dictionary + width-reduced codes, the
  natural VARCHAR encoding (repeated station/channel strings);
* ``for``     — frame of reference: ``min`` + unsigned offsets stored in
  the smallest byte width that fits, optionally after a delta transform
  (``delta`` flag) which suits monotone int64 sample times.

``encode_array`` tries every applicable codec and keeps the smallest
output, so callers never choose wrong — they only pay a small encode-time
cost.  Every payload round-trips exactly: ``decode_array(…encode_array())``
is the identity, NULL masks included (masks travel in the page layer, see
:mod:`repro.storage.format`).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.db.types import DataType, numpy_dtype
from repro.errors import CorruptSegmentError, StorageError

CODEC_PLAIN = 0
CODEC_RLE = 1
CODEC_DICT = 2
CODEC_FOR = 3
CODEC_DELTA_FOR = 4

CODEC_NAMES = {
    CODEC_PLAIN: "plain",
    CODEC_RLE: "rle",
    CODEC_DICT: "dict",
    CODEC_FOR: "for",
    CODEC_DELTA_FOR: "delta+for",
}

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")

# Byte widths frame-of-reference offsets may use; 0 means "constant page".
_FOR_WIDTHS = (1, 2, 4, 8)
_WIDTH_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


# ---------------------------------------------------------------------------
# Primitive helpers
# ---------------------------------------------------------------------------


def _pack_strings(values: list[str]) -> bytes:
    parts = [_U32.pack(len(values))]
    for text in values:
        raw = text.encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _unpack_strings(payload: bytes, offset: int = 0) -> tuple[list[str], int]:
    (count,) = _U32.unpack_from(payload, offset)
    offset += 4
    out: list[str] = []
    for _ in range(count):
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        out.append(payload[offset:offset + length].decode("utf-8"))
        offset += length
    return out, offset


def _for_pack(values: np.ndarray) -> bytes:
    """Frame-of-reference pack signed int64 offsets from their minimum."""
    if len(values) == 0:
        return _I64.pack(0) + bytes([0])
    reference = int(values.min())
    # Offsets are non-negative; width 0 encodes a constant page.
    offsets = (values.astype(np.int64) - reference).astype(np.uint64)
    top = int(offsets.max())
    if top == 0:
        return _I64.pack(reference) + bytes([0])
    for width in _FOR_WIDTHS:
        if top < (1 << (8 * width)):
            packed = offsets.astype(_WIDTH_DTYPES[width])
            return _I64.pack(reference) + bytes([width]) + packed.tobytes()
    raise StorageError("frame-of-reference offsets exceed 8 bytes")


def _for_unpack(payload: bytes, count: int) -> np.ndarray:
    (reference,) = _I64.unpack_from(payload, 0)
    width = payload[8]
    if width == 0:
        return np.full(count, reference, dtype=np.int64)
    if width not in _WIDTH_DTYPES:
        raise CorruptSegmentError(f"invalid FOR width {width}")
    offsets = np.frombuffer(payload, dtype=_WIDTH_DTYPES[width], count=count,
                            offset=9)
    return (offsets.astype(np.int64) + reference).astype(np.int64)


def _run_lengths(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Starts-of-runs boolean → (run values, run lengths)."""
    if len(values) == 0:
        return values, np.zeros(0, dtype=np.int64)
    if values.dtype == object:
        change = np.ones(len(values), dtype=bool)
        change[1:] = values[1:] != values[:-1]
    else:
        change = np.empty(len(values), dtype=bool)
        change[0] = True
        np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    lengths = np.diff(np.append(starts, len(values)))
    return values[starts], lengths


# ---------------------------------------------------------------------------
# Per-codec encoders (return None when the codec does not apply)
# ---------------------------------------------------------------------------


def _is_int_typed(dtype: DataType) -> bool:
    return dtype in (DataType.BIGINT, DataType.TIMESTAMP)


def _encode_plain(dtype: DataType, values: np.ndarray) -> bytes:
    if dtype == DataType.VARCHAR:
        return _pack_strings([str(v) for v in values])
    if dtype == DataType.BOOLEAN:
        return np.packbits(values.astype(bool)).tobytes()
    return values.astype(numpy_dtype(dtype)).tobytes()


def _decode_plain(dtype: DataType, payload: bytes, count: int) -> np.ndarray:
    if dtype == DataType.VARCHAR:
        strings, _ = _unpack_strings(payload)
        out = np.empty(count, dtype=object)
        out[:] = strings
        return out
    if dtype == DataType.BOOLEAN:
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                             count=count)
        return bits.astype(bool)
    return np.frombuffer(payload, dtype=numpy_dtype(dtype),
                         count=count).copy()


def _encode_rle(dtype: DataType, values: np.ndarray) -> bytes | None:
    if dtype == DataType.BOOLEAN or len(values) == 0:
        return None
    run_values, lengths = _run_lengths(values)
    if len(run_values) * 2 >= len(values):
        return None  # runs too short to pay off
    body = _U32.pack(len(run_values)) + \
        lengths.astype(np.uint32).tobytes()
    if dtype == DataType.VARCHAR:
        body += _pack_strings([str(v) for v in run_values])
    else:
        body += run_values.astype(numpy_dtype(dtype)).tobytes()
    return body


def _decode_rle(dtype: DataType, payload: bytes, count: int) -> np.ndarray:
    (n_runs,) = _U32.unpack_from(payload, 0)
    offset = 4
    lengths = np.frombuffer(payload, dtype=np.uint32, count=n_runs,
                            offset=offset).astype(np.int64)
    offset += 4 * n_runs
    if dtype == DataType.VARCHAR:
        strings, _ = _unpack_strings(payload, offset)
        out = np.empty(count, dtype=object)
        cursor = 0
        for text, run in zip(strings, lengths):
            out[cursor:cursor + run] = text
            cursor += run
        return out
    run_values = np.frombuffer(payload, dtype=numpy_dtype(dtype),
                               count=n_runs, offset=offset)
    return np.repeat(run_values, lengths)


def _encode_dict(dtype: DataType, values: np.ndarray) -> bytes | None:
    if dtype != DataType.VARCHAR or len(values) == 0:
        return None
    as_str = [str(v) for v in values]
    uniques = sorted(set(as_str))
    if len(uniques) >= max(2, len(values) // 2):
        return None  # dictionary would not be smaller than plain
    index = {text: code for code, text in enumerate(uniques)}
    codes = np.array([index[text] for text in as_str], dtype=np.int64)
    return _pack_strings(uniques) + _for_pack(codes)


def _decode_dict(dtype: DataType, payload: bytes, count: int) -> np.ndarray:
    uniques, offset = _unpack_strings(payload)
    codes = _for_unpack(payload[offset:], count)
    table = np.empty(len(uniques), dtype=object)
    table[:] = uniques
    return table[codes]


def _encode_for(dtype: DataType, values: np.ndarray) -> bytes | None:
    if not _is_int_typed(dtype) or len(values) == 0:
        return None
    return _for_pack(values.astype(np.int64))


def _decode_for(dtype: DataType, payload: bytes, count: int) -> np.ndarray:
    return _for_unpack(payload, count)


def _encode_delta_for(dtype: DataType, values: np.ndarray) -> bytes | None:
    if not _is_int_typed(dtype) or len(values) < 2:
        return None
    as_int = values.astype(np.int64)
    diffs = np.diff(as_int)
    return _I64.pack(int(as_int[0])) + _for_pack(diffs)


def _decode_delta_for(dtype: DataType, payload: bytes,
                      count: int) -> np.ndarray:
    (first,) = _I64.unpack_from(payload, 0)
    diffs = _for_unpack(payload[8:], count - 1)
    out = np.empty(count, dtype=np.int64)
    out[0] = first
    np.cumsum(diffs, out=out[1:])
    out[1:] += first
    return out


_ENCODERS = {
    CODEC_RLE: _encode_rle,
    CODEC_DICT: _encode_dict,
    CODEC_FOR: _encode_for,
    CODEC_DELTA_FOR: _encode_delta_for,
}

_DECODERS = {
    CODEC_PLAIN: _decode_plain,
    CODEC_RLE: _decode_rle,
    CODEC_DICT: _decode_dict,
    CODEC_FOR: _decode_for,
    CODEC_DELTA_FOR: _decode_delta_for,
}


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def encode_array(dtype: DataType, values: np.ndarray) -> tuple[int, bytes]:
    """Encode one page of values; returns ``(codec_id, payload)``.

    Tries every codec applicable to ``dtype`` and keeps the smallest
    payload, falling back to ``plain`` which always applies.
    """
    best_codec = CODEC_PLAIN
    best = _encode_plain(dtype, values)
    for codec_id, encoder in _ENCODERS.items():
        candidate = encoder(dtype, values)
        if candidate is not None and len(candidate) < len(best):
            best_codec = codec_id
            best = candidate
    return best_codec, best


def decode_array(dtype: DataType, codec_id: int, payload: bytes,
                 count: int) -> np.ndarray:
    """Decode one page back to its canonical NumPy array."""
    decoder = _DECODERS.get(codec_id)
    if decoder is None:
        raise CorruptSegmentError(f"unknown codec id {codec_id}")
    values = decoder(dtype, payload, count)
    if len(values) != count:
        raise CorruptSegmentError(
            f"codec {CODEC_NAMES[codec_id]} produced {len(values)} values, "
            f"expected {count}"
        )
    return values
