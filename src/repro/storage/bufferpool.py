"""A byte-budgeted LRU buffer pool for segment pages.

One pool is shared by every :class:`~repro.storage.segment.SegmentReader`
of a :class:`~repro.storage.store.TableStore`, so the budget caps the
*total* raw page bytes resident for that store — datasets larger than RAM
stream through the pool instead of accumulating.

Pages are keyed ``(segment path, byte offset)``.  A page may be *pinned*
while a reader decodes from it; pinned pages are never evicted, and if
every page is pinned the pool temporarily overcommits (correctness over
budget) and trims back as soon as pins drop.

Stale pages need no invalidation protocol: segment files are immutable
generations (the store writes a fresh path per overwrite), so a key can
never refer to changed bytes.

Concurrency: the pool is shared by every worker of a
:class:`~repro.service.service.WarehouseService`, so all operations are
thread-safe.  Misses are **single-flight**: the first thread to miss a
page loads it outside the lock while later threads wait on an in-flight
marker, so one page is never read from disk twice concurrently and the
lock is never held across I/O.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import StorageError

PageKey = tuple[str, int]


@dataclass
class PoolStats:
    """Counters the EXPLAIN/report surface exposes."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_reads: int = 0
    bytes_read: int = 0
    coalesced_loads: int = 0  # waits on another thread's in-flight read

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _PageLoad:
    """In-flight marker for one page read (single-flight)."""

    __slots__ = ("done", "page", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.page: bytes | None = None
        self.error: BaseException | None = None


class BufferPool:
    """LRU page cache with pin counts (thread-safe)."""

    def __init__(self, budget_bytes: int = 64 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise StorageError("buffer pool budget must be positive")
        self.budget_bytes = budget_bytes
        self._pages: "OrderedDict[PageKey, bytes]" = OrderedDict()
        self._pins: dict[PageKey, int] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self._loading: dict[PageKey, _PageLoad] = {}
        self.stats = PoolStats()

    # -- lookup ----------------------------------------------------------------

    def get(self, key: PageKey, loader: Callable[[], bytes],
            *, pin: bool = False) -> bytes:
        """Return the page, loading it on a miss via ``loader()``."""
        while True:
            with self._lock:
                self.stats.lookups += 1
                page = self._pages.get(key)
                if page is not None:
                    self.stats.hits += 1
                    self._pages.move_to_end(key)
                    if pin:
                        self._pins[key] = self._pins.get(key, 0) + 1
                    self._evict_to_budget()
                    return page
                self.stats.misses += 1
                flight = self._loading.get(key)
                if flight is None:
                    flight = _PageLoad()
                    self._loading[key] = flight
                    leader = True
                else:
                    leader = False
                    self.stats.coalesced_loads += 1
            if leader:
                try:
                    page = loader()
                except BaseException as exc:
                    with self._lock:
                        flight.error = exc
                        del self._loading[key]
                    flight.done.set()
                    raise
                with self._lock:
                    self.stats.disk_reads += 1
                    self.stats.bytes_read += len(page)
                    if key not in self._pages:
                        self._pages[key] = page
                        self._bytes += len(page)
                    flight.page = page
                    del self._loading[key]
                    if pin:
                        self._pins[key] = self._pins.get(key, 0) + 1
                    self._evict_to_budget()
                flight.done.set()
                return page
            flight.done.wait()
            if flight.error is not None:
                raise StorageError(
                    f"coalesced page load of {key} failed"
                ) from flight.error
            # The leader's page may already be evicted again under a tiny
            # budget; loop back through the lookup (it re-loads if so).
            if flight.page is not None:
                with self._lock:
                    if pin and key in self._pages:
                        self._pins[key] = self._pins.get(key, 0) + 1
                        return flight.page
                if not pin:
                    return flight.page

    def pin(self, key: PageKey, loader: Callable[[], bytes]) -> bytes:
        return self.get(key, loader, pin=True)

    def unpin(self, key: PageKey) -> None:
        with self._lock:
            count = self._pins.get(key)
            if count is None:
                raise StorageError(f"unpin of unpinned page {key}")
            if count <= 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1
            self._evict_to_budget()

    def pin_count(self, key: PageKey) -> int:
        with self._lock:
            return self._pins.get(key, 0)

    # -- maintenance -------------------------------------------------------------

    def _evict_to_budget(self) -> None:
        if self._bytes <= self.budget_bytes:
            return
        for key in list(self._pages):
            if self._bytes <= self.budget_bytes:
                break
            if self._pins.get(key):
                continue  # pinned pages are untouchable
            page = self._pages.pop(key)
            self._bytes -= len(page)
            self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            if self._pins:
                raise StorageError("cannot clear a pool with pinned pages")
            self._pages.clear()
            self._bytes = 0

    # -- introspection --------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    def snapshot(self) -> dict:
        """Counters and occupancy as plain data (metrics collectors)."""
        with self._lock:
            return {
                "lookups": self.stats.lookups,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "disk_reads": self.stats.disk_reads,
                "bytes_read": self.stats.bytes_read,
                "coalesced_loads": self.stats.coalesced_loads,
                "pages": len(self._pages),
                "used_bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "pinned": len(self._pins),
            }

    def render(self) -> str:
        return (
            f"buffer pool: {len(self)} pages, {self._bytes} / "
            f"{self.budget_bytes} bytes, hit rate "
            f"{self.stats.hit_rate:.0%} ({self.stats.disk_reads} disk reads)"
        )
