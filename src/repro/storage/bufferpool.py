"""A byte-budgeted LRU buffer pool for segment pages.

One pool is shared by every :class:`~repro.storage.segment.SegmentReader`
of a :class:`~repro.storage.store.TableStore`, so the budget caps the
*total* raw page bytes resident for that store — datasets larger than RAM
stream through the pool instead of accumulating.

Pages are keyed ``(segment path, byte offset)``.  A page may be *pinned*
while a reader decodes from it; pinned pages are never evicted, and if
every page is pinned the pool temporarily overcommits (correctness over
budget) and trims back as soon as pins drop.

Stale pages need no invalidation protocol: segment files are immutable
generations (the store writes a fresh path per overwrite), so a key can
never refer to changed bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import StorageError

PageKey = tuple[str, int]


@dataclass
class PoolStats:
    """Counters the EXPLAIN/report surface exposes."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_reads: int = 0
    bytes_read: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BufferPool:
    """LRU page cache with pin counts."""

    def __init__(self, budget_bytes: int = 64 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise StorageError("buffer pool budget must be positive")
        self.budget_bytes = budget_bytes
        self._pages: "OrderedDict[PageKey, bytes]" = OrderedDict()
        self._pins: dict[PageKey, int] = {}
        self._bytes = 0
        self.stats = PoolStats()

    # -- lookup ----------------------------------------------------------------

    def get(self, key: PageKey, loader: Callable[[], bytes],
            *, pin: bool = False) -> bytes:
        """Return the page, loading it on a miss via ``loader()``."""
        self.stats.lookups += 1
        page = self._pages.get(key)
        if page is not None:
            self.stats.hits += 1
            self._pages.move_to_end(key)
        else:
            self.stats.misses += 1
            page = loader()
            self.stats.disk_reads += 1
            self.stats.bytes_read += len(page)
            self._pages[key] = page
            self._bytes += len(page)
        if pin:
            self._pins[key] = self._pins.get(key, 0) + 1
        self._evict_to_budget()
        return page

    def pin(self, key: PageKey, loader: Callable[[], bytes]) -> bytes:
        return self.get(key, loader, pin=True)

    def unpin(self, key: PageKey) -> None:
        count = self._pins.get(key)
        if count is None:
            raise StorageError(f"unpin of unpinned page {key}")
        if count <= 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1
        self._evict_to_budget()

    def pin_count(self, key: PageKey) -> int:
        return self._pins.get(key, 0)

    # -- maintenance -------------------------------------------------------------

    def _evict_to_budget(self) -> None:
        if self._bytes <= self.budget_bytes:
            return
        for key in list(self._pages):
            if self._bytes <= self.budget_bytes:
                break
            if self._pins.get(key):
                continue  # pinned pages are untouchable
            page = self._pages.pop(key)
            self._bytes -= len(page)
            self.stats.evictions += 1

    def clear(self) -> None:
        if self._pins:
            raise StorageError("cannot clear a pool with pinned pages")
        self._pages.clear()
        self._bytes = 0

    # -- introspection --------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    def render(self) -> str:
        return (
            f"buffer pool: {len(self)} pages, {self._bytes} / "
            f"{self.budget_bytes} bytes, hit rate "
            f"{self.stats.hit_rate:.0%} ({self.stats.disk_reads} disk reads)"
        )
