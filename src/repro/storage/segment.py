"""Segment files: one file per table, page runs per column.

Layout (all offsets from file start)::

    [ SEGMENT_MAGIC | version u16 ]
    [ page | page | page | ... ]                # column-major page runs
    [ footer JSON (utf-8) ]
    [ footer_len u32 | footer_crc u32 | "GESL" ]

The footer directory maps each column to its page slots ``(offset,
length, row_count)``.  :class:`SegmentReader` memory-maps the file and
fetches pages *through the buffer pool* only when a query actually needs
that column — the same lazy principle the ETL layer applies to files,
extended to I/O: a scan projecting 1 of N columns reads 1/N of the pages.

Numeric columns additionally carry a *zone map*: per page, the min/max
over its valid (non-NULL, non-NaN) values, or ``null`` for a page with
none.  A scan holding a ``column <cmp> constant`` conjunct can prove a
page can contain no qualifying row and skip decoding it entirely (see
``PDiskScan``).  Zone entries are advisory — a reader that ignores them
just reads every page, and segments written before zone maps existed
simply have no ``zones`` key.

Writers build a temporary file and commit with ``os.replace`` so a crash
mid-write never leaves a half-segment at the final path.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.column import Column
from repro.errors import CorruptSegmentError, StorageError
from repro.storage import format as fmt
from repro.storage.bufferpool import BufferPool

PAGE_ROWS = 16384
"""Rows per page: small enough for fine-grained caching, large enough
that page headers are noise."""

_HEADER = struct.Struct("<6sH")

_ZONED_DTYPES = ("bigint", "double", "timestamp")
"""Column dtypes that get per-page min/max zone maps."""


def _page_zone(column: Column) -> "list | None":
    """Min/max of one page's valid, non-NaN values (``None`` if empty).

    NaN is excluded on purpose: a NaN row fails every ``<cmp> constant``
    conjunct, so it can never rescue a page the finite bounds condemn.
    """
    values = column.values
    valid = column.validity()
    if np.issubdtype(values.dtype, np.floating):
        valid = valid & ~np.isnan(values)
    if not valid.any():
        return None
    kept = values[valid]
    lo, hi = kept.min(), kept.max()
    if np.issubdtype(values.dtype, np.floating):
        return [float(lo), float(hi)]
    return [int(lo), int(hi)]


@dataclass(frozen=True)
class PageSlot:
    """Directory entry for one page."""

    offset: int
    length: int
    row_count: int


class SegmentWriter:
    """Write one table's columns into a segment file, then commit."""

    def __init__(self, path: "str | os.PathLike",
                 *, uniform: bool = True) -> None:
        self.path = os.fspath(path)
        self._tmp_path = self.path + ".tmp"
        self._handle = open(self._tmp_path, "wb")
        self._handle.write(_HEADER.pack(fmt.SEGMENT_MAGIC,
                                        fmt.SEGMENT_VERSION))
        self._directory: dict[str, list[PageSlot]] = {}
        self._dtypes: dict[str, str] = {}
        self._zones: dict[str, list] = {}
        # Table segments require aligned columns; cache snapshots store
        # one run per cached record, so their lengths legitimately vary.
        self._uniform = uniform
        self._row_count: int | None = None
        self._raw_bytes = 0
        self._finished = False

    def write_column(self, name: str, column: Column,
                     *, page_rows: int = PAGE_ROWS) -> None:
        """Append one column as a run of encoded pages."""
        if self._finished:
            raise StorageError("segment writer already finished")
        if name in self._directory:
            raise StorageError(f"column {name!r} written twice")
        if self._row_count is None:
            self._row_count = len(column)
        elif self._uniform and len(column) != self._row_count:
            raise StorageError(
                f"column {name!r} has {len(column)} rows, "
                f"segment has {self._row_count}"
            )
        dtype_name = fmt.dtype_name(column.dtype)
        zoned = dtype_name in _ZONED_DTYPES
        zones: list = []
        slots: list[PageSlot] = []
        for start in range(0, max(len(column), 1), page_rows):
            chunk = column.slice(start, min(start + page_rows, len(column)))
            raw = fmt.encode_page(chunk)
            offset = self._handle.tell()
            self._handle.write(raw)
            slots.append(PageSlot(offset, len(raw), len(chunk)))
            self._raw_bytes += len(raw)
            if zoned:
                zones.append(_page_zone(chunk) if len(chunk) else None)
        self._directory[name] = slots
        self._dtypes[name] = dtype_name
        if zoned:
            self._zones[name] = zones

    def finish(self) -> dict:
        """Write the footer, fsync, and atomically publish the segment."""
        if self._finished:
            raise StorageError("segment writer already finished")
        footer = {
            "row_count": self._row_count or 0,
            "columns": {
                name: {
                    "dtype": self._dtypes[name],
                    "pages": [[s.offset, s.length, s.row_count]
                              for s in slots],
                    **({"zones": self._zones[name]}
                       if name in self._zones else {}),
                }
                for name, slots in self._directory.items()
            },
        }
        encoded = json.dumps(footer, sort_keys=True).encode("utf-8")
        self._handle.write(encoded)
        self._handle.write(fmt.FOOTER_TRAILER.pack(
            len(encoded),
            zlib.crc32(encoded) & 0xFFFFFFFF,
            fmt.FOOTER_END_MAGIC,
        ))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._tmp_path, self.path)
        self._finished = True
        return footer

    def abort(self) -> None:
        if not self._finished:
            self._handle.close()
            if os.path.exists(self._tmp_path):
                os.remove(self._tmp_path)
            self._finished = True


class IOCounter:
    """Per-call disk I/O tally for :meth:`SegmentReader.read_column`.

    The buffer pool's global counters are shared by every concurrent
    reader, so a before/after delta over them contaminates per-query
    accounting under load; callers that need *their own* I/O pass one of
    these instead — it is incremented only when this call's loader
    actually hits the disk.
    """

    __slots__ = ("disk_reads", "bytes_read")

    def __init__(self) -> None:
        self.disk_reads = 0
        self.bytes_read = 0


class SegmentReader:
    """Lazily read a segment's columns through a buffer pool."""

    def __init__(self, path: "str | os.PathLike", pool: BufferPool) -> None:
        self.path = os.fspath(path)
        self.pool = pool
        self._handle = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(self._handle.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except ValueError:
            self._handle.close()
            raise CorruptSegmentError(f"segment {self.path} is empty")
        self._directory: dict[str, list[PageSlot]] = {}
        self._dtypes: dict[str, str] = {}
        self._zones: dict[str, list] = {}
        self.row_count = 0
        self._parse_footer()

    # -- structure -------------------------------------------------------------

    def _parse_footer(self) -> None:
        size = len(self._mm)
        header_len = _HEADER.size
        trailer_len = fmt.FOOTER_TRAILER.size
        if size < header_len + trailer_len:
            raise CorruptSegmentError(f"segment {self.path} truncated")
        magic, version = _HEADER.unpack_from(self._mm, 0)
        if magic != fmt.SEGMENT_MAGIC:
            raise CorruptSegmentError(f"bad segment magic in {self.path}")
        if version != fmt.SEGMENT_VERSION:
            raise CorruptSegmentError(
                f"unsupported segment version {version} in {self.path}"
            )
        footer_len, footer_crc, end_magic = fmt.FOOTER_TRAILER.unpack_from(
            self._mm, size - trailer_len
        )
        if end_magic != fmt.FOOTER_END_MAGIC:
            raise CorruptSegmentError(f"bad footer magic in {self.path}")
        footer_start = size - trailer_len - footer_len
        if footer_start < header_len:
            raise CorruptSegmentError(f"footer overruns data in {self.path}")
        encoded = bytes(self._mm[footer_start:footer_start + footer_len])
        if zlib.crc32(encoded) & 0xFFFFFFFF != footer_crc:
            raise CorruptSegmentError(f"footer checksum mismatch in {self.path}")
        footer = json.loads(encoded.decode("utf-8"))
        self.row_count = int(footer["row_count"])
        for name, info in footer["columns"].items():
            self._directory[name] = [
                PageSlot(int(o), int(l), int(r)) for o, l, r in info["pages"]
            ]
            self._dtypes[name] = info["dtype"]
            if "zones" in info:
                self._zones[name] = [
                    None if z is None else (z[0], z[1])
                    for z in info["zones"]
                ]

    def column_names(self) -> list[str]:
        return list(self._directory)

    def has_column(self, name: str) -> bool:
        return name in self._directory

    def pages_of(self, name: str) -> int:
        """Number of pages backing one column."""
        return len(self._directory.get(name, ()))

    def page_row_counts(self, name: str) -> list[int]:
        """Row count of each page of one column, in page order."""
        return [s.row_count for s in self._directory.get(name, ())]

    def zone_map(self, name: str) -> "list | None":
        """Per-page ``(min, max)`` tuples (``None`` entries mark pages
        with no valid comparable value), or ``None`` when the column has
        no zone map (non-numeric, or written before zone maps)."""
        return self._zones.get(name)

    def total_pages(self) -> int:
        return sum(len(slots) for slots in self._directory.values())

    def column_disk_bytes(self, name: str) -> int:
        return sum(s.length for s in self._directory.get(name, ()))

    def disk_bytes(self) -> int:
        return sum(self.column_disk_bytes(name) for name in self._directory)

    # -- reading ---------------------------------------------------------------

    def _load_slot(self, slot: PageSlot) -> bytes:
        return bytes(self._mm[slot.offset:slot.offset + slot.length])

    def read_column(self, name: str,
                    io: "IOCounter | None" = None) -> Column:
        """Materialise one column, page by page, through the pool.

        Pages are pinned only while being decoded, so a scan wider than
        the pool budget streams instead of failing.  ``io``, when given,
        counts the disk reads *this call* led (pool hits and loads
        coalesced onto another thread's in-flight read cost it nothing).
        """
        slots = self._directory.get(name)
        if slots is None:
            raise StorageError(
                f"segment {self.path} has no column {name!r}"
            )
        return self._decode_pages(name, slots, io)

    def read_column_pages(self, name: str, pages: "list[int]",
                          io: "IOCounter | None" = None) -> Column:
        """Materialise only the given page indices of one column.

        The zone-pruned scan path: pages a zone map proved dead are
        never pinned, never decoded, and never counted as reads.  The
        result is the concatenation of the surviving pages in page
        order — callers are responsible for applying the *same* page
        subset to every column they read, keeping rows aligned.
        """
        slots = self._directory.get(name)
        if slots is None:
            raise StorageError(
                f"segment {self.path} has no column {name!r}"
            )
        return self._decode_pages(name, [slots[i] for i in pages], io)

    def _decode_pages(self, name: str, slots: "list[PageSlot]",
                      io: "IOCounter | None") -> Column:
        def load(slot: PageSlot) -> bytes:
            raw = self._load_slot(slot)
            if io is not None:
                io.disk_reads += 1
                io.bytes_read += len(raw)
            return raw

        parts: list[Column] = []
        for slot in slots:
            key = (self.path, slot.offset)
            raw = self.pool.pin(key, lambda s=slot: load(s))
            try:
                parts.append(fmt.decode_page(raw))
            finally:
                self.pool.unpin(key)
        if not parts:
            return Column.from_values(fmt.dtype_from_name(self._dtypes[name]),
                                      [])
        return parts[0] if len(parts) == 1 else Column.concat(parts)

    def close(self) -> None:
        self._mm.close()
        self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SegmentReader({self.path}, rows={self.row_count}, "
                f"columns={len(self._directory)})")
