"""SQL type system.

Five scalar types cover the paper's schema: BOOLEAN, BIGINT, DOUBLE,
VARCHAR and TIMESTAMP.  TIMESTAMP is physically an int64 of microseconds
since the Unix epoch (see :mod:`repro.util.timefmt`), which keeps
sample-time predicates exact integer comparisons.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import TypeMismatchError
from repro.util.timefmt import format_iso8601, parse_iso8601


class DataType(enum.Enum):
    """The engine's scalar types."""

    BOOLEAN = "boolean"
    BIGINT = "bigint"
    DOUBLE = "double"
    VARCHAR = "varchar"
    TIMESTAMP = "timestamp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


_NUMPY_DTYPES = {
    DataType.BOOLEAN: np.dtype(np.bool_),
    DataType.BIGINT: np.dtype(np.int64),
    DataType.DOUBLE: np.dtype(np.float64),
    DataType.VARCHAR: np.dtype(object),
    DataType.TIMESTAMP: np.dtype(np.int64),
}

_TYPE_NAMES = {
    "boolean": DataType.BOOLEAN,
    "bool": DataType.BOOLEAN,
    "bigint": DataType.BIGINT,
    "int": DataType.BIGINT,
    "integer": DataType.BIGINT,
    "smallint": DataType.BIGINT,
    "tinyint": DataType.BIGINT,
    "double": DataType.DOUBLE,
    "float": DataType.DOUBLE,
    "real": DataType.DOUBLE,
    "varchar": DataType.VARCHAR,
    "string": DataType.VARCHAR,
    "text": DataType.VARCHAR,
    "char": DataType.VARCHAR,
    "clob": DataType.VARCHAR,
    "timestamp": DataType.TIMESTAMP,
}


def type_from_name(name: str) -> DataType:
    """Resolve an SQL type name (many aliases) to a :class:`DataType`."""
    try:
        return _TYPE_NAMES[name.lower()]
    except KeyError:
        raise TypeMismatchError(f"unknown SQL type {name!r}") from None


def numpy_dtype(dtype: DataType) -> np.dtype:
    """The physical NumPy dtype backing a SQL type."""
    return _NUMPY_DTYPES[dtype]


def is_numeric(dtype: DataType) -> bool:
    return dtype in (DataType.BIGINT, DataType.DOUBLE)


def common_numeric(left: DataType, right: DataType) -> DataType:
    """Numeric promotion: BIGINT op DOUBLE → DOUBLE."""
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeMismatchError(f"cannot combine {left} and {right} numerically")
    if DataType.DOUBLE in (left, right):
        return DataType.DOUBLE
    return DataType.BIGINT


def comparable(left: DataType, right: DataType) -> bool:
    """Whether two types may appear on either side of a comparison."""
    if left == right:
        return True
    if is_numeric(left) and is_numeric(right):
        return True
    # VARCHAR literals compare against TIMESTAMP after implicit parsing;
    # the binder rewrites the literal, so by evaluation time both sides
    # match.  At the type-check level we allow the pair.
    pair = {left, right}
    return pair == {DataType.TIMESTAMP, DataType.VARCHAR}


def coerce_literal(value, dtype: DataType):
    """Coerce a Python literal to the physical value for ``dtype``."""
    if value is None:
        return None
    if dtype == DataType.BOOLEAN:
        return bool(value)
    if dtype == DataType.BIGINT:
        return int(value)
    if dtype == DataType.DOUBLE:
        return float(value)
    if dtype == DataType.VARCHAR:
        return str(value)
    if dtype == DataType.TIMESTAMP:
        if isinstance(value, str):
            return parse_iso8601(value)
        return int(value)
    raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}")


def literal_type(value) -> DataType:
    """Infer the SQL type of a Python literal."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.BIGINT
    if isinstance(value, float):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.VARCHAR
    raise TypeMismatchError(f"unsupported literal {value!r}")


def render_value(value, dtype: DataType) -> str:
    """Render one value for result display."""
    if value is None:
        return "NULL"
    if dtype == DataType.TIMESTAMP:
        return format_iso8601(int(value))
    if dtype == DataType.DOUBLE:
        return f"{value:.6g}"
    return str(value)
