"""Expression trees and their vectorised, null-aware evaluation.

The parser produces *unbound* expressions whose :class:`ColumnRef` nodes
name columns textually.  The binder (in :mod:`repro.db.plan.logical`)
rewrites them into *bound* expressions where every node carries a result
``dtype`` and column references carry a plan-wide column id (``cid``).
Bound expressions evaluate against a *frame*: ``dict[cid, Column]``.

NULL semantics follow SQL three-valued logic: comparisons and arithmetic
propagate NULL; AND/OR use Kleene logic; predicates select rows that are
*true and valid*.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.db.column import Column
from repro.db.types import (
    DataType,
    coerce_literal,
    common_numeric,
    comparable,
    is_numeric,
    literal_type,
)
from repro.errors import BindError, ExecutionError, TypeMismatchError

# Parameter values for the query executing on this thread/context.  A
# compiled plan is shared by every execution of the same SQL (the plan
# cache), so parameter values can never live on the plan's Param nodes —
# they travel per-execution through this context variable, which
# isolates concurrent service sessions and interleaved cursors alike.
_ACTIVE_PARAMS: contextvars.ContextVar[Optional[dict]] = \
    contextvars.ContextVar("repro_active_params", default=None)


@contextlib.contextmanager
def active_params(values: Optional[dict]):
    """Make ``values`` (slot -> python value) visible to Param.eval."""
    if values is None:
        yield
        return
    token = _ACTIVE_PARAMS.set(values)
    try:
        yield
    finally:
        _ACTIVE_PARAMS.reset(token)


def current_param_values() -> Optional[dict]:
    """The parameter values bound to the execution on this context.

    Used by recycler signature rendering: a plan fragment containing
    placeholders is signed with the *values* of the current execution,
    so identical re-executions recycle while different bindings can
    never cross-contaminate.
    """
    return _ACTIVE_PARAMS.get()

# ---------------------------------------------------------------------------
# Node classes
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes.

    ``dtype`` is ``None`` until the node is bound.
    """

    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        """Structural identity — used for GROUP BY matching and recycling."""
        raise NotImplementedError

    def children(self) -> list["Expr"]:
        return []

    def referenced_cids(self) -> set[int]:
        """All bound column ids this expression reads."""
        out: set[int] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundRef):
                out.add(node.cid)
            stack.extend(node.children())
        return out

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        raise ExecutionError(f"cannot evaluate unbound expression {self!r}")


@dataclass
class ColumnRef(Expr):
    """An unbound column reference like ``station`` or ``F.station``."""

    parts: tuple[str, ...]

    @property
    def display(self) -> str:
        return ".".join(self.parts)

    def key(self) -> tuple:
        return ("colref", self.parts)

    def __repr__(self) -> str:
        return f"ColumnRef({self.display})"


@dataclass
class BoundRef(Expr):
    """A bound column reference: reads column ``cid`` from the frame."""

    cid: int
    dtype: DataType = None  # type: ignore[assignment]
    name: str = ""

    def key(self) -> tuple:
        return ("bound", self.cid)

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        try:
            return frame[self.cid]
        except KeyError:
            raise ExecutionError(
                f"column #{self.cid} ({self.name or 'unnamed'}) missing from frame"
            ) from None

    def __repr__(self) -> str:
        return f"BoundRef(#{self.cid}:{self.name})"


@dataclass
class Literal(Expr):
    """A constant; bound literals carry their coerced value and dtype."""

    value: object
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("lit", self.value, self.dtype)

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        if self.dtype is None:
            raise ExecutionError("unbound literal")
        return Column.constant(self.dtype, self.value, length)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass
class Param(Expr):
    """A prepared-statement placeholder: ``?`` (int slot) or ``:name``.

    The dtype is inferred at bind time from the surrounding expression
    (the comparison peer, the BETWEEN/IN operand, an enclosing CAST).
    The *value* is never stored on the node — plans containing Param
    nodes are shared across executions, so values are read per
    execution from :data:`_ACTIVE_PARAMS`.
    """

    slot: "int | str"
    dtype: Optional[DataType] = None

    @property
    def display(self) -> str:
        return f"?{self.slot + 1}" if isinstance(self.slot, int) \
            else f":{self.slot}"

    def key(self) -> tuple:
        return ("param", self.slot)

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        if self.dtype is None:
            raise ExecutionError(
                f"parameter {self.display} was never bound to a type"
            )
        values = _ACTIVE_PARAMS.get()
        if values is None or self.slot not in values:
            raise ExecutionError(
                f"no value bound for parameter {self.display}"
            )
        try:
            value = coerce_literal(values[self.slot], self.dtype)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"parameter {self.display}: cannot bind "
                f"{values[self.slot]!r} as {self.dtype}"
            ) from exc
        return Column.constant(self.dtype, value, length)

    def __repr__(self) -> str:
        return f"Param({self.display})"


@dataclass
class BinOp(Expr):
    """Binary operator: arithmetic, comparison, AND/OR."""

    op: str
    left: Expr
    right: Expr
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("bin", self.op, self.left.key(), self.right.key())

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        left = self.left.eval(frame, length)
        right = self.right.eval(frame, length)
        return _eval_binop(self.op, left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass
class UnOp(Expr):
    """Unary minus or NOT."""

    op: str  # '-' | 'not'
    operand: Expr
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("un", self.op, self.operand.key())

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        inner = self.operand.eval(frame, length)
        if self.op == "-":
            return Column(inner.dtype, -inner.values, inner.valid)
        if self.op == "not":
            return Column(DataType.BOOLEAN, ~inner.values.astype(bool), inner.valid)
        raise ExecutionError(f"unknown unary operator {self.op}")


@dataclass
class FuncCall(Expr):
    """Scalar function call."""

    name: str
    args: list[Expr]
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("func", self.name, tuple(a.key() for a in self.args))

    def children(self) -> list[Expr]:
        return list(self.args)

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        spec = FUNCTIONS.get(self.name)
        if spec is None:
            raise ExecutionError(f"unknown function {self.name}")
        cols = [a.eval(frame, length) for a in self.args]
        return spec.impl(cols, length)


@dataclass
class AggCall(Expr):
    """Aggregate call placeholder — computed by the Aggregate operator.

    ``arg is None`` encodes ``COUNT(*)``.
    """

    name: str
    arg: Optional[Expr]
    distinct: bool = False
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("agg", self.name, self.distinct,
                None if self.arg is None else self.arg.key())

    def children(self) -> list[Expr]:
        return [] if self.arg is None else [self.arg]

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        word = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({word}{inner})"


@dataclass
class Between(Expr):
    """``x BETWEEN lo AND hi`` (inclusive)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("between", self.negated, self.operand.key(), self.low.key(),
                self.high.key())

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        lower = _eval_binop(">=", self.operand.eval(frame, length),
                            self.low.eval(frame, length))
        upper = _eval_binop("<=", self.operand.eval(frame, length),
                            self.high.eval(frame, length))
        both = _eval_binop("and", lower, upper)
        if self.negated:
            return Column(DataType.BOOLEAN, ~both.values, both.valid)
        return both


@dataclass
class InList(Expr):
    """``x IN (v1, v2, ...)`` over literal lists."""

    operand: Expr
    items: list[Expr]
    negated: bool = False
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("in", self.negated, self.operand.key(),
                tuple(i.key() for i in self.items))

    def children(self) -> list[Expr]:
        return [self.operand] + list(self.items)

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        operand = self.operand.eval(frame, length)
        hit = np.zeros(length, dtype=bool)
        for item in self.items:
            hit |= _eval_binop("=", operand, item.eval(frame, length)).values
        if self.negated:
            hit = ~hit
        return Column(DataType.BOOLEAN, hit, operand.valid)


@dataclass
class IsNull(Expr):
    """``x IS [NOT] NULL`` — never returns NULL itself."""

    operand: Expr
    negated: bool = False
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("isnull", self.negated, self.operand.key())

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        inner = self.operand.eval(frame, length)
        nulls = ~inner.validity()
        return Column(DataType.BOOLEAN, ~nulls if self.negated else nulls)


@dataclass
class Like(Expr):
    """``x [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("like", self.negated, self.operand.key(), self.pattern)

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        operand = self.operand.eval(frame, length)
        regex = _like_regex(self.pattern)
        if operand.dtype == DataType.VARCHAR and length:
            # Dictionary-encoded match: run the regex once per distinct
            # value, then broadcast the verdicts through the codes.
            codes, uniques = operand.dictionary()
            table = np.fromiter(
                (regex.fullmatch(str(v)) is not None for v in uniques),
                dtype=bool,
                count=len(uniques),
            )
            hits = table[codes]
        else:
            hits = np.fromiter(
                (regex.fullmatch(str(v)) is not None for v in operand.values),
                dtype=bool,
                count=length,
            )
        if self.negated:
            hits = ~hits
        return Column(DataType.BOOLEAN, hits, operand.valid)


@dataclass
class Case(Expr):
    """Searched CASE: ``CASE WHEN c THEN v ... [ELSE e] END``."""

    whens: list[tuple[Expr, Expr]]
    default: Optional[Expr] = None
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return (
            "case",
            tuple((c.key(), v.key()) for c, v in self.whens),
            None if self.default is None else self.default.key(),
        )

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for cond, value in self.whens:
            out.extend([cond, value])
        if self.default is not None:
            out.append(self.default)
        return out

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        assert self.dtype is not None
        result = Column.nulls(self.dtype, length)
        values = result.values.copy()
        valid = np.zeros(length, dtype=bool)
        remaining = np.ones(length, dtype=bool)
        for cond, value in self.whens:
            cond_col = cond.eval(frame, length)
            fire = remaining & cond_col.values.astype(bool) & cond_col.validity()
            if fire.any():
                val_col = value.eval(frame, length)
                values[fire] = val_col.values[fire]
                valid[fire] = val_col.validity()[fire]
            remaining &= ~fire
        if self.default is not None and remaining.any():
            val_col = self.default.eval(frame, length)
            values[remaining] = val_col.values[remaining]
            valid[remaining] = val_col.validity()[remaining]
        return Column(self.dtype, values, valid)


@dataclass
class Cast(Expr):
    """Explicit ``CAST(x AS type)``."""

    operand: Expr
    target: DataType
    dtype: Optional[DataType] = None

    def key(self) -> tuple:
        return ("cast", self.target, self.operand.key())

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, frame: dict[int, Column], length: int) -> Column:
        inner = self.operand.eval(frame, length)
        return cast_column(inner, self.target)


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a select list (expanded by the binder)."""

    qualifier: Optional[str] = None

    def key(self) -> tuple:
        return ("star", self.qualifier)


# ---------------------------------------------------------------------------
# Evaluation helpers
# ---------------------------------------------------------------------------


def _like_to_regex(pattern: str) -> str:
    import re

    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out)


@functools.lru_cache(maxsize=256)
def _like_regex(pattern: str):
    import re

    return re.compile(_like_to_regex(pattern), re.DOTALL)


def _merge_valid(left: Column, right: Column) -> np.ndarray | None:
    if left.valid is None and right.valid is None:
        return None
    return left.validity() & right.validity()


_CMP_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%"}


def _compare_arrays(op: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    if op == "=":
        return lhs == rhs
    if op in ("<>", "!="):
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    return lhs >= rhs


def _eval_binop(op: str, left: Column, right: Column) -> Column:
    if op in ("and", "or"):
        lv = left.values.astype(bool)
        rv = right.values.astype(bool)
        l_ok, r_ok = left.validity(), right.validity()
        if op == "and":
            values = lv & rv
            # Kleene: definite false when either side is a valid false.
            definite = (l_ok & ~lv) | (r_ok & ~rv) | (l_ok & r_ok)
        else:
            values = lv | rv
            definite = (l_ok & lv) | (r_ok & rv) | (l_ok & r_ok)
        valid = None if definite.all() else definite
        return Column(DataType.BOOLEAN, values, valid)

    if op in _CMP_OPS:
        lhs, rhs = left.values, right.values
        if left.dtype == DataType.VARCHAR or right.dtype == DataType.VARCHAR:
            lhs = lhs.astype(str) if left.dtype == DataType.VARCHAR else lhs
            rhs = rhs.astype(str) if right.dtype == DataType.VARCHAR else rhs
        with np.errstate(invalid="ignore"):
            values = _compare_arrays(op, lhs, rhs)
        return Column(DataType.BOOLEAN, values, _merge_valid(left, right))

    if op in _ARITH_OPS:
        valid = _merge_valid(left, right)
        with np.errstate(divide="ignore", invalid="ignore"):
            if op == "+":
                values = left.values + right.values
            elif op == "-":
                values = left.values - right.values
            elif op == "*":
                values = left.values * right.values
            elif op == "/":
                values = left.values / np.where(right.values == 0, np.nan, right.values)
                zero = right.values == 0
                if zero.any():
                    valid = (valid if valid is not None
                             else np.ones(len(left), dtype=bool)) & ~zero
                    values = np.where(zero, 0.0, values)
            else:  # %
                rhs = np.where(right.values == 0, 1, right.values)
                values = left.values % rhs
                zero = right.values == 0
                if zero.any():
                    valid = (valid if valid is not None
                             else np.ones(len(left), dtype=bool)) & ~zero
        if left.dtype == DataType.TIMESTAMP or right.dtype == DataType.TIMESTAMP:
            # timestamp ± integer stays a timestamp; difference is BIGINT.
            both_ts = (left.dtype == DataType.TIMESTAMP
                       and right.dtype == DataType.TIMESTAMP)
            dtype = (DataType.BIGINT if (op == "-" and both_ts)
                     else DataType.TIMESTAMP)
        elif op == "/":
            dtype = DataType.DOUBLE
        else:
            dtype = common_numeric(left.dtype, right.dtype)
        return Column.from_numpy(dtype, np.asarray(values), valid)

    raise ExecutionError(f"unknown binary operator {op}")


def cast_column(col: Column, target: DataType) -> Column:
    """Cast a column to ``target``, with VARCHAR↔TIMESTAMP support."""
    if col.dtype == target:
        return col
    if target == DataType.VARCHAR:
        from repro.db.types import render_value

        values = np.empty(len(col), dtype=object)
        for i in range(len(col)):
            v = col.value_at(i)
            values[i] = "" if v is None else render_value(v, col.dtype)
        return Column(DataType.VARCHAR, values, col.valid)
    if col.dtype == DataType.VARCHAR and target == DataType.TIMESTAMP:
        from repro.util.timefmt import parse_iso8601

        values = np.fromiter(
            (parse_iso8601(str(v)) if ok else 0
             for v, ok in zip(col.values, col.validity())),
            dtype=np.int64,
            count=len(col),
        )
        return Column(DataType.TIMESTAMP, values, col.valid)
    if col.dtype == DataType.VARCHAR and target in (DataType.BIGINT, DataType.DOUBLE):
        caster = int if target == DataType.BIGINT else float
        values = [caster(str(v)) if ok else 0
                  for v, ok in zip(col.values, col.validity())]
        return Column.from_values(target, values)
    try:
        from repro.db.types import numpy_dtype

        return Column(target, col.values.astype(numpy_dtype(target)), col.valid)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"cannot cast {col.dtype} to {target}") from exc


# ---------------------------------------------------------------------------
# Scalar function registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSpec:
    """Registry entry: argument checking + result typing + implementation."""

    name: str
    min_args: int
    max_args: int
    result_type: Callable[[list[DataType]], DataType]
    impl: Callable[[list[Column], int], Column]


def _numeric_passthrough(args: list[DataType]) -> DataType:
    if not is_numeric(args[0]):
        raise TypeMismatchError(f"expected a numeric argument, got {args[0]}")
    return args[0]


def _double_result(args: list[DataType]) -> DataType:
    if not is_numeric(args[0]):
        raise TypeMismatchError(f"expected a numeric argument, got {args[0]}")
    return DataType.DOUBLE


def _unary_numpy(fn: Callable[[np.ndarray], np.ndarray],
                 result: DataType | None = None):
    def impl(cols: list[Column], length: int) -> Column:
        col = cols[0]
        with np.errstate(invalid="ignore", divide="ignore"):
            values = fn(col.values)
        dtype = result or col.dtype
        return Column.from_numpy(dtype, np.asarray(values), col.valid)

    return impl


def _impl_round(cols: list[Column], length: int) -> Column:
    col = cols[0]
    digits = int(cols[1].values[0]) if len(cols) > 1 else 0
    return Column.from_numpy(DataType.DOUBLE, np.round(col.values.astype(float), digits),
                             col.valid)


def _impl_coalesce(cols: list[Column], length: int) -> Column:
    result = cols[0]
    for nxt in cols[1:]:
        if result.valid is None:
            break
        missing = ~result.validity()
        values = result.values.copy()
        values[missing] = nxt.values[missing]
        merged_valid = result.validity() | (missing & nxt.validity())
        result = Column(result.dtype, values,
                        None if merged_valid.all() else merged_valid)
    return result


def _impl_nullif(cols: list[Column], length: int) -> Column:
    base, other = cols
    equal = _eval_binop("=", base, other)
    hit = equal.values.astype(bool) & equal.validity()
    valid = base.validity() & ~hit
    return Column(base.dtype, base.values, None if valid.all() else valid)


def _string_impl(fn: Callable[[str], object], result: DataType):
    def impl(cols: list[Column], length: int) -> Column:
        col = cols[0]
        if col.dtype == DataType.VARCHAR and length:
            # Apply the function once per distinct value and broadcast
            # through the dictionary codes.
            codes, uniques = col.dictionary()
            mapped = np.empty(len(uniques), dtype=object)
            for i, v in enumerate(uniques):
                mapped[i] = fn(str(v))
            values = mapped[codes]
        else:
            values = np.empty(length, dtype=object)
            for i, v in enumerate(col.values):
                values[i] = fn(str(v))
        if result != DataType.VARCHAR:
            values = values.astype(np.int64)
        return Column.from_numpy(result, values, col.valid)

    return impl


def _impl_substr(cols: list[Column], length: int) -> Column:
    base = cols[0]
    start = cols[1].values.astype(int)
    count = cols[2].values.astype(int) if len(cols) > 2 else None
    values = np.empty(length, dtype=object)
    for i, v in enumerate(base.values):
        s = str(v)
        begin = max(int(start[i]) - 1, 0)
        if count is None:
            values[i] = s[begin:]
        else:
            values[i] = s[begin : begin + int(count[i])]
    return Column(DataType.VARCHAR, values, base.valid)


def _impl_concat(cols: list[Column], length: int) -> Column:
    values = np.empty(length, dtype=object)
    for i in range(length):
        values[i] = "".join(str(c.values[i]) for c in cols)
    valid = None
    for c in cols:
        if c.valid is not None:
            valid = c.validity() if valid is None else (valid & c.validity())
    return Column(DataType.VARCHAR, values, valid)


def _timestamp_part(part: str):
    def impl(cols: list[Column], length: int) -> Column:
        col = cols[0]
        stamps = col.values.astype("datetime64[us]")
        if part == "year":
            values = stamps.astype("datetime64[Y]").astype(np.int64) + 1970
        elif part == "month":
            values = stamps.astype("datetime64[M]").astype(np.int64) % 12 + 1
        elif part == "day":
            values = (stamps.astype("datetime64[D]")
                      - stamps.astype("datetime64[M]")).astype(np.int64) + 1
        elif part == "hour":
            values = (col.values // 3_600_000_000) % 24
        elif part == "minute":
            values = (col.values // 60_000_000) % 60
        else:  # second
            values = (col.values // 1_000_000) % 60
        return Column.from_numpy(DataType.BIGINT, values.astype(np.int64), col.valid)

    return impl


def _impl_greatest_least(best: Callable):
    def impl(cols: list[Column], length: int) -> Column:
        values = cols[0].values.astype(float)
        for c in cols[1:]:
            values = best(values, c.values.astype(float))
        valid = None
        for c in cols:
            if c.valid is not None:
                valid = c.validity() if valid is None else (valid & c.validity())
        dtype = cols[0].dtype if all(c.dtype == cols[0].dtype for c in cols) \
            else DataType.DOUBLE
        return Column.from_numpy(dtype, values, valid)

    return impl


def _first_arg_type(args: list[DataType]) -> DataType:
    return args[0]


def _require_timestamp(args: list[DataType]) -> DataType:
    if args[0] != DataType.TIMESTAMP:
        raise TypeMismatchError(f"expected TIMESTAMP, got {args[0]}")
    return DataType.BIGINT


FUNCTIONS: dict[str, FunctionSpec] = {}


def _register(name: str, min_args: int, max_args: int, result_type, impl) -> None:
    FUNCTIONS[name] = FunctionSpec(name, min_args, max_args, result_type, impl)


_register("abs", 1, 1, _numeric_passthrough, _unary_numpy(np.abs))
_register("round", 1, 2, _double_result, _impl_round)
_register("floor", 1, 1, _double_result, _unary_numpy(np.floor, DataType.DOUBLE))
_register("ceil", 1, 1, _double_result, _unary_numpy(np.ceil, DataType.DOUBLE))
_register("sqrt", 1, 1, _double_result, _unary_numpy(np.sqrt, DataType.DOUBLE))
_register("ln", 1, 1, _double_result, _unary_numpy(np.log, DataType.DOUBLE))
_register("log10", 1, 1, _double_result, _unary_numpy(np.log10, DataType.DOUBLE))
_register("exp", 1, 1, _double_result, _unary_numpy(np.exp, DataType.DOUBLE))
_register("lower", 1, 1, lambda a: DataType.VARCHAR,
          _string_impl(str.lower, DataType.VARCHAR))
_register("upper", 1, 1, lambda a: DataType.VARCHAR,
          _string_impl(str.upper, DataType.VARCHAR))
_register("trim", 1, 1, lambda a: DataType.VARCHAR,
          _string_impl(str.strip, DataType.VARCHAR))
_register("length", 1, 1, lambda a: DataType.BIGINT,
          _string_impl(len, DataType.BIGINT))
_register("substr", 2, 3, lambda a: DataType.VARCHAR, _impl_substr)
_register("substring", 2, 3, lambda a: DataType.VARCHAR, _impl_substr)
_register("concat", 2, 8, lambda a: DataType.VARCHAR, _impl_concat)
_register("coalesce", 2, 8, _first_arg_type, _impl_coalesce)
_register("nullif", 2, 2, _first_arg_type, _impl_nullif)
_register("year", 1, 1, _require_timestamp, _timestamp_part("year"))
_register("month", 1, 1, _require_timestamp, _timestamp_part("month"))
_register("day", 1, 1, _require_timestamp, _timestamp_part("day"))
_register("hour", 1, 1, _require_timestamp, _timestamp_part("hour"))
_register("minute", 1, 1, _require_timestamp, _timestamp_part("minute"))
_register("second", 1, 1, _require_timestamp, _timestamp_part("second"))
_register("epoch_us", 1, 1, _require_timestamp,
          _unary_numpy(lambda v: v, DataType.BIGINT))
_register("greatest", 2, 8, _first_arg_type, _impl_greatest_least(np.maximum))
_register("least", 2, 8, _first_arg_type, _impl_greatest_least(np.minimum))


# ---------------------------------------------------------------------------
# Aggregate typing (implementations live in the physical Aggregate operator)
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max", "median", "stddev_samp"}


def aggregate_result_type(name: str, arg: Optional[DataType]) -> DataType:
    """Result type rules for the supported aggregates."""
    if name == "count":
        return DataType.BIGINT
    if arg is None:
        raise BindError(f"{name.upper()} requires an argument")
    if name in ("avg", "median", "stddev_samp"):
        if arg == DataType.TIMESTAMP:
            return DataType.TIMESTAMP if name == "median" else DataType.DOUBLE
        if not is_numeric(arg):
            raise TypeMismatchError(f"{name.upper()} needs a numeric argument")
        return DataType.DOUBLE
    if name == "sum":
        if not is_numeric(arg):
            raise TypeMismatchError("SUM needs a numeric argument")
        return arg
    if name in ("min", "max"):
        return arg
    raise BindError(f"unknown aggregate {name}")


def predicate_mask(col: Column) -> np.ndarray:
    """Rows selected by a predicate column: value is true AND valid."""
    return col.values.astype(bool) & col.validity()
