"""Logical plan nodes and the binder.

The binder turns a parsed :class:`~repro.db.sql.ast.SelectStmt` into a tree
of logical nodes whose expressions are *bound*: every column reference
carries a plan-wide column id (cid) and every node a result type.

View references expand inline here — the paper's lazy transformation:
"view definitions are simply expanded into the query" (§3.2).  The binder
also implements the demo's addressing convention where a query over
``mseed.dataview`` may reference the view's *internal* aliases
(``F.station``, ``R.start_time``, ``D.sample_value``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.db import expr as ex
from repro.db.catalog import Catalog, Table, View
from repro.db.sql import ast
from repro.db.types import DataType, coerce_literal, comparable, common_numeric, literal_type
from repro.errors import BindError, TypeMismatchError


@dataclass(frozen=True)
class OutCol:
    """One output column of a logical node."""

    cid: int
    name: str
    dtype: DataType


class LogicalNode:
    """Base class; ``output`` is the ordered schema of produced columns."""

    output: list[OutCol]

    def children(self) -> list["LogicalNode"]:
        return []

    def out_by_cid(self, cid: int) -> OutCol:
        for col in self.output:
            if col.cid == cid:
                return col
        raise BindError(f"column #{cid} not produced by {type(self).__name__}")

    def output_cids(self) -> set[int]:
        return {c.cid for c in self.output}


@dataclass
class LScan(LogicalNode):
    """Scan of a base table (lazy tables are rewritten by the optimiser)."""

    table: Table
    qualified_name: str
    output: list[OutCol] = field(default_factory=list)
    is_lazy: bool = False

    def column_name(self, cid: int) -> str:
        return self.out_by_cid(cid).name


@dataclass
class LFilter(LogicalNode):
    child: LogicalNode
    predicate: ex.Expr
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LProject(LogicalNode):
    child: LogicalNode
    exprs: list[ex.Expr] = field(default_factory=list)
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LJoin(LogicalNode):
    """Join; ``left_keys``/``right_keys`` are equi-key cids (may be empty
    for cross joins before optimisation), ``residual`` any extra condition."""

    left: LogicalNode
    right: LogicalNode
    kind: str  # 'inner' | 'left' | 'cross'
    left_keys: list[int] = field(default_factory=list)
    right_keys: list[int] = field(default_factory=list)
    residual: Optional[ex.Expr] = None
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]


@dataclass
class LAggregate(LogicalNode):
    child: LogicalNode
    group_exprs: list[ex.Expr] = field(default_factory=list)
    aggregates: list[ex.AggCall] = field(default_factory=list)
    output: list[OutCol] = field(default_factory=list)  # groups then aggs

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LSort(LogicalNode):
    child: LogicalNode
    keys: list[tuple[ex.Expr, bool]] = field(default_factory=list)
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LLimit(LogicalNode):
    child: LogicalNode
    limit: Optional[int] = None
    offset: int = 0
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LDistinct(LogicalNode):
    child: LogicalNode
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LLazyFetch(LogicalNode):
    """The compile-time placeholder for run-time plan rewriting (§3.1).

    Executes ``meta`` first (the metadata sub-plan with its predicates),
    then asks the lazy binding to extract exactly the matching rows of the
    virtual table, and finally joins them back.  ``output`` is
    ``meta.output`` followed by the lazy table's fetched columns.
    """

    meta: LogicalNode
    binding: object  # LazyTableBinding
    table_name: str
    meta_key_cids: list[int] = field(default_factory=list)
    lazy_output: list[OutCol] = field(default_factory=list)
    needed: list[str] = field(default_factory=list)
    residuals: list[ex.Expr] = field(default_factory=list)
    time_bounds: tuple[Optional[int], Optional[int]] = (None, None)
    # Range-column bounds whose values are only known at execution time
    # (prepared-statement parameters): ``(op, expr)`` pairs, op in
    # ``('>', '>=', '<', '<=')``.  Resolved per execution and tightened
    # into ``time_bounds`` so parameterised windows prune extraction
    # exactly like literal ones.
    dynamic_bounds: list[tuple[str, ex.Expr]] = field(default_factory=list)
    output: list[OutCol] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.meta]


@dataclass
class LScanAll(LogicalNode):
    """Full-repository extraction of a lazy table (no metadata pruning).

    Models both the paper's §3.1 worst case and the external-table/NoDB
    baseline where "every query accesses the entire dataset".
    """

    binding: object
    table_name: str
    output: list[OutCol] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Binder
# ---------------------------------------------------------------------------


@dataclass
class FromEntry:
    """One FROM-clause item visible in the name-resolution scope."""

    alias: str
    columns: list[OutCol]
    view_alias_map: dict[tuple[str, str], str] | None = None


class Binder:
    """Binds one SELECT (including nested views/subqueries) to a plan."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._cids = itertools.count(1)

    def next_cid(self) -> int:
        return next(self._cids)

    # -- FROM clause -----------------------------------------------------------

    def bind_select(self, stmt: ast.SelectStmt) -> LogicalNode:
        plan, entries = self._bind_from(stmt.from_items)
        scope = _Scope(entries)

        if stmt.where is not None:
            predicate = self.bind_expr(stmt.where, scope)
            _require_boolean(predicate, "WHERE")
            _reject_aggregates(stmt.where, "WHERE")
            plan = LFilter(child=plan, predicate=predicate, output=plan.output)

        select_items = self._expand_stars(stmt.items, scope)

        agg_calls = _collect_aggregates(
            [item.expr for item in select_items]
            + ([stmt.having] if stmt.having else [])
            + [o.expr for o in stmt.order_by]
        )
        order_items = stmt.order_by
        if stmt.group_by or agg_calls:
            plan, scope, select_items, having, order_items = self._bind_aggregate(
                plan, scope, stmt, select_items, agg_calls
            )
            if having is not None:
                plan = LFilter(child=plan, predicate=having, output=plan.output)
        elif stmt.having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        # Bind the projection expressions (not yet planted as a node: the
        # Sort evaluates ORDER BY keys below the projection so keys may
        # reference any pre-projection column).
        exprs: list[ex.Expr] = []
        out_cols: list[OutCol] = []
        alias_exprs: dict[str, ex.Expr] = {}
        for item in select_items:
            bound = self.bind_expr(item.expr, scope)
            name = (item.alias or _default_name(item.expr)).lower()
            cid = self.next_cid()
            out_cols.append(OutCol(cid=cid, name=name, dtype=bound.dtype))
            exprs.append(bound)
            alias_exprs.setdefault(name, bound)

        if order_items:
            keys: list[tuple[ex.Expr, bool]] = []
            for order in order_items:
                expr = order.expr
                if (isinstance(expr, ex.ColumnRef) and len(expr.parts) == 1
                        and expr.parts[0].lower() in alias_exprs):
                    keys.append((alias_exprs[expr.parts[0].lower()],
                                 order.ascending))
                elif isinstance(expr, ex.Literal) and isinstance(expr.value, int):
                    index = expr.value - 1
                    if not 0 <= index < len(exprs):
                        raise BindError(
                            f"ORDER BY position {expr.value} out of range"
                        )
                    keys.append((exprs[index], order.ascending))
                else:
                    keys.append((self.bind_expr(expr, scope), order.ascending))
            plan = LSort(child=plan, keys=keys, output=plan.output)

        plan = LProject(child=plan, exprs=exprs, output=out_cols)

        if stmt.distinct:
            plan = LDistinct(child=plan, output=plan.output)

        if stmt.limit is not None or stmt.offset is not None:
            plan = LLimit(child=plan, limit=stmt.limit,
                          offset=stmt.offset or 0, output=plan.output)
        return plan

    def _bind_from(
        self, from_items: list[ast.TableExpr]
    ) -> tuple[LogicalNode, list[FromEntry]]:
        if not from_items:
            raise BindError("queries without FROM are not supported")
        plan: LogicalNode | None = None
        entries: list[FromEntry] = []
        for item in from_items:
            node, item_entries = self._bind_table_expr(item)
            entries.extend(item_entries)
            if plan is None:
                plan = node
            else:
                plan = LJoin(left=plan, right=node, kind="cross",
                             output=plan.output + node.output)
        assert plan is not None
        _check_duplicate_aliases(entries)
        return plan, entries

    def _bind_table_expr(
        self, item: ast.TableExpr
    ) -> tuple[LogicalNode, list[FromEntry]]:
        if isinstance(item, ast.TableRef):
            return self._bind_table_ref(item)
        if isinstance(item, ast.SubqueryRef):
            inner = self.bind_select(item.select)
            entry = FromEntry(alias=item.alias.lower(), columns=inner.output)
            return inner, [entry]
        if isinstance(item, ast.JoinRef):
            left, left_entries = self._bind_table_expr(item.left)
            right, right_entries = self._bind_table_expr(item.right)
            entries = left_entries + right_entries
            join = LJoin(left=left, right=right,
                         kind="cross" if item.kind == "cross" else item.kind,
                         output=left.output + right.output)
            if item.condition is not None:
                condition = self.bind_expr(item.condition, _Scope(entries))
                _require_boolean(condition, "JOIN ON")
                join.residual = condition
                if join.kind == "cross":
                    join.kind = "inner"
            return join, entries
        raise BindError(f"unsupported FROM item {item!r}")

    def _bind_table_ref(
        self, ref: ast.TableRef
    ) -> tuple[LogicalNode, list[FromEntry]]:
        obj = self.catalog.lookup(ref.parts)
        alias = (ref.alias or ref.parts[-1]).lower()
        if isinstance(obj, Table):
            output = [
                OutCol(cid=self.next_cid(), name=spec.name, dtype=spec.dtype)
                for spec in obj.schema.columns
            ]
            qualified = obj.name
            scan = LScan(table=obj, qualified_name=qualified, output=output,
                         is_lazy=self.catalog.is_lazy(qualified))
            return scan, [FromEntry(alias=alias, columns=output)]
        assert isinstance(obj, View)
        inner = self.bind_select(obj.select)
        entry = FromEntry(alias=alias, columns=inner.output,
                          view_alias_map=obj.alias_map)
        return inner, [entry]

    # -- star expansion -----------------------------------------------------------

    def _expand_stars(self, items: list[ast.SelectItem],
                      scope: "_Scope") -> list[ast.SelectItem]:
        out: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ex.Star):
                qualifier = item.expr.qualifier
                matched = False
                for entry in scope.entries:
                    if qualifier is not None and entry.alias != qualifier.lower():
                        continue
                    matched = True
                    for col in entry.columns:
                        out.append(
                            ast.SelectItem(
                                expr=ex.BoundRef(cid=col.cid, dtype=col.dtype,
                                                 name=col.name),
                                alias=col.name,
                            )
                        )
                if qualifier is not None and not matched:
                    raise BindError(f"unknown alias {qualifier!r} in {qualifier}.*")
            else:
                out.append(item)
        return out

    # -- aggregation ----------------------------------------------------------------

    def _bind_aggregate(self, plan, scope, stmt, select_items, agg_calls):
        group_bound: list[ex.Expr] = []
        group_cols: list[OutCol] = []
        for expr in stmt.group_by:
            bound = self.bind_expr(expr, scope)
            _reject_aggregates(expr, "GROUP BY")
            cid = self.next_cid()
            group_bound.append(bound)
            group_cols.append(
                OutCol(cid=cid, name=_default_name(expr).lower(),
                       dtype=bound.dtype)
            )

        bound_aggs: list[ex.AggCall] = []
        agg_cols: list[OutCol] = []
        seen: dict[tuple, OutCol] = {}
        for call in agg_calls:
            bound_arg = (None if call.arg is None
                         else self.bind_expr(call.arg, scope))
            if isinstance(bound_arg, ex.Param) and bound_arg.dtype is None:
                raise BindError(
                    f"cannot infer the type of a parameter passed to "
                    f"{call.name.upper()}(); wrap it in CAST(... AS <type>)"
                )
            bound_call = ex.AggCall(name=call.name, arg=bound_arg,
                                    distinct=call.distinct)
            bound_call.dtype = ex.aggregate_result_type(
                call.name, None if bound_arg is None else bound_arg.dtype
            )
            key = bound_call.key()
            if key in seen:
                continue
            cid = self.next_cid()
            col = OutCol(cid=cid, name=_default_name(call).lower(),
                         dtype=bound_call.dtype)
            seen[key] = col
            bound_aggs.append(bound_call)
            agg_cols.append(col)

        agg_node = LAggregate(
            child=plan,
            group_exprs=group_bound,
            aggregates=bound_aggs,
            output=group_cols + agg_cols,
        )

        # Rewrite post-aggregation expressions in terms of the agg output.
        group_keys = {expr.key(): col for expr, col in zip(group_bound, group_cols)}
        agg_keys = dict(seen)

        def rewrite(expr: ex.Expr) -> ex.Expr:
            if isinstance(expr, ex.AggCall):
                bound_arg = None if expr.arg is None else self.bind_expr(expr.arg, scope)
                probe = ex.AggCall(name=expr.name, arg=bound_arg,
                                   distinct=expr.distinct)
                col = agg_keys[probe.key()]
                return ex.BoundRef(cid=col.cid, dtype=col.dtype, name=col.name)
            bound_probe = None
            try:
                bound_probe = self.bind_expr(expr, scope)
            except BindError:
                pass
            if bound_probe is not None and bound_probe.key() in group_keys:
                col = group_keys[bound_probe.key()]
                return ex.BoundRef(cid=col.cid, dtype=col.dtype, name=col.name)
            clone = _clone_with_children(expr, [rewrite(c) for c in expr.children()])
            return clone

        valid_cids = agg_node.output_cids()
        new_items = []
        for item in select_items:
            rewritten = rewrite(item.expr)
            _ensure_no_raw_columns(rewritten, valid_cids)
            new_items.append(ast.SelectItem(expr=rewritten, alias=item.alias))
        having = None
        if stmt.having is not None:
            having_rewritten = rewrite(stmt.having)
            having_bound = self.bind_expr(
                having_rewritten,
                _Scope([FromEntry(alias="", columns=agg_node.output)]),
            )
            _require_boolean(having_bound, "HAVING")
            having = having_bound
        order_items = [
            ast.OrderItem(expr=rewrite(order.expr), ascending=order.ascending)
            for order in stmt.order_by
        ]
        post_scope = _Scope([FromEntry(alias="", columns=agg_node.output)])
        return agg_node, post_scope, new_items, having, order_items

    # -- expression binding ------------------------------------------------------------

    def bind_expr(self, expr: ex.Expr, scope: "_Scope") -> ex.Expr:
        if isinstance(expr, ex.BoundRef):
            return expr
        if isinstance(expr, ex.ColumnRef):
            col = scope.resolve(expr.parts)
            return ex.BoundRef(cid=col.cid, dtype=col.dtype, name=col.name)
        if isinstance(expr, ex.Literal):
            if expr.value is None:
                lit = ex.Literal(value=None, dtype=DataType.VARCHAR)
                return lit
            return ex.Literal(value=expr.value, dtype=literal_type(expr.value))
        if isinstance(expr, ex.Param):
            # Fresh copy per bind: the dtype is inferred from *this*
            # statement's context (comparison peer, BETWEEN/IN operand,
            # enclosing CAST) and must not leak between compilations.
            return ex.Param(slot=expr.slot, dtype=expr.dtype)
        if isinstance(expr, ex.BinOp):
            left = self.bind_expr(expr.left, scope)
            right = self.bind_expr(expr.right, scope)
            return _type_binop(expr.op, left, right)
        if isinstance(expr, ex.UnOp):
            operand = self.bind_expr(expr.operand, scope)
            node = ex.UnOp(op=expr.op, operand=operand)
            if expr.op == "-":
                if not operand.dtype or operand.dtype not in (
                    DataType.BIGINT, DataType.DOUBLE
                ):
                    raise TypeMismatchError("unary minus needs a numeric operand")
                node.dtype = operand.dtype
            else:
                _require_boolean(operand, "NOT")
                node.dtype = DataType.BOOLEAN
            return node
        if isinstance(expr, ex.FuncCall):
            spec = ex.FUNCTIONS.get(expr.name)
            if spec is None:
                raise BindError(f"unknown function {expr.name!r}")
            if not spec.min_args <= len(expr.args) <= spec.max_args:
                raise BindError(
                    f"{expr.name.upper()} expects between {spec.min_args} and "
                    f"{spec.max_args} arguments"
                )
            args = [self.bind_expr(a, scope) for a in expr.args]
            for arg in args:
                if isinstance(arg, ex.Param) and arg.dtype is None:
                    raise BindError(
                        f"cannot infer the type of a parameter passed to "
                        f"{expr.name.upper()}(); wrap it in "
                        "CAST(... AS <type>)"
                    )
            node = ex.FuncCall(name=expr.name, args=args)
            node.dtype = spec.result_type([a.dtype for a in args])
            return node
        if isinstance(expr, ex.Between):
            operand = self.bind_expr(expr.operand, scope)
            low = _coerce_to(self.bind_expr(expr.low, scope), operand.dtype)
            high = _coerce_to(self.bind_expr(expr.high, scope), operand.dtype)
            node = ex.Between(operand=operand, low=low, high=high,
                              negated=expr.negated)
            node.dtype = DataType.BOOLEAN
            return node
        if isinstance(expr, ex.InList):
            operand = self.bind_expr(expr.operand, scope)
            items = [
                _coerce_to(self.bind_expr(i, scope), operand.dtype)
                for i in expr.items
            ]
            node = ex.InList(operand=operand, items=items, negated=expr.negated)
            node.dtype = DataType.BOOLEAN
            return node
        if isinstance(expr, ex.IsNull):
            node = ex.IsNull(operand=self.bind_expr(expr.operand, scope),
                             negated=expr.negated)
            node.dtype = DataType.BOOLEAN
            return node
        if isinstance(expr, ex.Like):
            operand = self.bind_expr(expr.operand, scope)
            if operand.dtype != DataType.VARCHAR:
                raise TypeMismatchError("LIKE needs a VARCHAR operand")
            node = ex.Like(operand=operand, pattern=expr.pattern,
                           negated=expr.negated)
            node.dtype = DataType.BOOLEAN
            return node
        if isinstance(expr, ex.Case):
            whens = []
            value_types: list[DataType] = []
            for cond, value in expr.whens:
                bound_cond = self.bind_expr(cond, scope)
                _require_boolean(bound_cond, "CASE WHEN")
                bound_value = self.bind_expr(value, scope)
                whens.append((bound_cond, bound_value))
                value_types.append(bound_value.dtype)
            default = (None if expr.default is None
                       else self.bind_expr(expr.default, scope))
            if default is not None:
                value_types.append(default.dtype)
            result_type = value_types[0]
            for other in value_types[1:]:
                if other == result_type:
                    continue
                result_type = common_numeric(result_type, other)
            node = ex.Case(whens=whens, default=default)
            node.dtype = result_type
            return node
        if isinstance(expr, ex.Cast):
            operand = self.bind_expr(expr.operand, scope)
            if isinstance(operand, ex.Param) and operand.dtype is None:
                # CAST(? AS type) is the explicit escape hatch for
                # placeholders with no inferable context.
                operand.dtype = expr.target
            node = ex.Cast(operand=operand, target=expr.target)
            node.dtype = expr.target
            return node
        if isinstance(expr, ex.AggCall):
            raise BindError(
                f"aggregate {expr.name.upper()} is not allowed here"
            )
        raise BindError(f"cannot bind expression {expr!r}")


class _Scope:
    """Name-resolution scope over FROM entries."""

    def __init__(self, entries: list[FromEntry]) -> None:
        self.entries = entries

    def resolve(self, parts: tuple[str, ...]) -> OutCol:
        lowered = tuple(p.lower() for p in parts)
        if len(lowered) == 1:
            return self._resolve_bare(lowered[0])
        if len(lowered) == 2:
            qualifier, column = lowered
            for entry in self.entries:
                if entry.alias == qualifier:
                    return self._column_of(entry, column, qualifier)
            # The paper's view-internal alias addressing: F.station against
            # a dataview expansion.
            for entry in self.entries:
                if entry.view_alias_map is None:
                    continue
                out_name = entry.view_alias_map.get((qualifier, column))
                if out_name is not None:
                    return self._column_of(entry, out_name, qualifier)
            raise BindError(f"unknown column {'.'.join(parts)}")
        if len(lowered) == 3:
            _schema, table, column = lowered
            for entry in self.entries:
                if entry.alias == table:
                    return self._column_of(entry, column, table)
            raise BindError(f"unknown column {'.'.join(parts)}")
        raise BindError(f"over-qualified column name {'.'.join(parts)}")

    def _resolve_bare(self, name: str) -> OutCol:
        hits = []
        for entry in self.entries:
            for col in entry.columns:
                if col.name == name:
                    hits.append(col)
        if not hits:
            raise BindError(f"unknown column {name!r}")
        distinct_cids = {c.cid for c in hits}
        if len(distinct_cids) > 1:
            raise BindError(f"ambiguous column {name!r}")
        return hits[0]

    @staticmethod
    def _column_of(entry: FromEntry, name: str, qualifier: str) -> OutCol:
        for col in entry.columns:
            if col.name == name:
                return col
        raise BindError(f"unknown column {qualifier}.{name}")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _check_duplicate_aliases(entries: list[FromEntry]) -> None:
    seen: set[str] = set()
    for entry in entries:
        if entry.alias and entry.alias in seen:
            raise BindError(f"duplicate table alias {entry.alias!r}")
        if entry.alias:
            seen.add(entry.alias)


def _require_boolean(expr: ex.Expr, context: str) -> None:
    if expr.dtype != DataType.BOOLEAN:
        raise TypeMismatchError(f"{context} requires a boolean, got {expr.dtype}")


def _reject_aggregates(expr: ex.Expr, context: str) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.AggCall):
            raise BindError(f"aggregates are not allowed in {context}")
        stack.extend(node.children())


def _ensure_no_raw_columns(expr: ex.Expr, valid_cids: set[int]) -> None:
    """After aggregation, outputs may only reference the aggregate node."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.ColumnRef):
            raise BindError(
                f"column {node.display!r} must appear in GROUP BY or be "
                "wrapped in an aggregate"
            )
        if isinstance(node, ex.BoundRef) and node.cid not in valid_cids:
            raise BindError(
                f"column {node.name!r} must appear in GROUP BY or be "
                "wrapped in an aggregate"
            )
        stack.extend(node.children())


def _collect_aggregates(exprs: list[ex.Expr]) -> list[ex.AggCall]:
    out: list[ex.AggCall] = []

    def walk(node: ex.Expr) -> None:
        if isinstance(node, ex.AggCall):
            out.append(node)
            return  # nested aggregates are invalid; caught at bind time
        for child in node.children():
            walk(child)

    for expr in exprs:
        walk(expr)
    return out


def _default_name(expr: ex.Expr) -> str:
    if isinstance(expr, ex.ColumnRef):
        return expr.parts[-1]
    if isinstance(expr, ex.BoundRef):
        return expr.name or f"col{expr.cid}"
    if isinstance(expr, ex.AggCall):
        if expr.arg is None:
            return f"{expr.name}_star"
        return f"{expr.name}_{_default_name(expr.arg)}"
    if isinstance(expr, ex.FuncCall):
        return expr.name
    if isinstance(expr, ex.Literal):
        return "literal"
    return "expr"


def _coerce_to(expr: ex.Expr, target: DataType | None) -> ex.Expr:
    """Implicitly coerce literals (e.g. timestamp strings) to ``target``."""
    if target is None or expr.dtype == target:
        return expr
    if isinstance(expr, ex.Param) and expr.dtype is None:
        # Placeholders adopt the type of the operand they stand against
        # (BETWEEN bounds, IN-list items, comparison peers).
        expr.dtype = target
        return expr
    if isinstance(expr, ex.Literal) and expr.value is not None:
        if target == DataType.TIMESTAMP and expr.dtype == DataType.VARCHAR:
            return ex.Literal(value=coerce_literal(expr.value, target),
                              dtype=target)
        if target == DataType.DOUBLE and expr.dtype == DataType.BIGINT:
            return ex.Literal(value=float(expr.value), dtype=target)
        if target == DataType.BIGINT and expr.dtype == DataType.DOUBLE:
            return expr  # comparison handles numeric promotion
    if not comparable(expr.dtype, target):
        raise TypeMismatchError(f"cannot compare {expr.dtype} with {target}")
    return expr


def _type_binop(op: str, left: ex.Expr, right: ex.Expr) -> ex.BinOp:
    # Untyped placeholders adopt the peer operand's type before any
    # type checking below sees them.
    if isinstance(left, ex.Param) and left.dtype is None \
            and right.dtype is not None:
        left.dtype = right.dtype
    if isinstance(right, ex.Param) and right.dtype is None \
            and left.dtype is not None:
        right.dtype = left.dtype
    node = ex.BinOp(op=op, left=left, right=right)
    if op in ("and", "or"):
        _require_boolean(left, op.upper())
        _require_boolean(right, op.upper())
        node.dtype = DataType.BOOLEAN
        return node
    if op in ("=", "<>", "<", "<=", ">", ">="):
        # Implicit timestamp-literal parsing, the form the paper's queries use.
        if left.dtype == DataType.TIMESTAMP and right.dtype == DataType.VARCHAR:
            node.right = right = _coerce_to(right, DataType.TIMESTAMP)
        elif right.dtype == DataType.TIMESTAMP and left.dtype == DataType.VARCHAR:
            node.left = left = _coerce_to(left, DataType.TIMESTAMP)
        if not comparable(left.dtype, right.dtype):
            raise TypeMismatchError(
                f"cannot compare {left.dtype} with {right.dtype}"
            )
        node.dtype = DataType.BOOLEAN
        return node
    # Arithmetic
    if left.dtype == DataType.TIMESTAMP or right.dtype == DataType.TIMESTAMP:
        if op not in ("+", "-"):
            raise TypeMismatchError(f"operator {op} is not defined on timestamps")
        both = (left.dtype == DataType.TIMESTAMP
                and right.dtype == DataType.TIMESTAMP)
        node.dtype = DataType.BIGINT if (op == "-" and both) else DataType.TIMESTAMP
        return node
    if op == "/":
        node.dtype = DataType.DOUBLE
        if not (left.dtype in (DataType.BIGINT, DataType.DOUBLE)
                and right.dtype in (DataType.BIGINT, DataType.DOUBLE)):
            raise TypeMismatchError("division needs numeric operands")
        return node
    node.dtype = common_numeric(left.dtype, right.dtype)
    return node


def _clone_with_children(expr: ex.Expr, children: list[ex.Expr]) -> ex.Expr:
    """Rebuild an expression node with new children (rewrites)."""
    if isinstance(expr, ex.BinOp):
        node = ex.BinOp(op=expr.op, left=children[0], right=children[1])
    elif isinstance(expr, ex.UnOp):
        node = ex.UnOp(op=expr.op, operand=children[0])
    elif isinstance(expr, ex.FuncCall):
        node = ex.FuncCall(name=expr.name, args=children)
    elif isinstance(expr, ex.Between):
        node = ex.Between(operand=children[0], low=children[1],
                          high=children[2], negated=expr.negated)
    elif isinstance(expr, ex.InList):
        node = ex.InList(operand=children[0], items=children[1:],
                         negated=expr.negated)
    elif isinstance(expr, ex.IsNull):
        node = ex.IsNull(operand=children[0], negated=expr.negated)
    elif isinstance(expr, ex.Like):
        node = ex.Like(operand=children[0], pattern=expr.pattern,
                       negated=expr.negated)
    elif isinstance(expr, ex.Cast):
        node = ex.Cast(operand=children[0], target=expr.target)
    elif isinstance(expr, ex.Case):
        pair_count = len(expr.whens)
        whens = [(children[2 * i], children[2 * i + 1]) for i in range(pair_count)]
        default = children[-1] if expr.default is not None else None
        node = ex.Case(whens=whens, default=default)
    elif not children:
        return expr
    else:
        raise BindError(f"cannot rewrite expression {expr!r}")
    node.dtype = expr.dtype
    return node


def bind_select(catalog: Catalog, stmt: ast.SelectStmt) -> LogicalNode:
    """Entry point: bind a SELECT statement into a logical plan."""
    return Binder(catalog).bind_select(stmt)
