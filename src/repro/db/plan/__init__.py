"""Query planning: binder, logical plan, optimiser, physical operators."""

from repro.db.plan.logical import LogicalNode, bind_select
from repro.db.plan.optimizer import optimize
from repro.db.plan.physical import build_physical, Chunk, ExecutionContext

__all__ = [
    "LogicalNode",
    "bind_select",
    "optimize",
    "build_physical",
    "Chunk",
    "ExecutionContext",
]
