"""Logical-plan optimisation.

Four passes run in order, two of them generic and two embodying the
paper's compile-time plan modification for lazy extraction (§3.1):

1. **Predicate pushdown** — WHERE conjuncts sink to the lowest node whose
   output covers their columns.  This is what "reorganises the plan so the
   selection predicates on the metadata are applied first".
2. **Join reordering** — chains of inner/cross joins are rebuilt left-deep
   with the *metadata* (non-lazy) tables joined first and lazily-bound
   tables forced last; equi-join keys are recognised from conjuncts.
3. **Lazy-fetch planting** — a join between a metadata sub-plan and a
   lazily-bound table becomes :class:`LLazyFetch`, the compile-time
   placeholder whose execution performs the *run-time* plan rewriting
   (injecting per-file cache/extract operators).  A lazy table reached
   without usable metadata keys degrades to :class:`LScanAll` — the
   paper's worst case, and the behaviour of external-table baselines.
4. **Column pruning** — scans and lazy fetches materialise only the
   columns the query needs (so Figure-1's Q2 never extracts timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.db import expr as ex
from repro.db.plan.logical import (
    LAggregate,
    LDistinct,
    LFilter,
    LJoin,
    LLazyFetch,
    LLimit,
    LogicalNode,
    LProject,
    LScan,
    LScanAll,
    LSort,
    OutCol,
)
from repro.db.types import DataType
from repro.errors import BindError


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


def split_conjuncts(expr: ex.Expr) -> list[ex.Expr]:
    """Flatten an AND tree into its conjuncts."""
    if isinstance(expr, ex.BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: list[ex.Expr]) -> Optional[ex.Expr]:
    """Rebuild an AND tree (``None`` for the empty list)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for nxt in conjuncts[1:]:
        node = ex.BinOp(op="and", left=result, right=nxt)
        node.dtype = DataType.BOOLEAN
        result = node
    return result


def _equi_pair(conjunct: ex.Expr) -> Optional[tuple[int, int]]:
    """Return the two cids of a simple ``col = col`` conjunct."""
    if (isinstance(conjunct, ex.BinOp) and conjunct.op == "="
            and isinstance(conjunct.left, ex.BoundRef)
            and isinstance(conjunct.right, ex.BoundRef)):
        return conjunct.left.cid, conjunct.right.cid
    return None


# ---------------------------------------------------------------------------
# Pass 1: predicate pushdown
# ---------------------------------------------------------------------------


def push_down_filters(node: LogicalNode) -> LogicalNode:
    """Sink filter conjuncts as deep as their column references allow."""
    return _pushdown(node, [])


def _pushdown(node: LogicalNode, pending: list[ex.Expr]) -> LogicalNode:
    if isinstance(node, LFilter):
        conjuncts = split_conjuncts(node.predicate)
        return _pushdown(node.child, pending + conjuncts)

    if isinstance(node, LJoin):
        if node.residual is not None and node.kind in ("inner", "cross"):
            pending = pending + split_conjuncts(node.residual)
            node.residual = None
            if node.kind == "cross":
                node.kind = "inner"
        left_cids = node.left.output_cids()
        right_cids = node.right.output_cids()
        to_left: list[ex.Expr] = []
        to_right: list[ex.Expr] = []
        stay: list[ex.Expr] = []
        for conjunct in pending:
            refs = conjunct.referenced_cids()
            if refs and refs <= left_cids:
                to_left.append(conjunct)
            elif refs and refs <= right_cids and node.kind != "left":
                # Pushing below the NULL-padding side of a LEFT join would
                # change semantics; keep those at the join.
                to_right.append(conjunct)
            else:
                stay.append(conjunct)
        node.left = _pushdown(node.left, to_left)
        node.right = _pushdown(node.right, to_right)
        node.output = node.left.output + node.right.output
        if node.kind == "left":
            # residual conjuncts above a LEFT join must stay as a filter.
            node.residual = node.residual
            return _wrap_filter(node, stay)
        node.residual = and_together(stay) if stay else None
        if node.residual is not None and node.kind == "cross":
            node.kind = "inner"
        return node

    if isinstance(node, LProject):
        # A conjunct can sink below the projection if every referenced cid
        # is a pass-through BoundRef.
        passthrough: dict[int, ex.Expr] = {}
        for out, expr in zip(node.output, node.exprs):
            if isinstance(expr, ex.BoundRef):
                passthrough[out.cid] = expr
        sinkable: list[ex.Expr] = []
        stay: list[ex.Expr] = []
        for conjunct in pending:
            refs = conjunct.referenced_cids()
            if refs <= set(passthrough):
                sinkable.append(_substitute(conjunct, passthrough))
            else:
                stay.append(conjunct)
        node.child = _pushdown(node.child, sinkable)
        return _wrap_filter(node, stay)

    if isinstance(node, (LSort, LLimit, LDistinct)):
        if isinstance(node, LLimit):
            # Filters must not cross LIMIT.
            node.child = _pushdown(node.child, [])
            return _wrap_filter(node, pending)
        node.child = _pushdown(node.child, pending)
        node.output = node.child.output if not isinstance(node, LDistinct) \
            else node.output
        return node

    if isinstance(node, LAggregate):
        # Conjuncts above an aggregate referencing group outputs could sink,
        # but they arrive pre-bound to aggregate output cids; keep simple and
        # stop here (HAVING stays above the aggregate).
        node.child = _pushdown(node.child, [])
        return _wrap_filter(node, pending)

    if isinstance(node, (LScan, LScanAll, LLazyFetch)):
        return _wrap_filter(node, pending)

    # Unknown node: recurse into children conservatively.
    for child in node.children():
        _pushdown(child, [])
    return _wrap_filter(node, pending)


def _wrap_filter(node: LogicalNode, conjuncts: list[ex.Expr]) -> LogicalNode:
    predicate = and_together(conjuncts)
    if predicate is None:
        return node
    return LFilter(child=node, predicate=predicate, output=node.output)


def _substitute(expr: ex.Expr, mapping: dict[int, ex.Expr]) -> ex.Expr:
    from repro.db.plan.logical import _clone_with_children

    if isinstance(expr, ex.BoundRef):
        return mapping.get(expr.cid, expr)
    children = [_substitute(c, mapping) for c in expr.children()]
    if not children:
        return expr
    return _clone_with_children(expr, children)


# ---------------------------------------------------------------------------
# Pass 2 + 3: join reordering and lazy-fetch planting
# ---------------------------------------------------------------------------


@dataclass
class _Leaf:
    node: LogicalNode
    conjuncts: list[ex.Expr] = field(default_factory=list)

    @property
    def cids(self) -> set[int]:
        return self.node.output_cids()

    @property
    def lazy_scan(self) -> Optional[LScan]:
        base = self.node
        while isinstance(base, LFilter):
            base = base.child
        if isinstance(base, LScan) and base.is_lazy:
            return base
        return None

    def estimated_rows(self) -> float:
        base = self.node
        selectivity = 1.0
        while isinstance(base, LFilter):
            selectivity *= 0.25 ** len(split_conjuncts(base.predicate))
            base = base.child
        if isinstance(base, LScan):
            return max(base.table.row_count, 1) * selectivity
        return 1e6 * selectivity


def reorder_joins(node: LogicalNode) -> LogicalNode:
    """Rebuild inner/cross join chains metadata-first, lazy-last."""
    if isinstance(node, LJoin) and node.kind in ("inner", "cross"):
        leaves: list[_Leaf] = []
        conjuncts: list[ex.Expr] = []
        _flatten_join_chain(node, leaves, conjuncts)
        for leaf in leaves:
            leaf.node = reorder_joins(leaf.node)
        if len(leaves) == 1:
            return _wrap_filter(leaves[0].node, conjuncts)
        return _build_join_tree(leaves, conjuncts)
    for name in ("child", "left", "right", "meta"):
        child = getattr(node, name, None)
        if isinstance(child, LogicalNode):
            setattr(node, name, reorder_joins(child))
    _refresh_output(node)
    return node


def _flatten_join_chain(node: LogicalNode, leaves: list[_Leaf],
                        conjuncts: list[ex.Expr]) -> None:
    if isinstance(node, LJoin) and node.kind in ("inner", "cross"):
        if node.residual is not None:
            conjuncts.extend(split_conjuncts(node.residual))
        for left_cid, right_cid in zip(node.left_keys, node.right_keys):
            eq = ex.BinOp(
                op="=",
                left=ex.BoundRef(cid=left_cid, dtype=None),   # type: ignore[arg-type]
                right=ex.BoundRef(cid=right_cid, dtype=None),  # type: ignore[arg-type]
            )
            eq.dtype = DataType.BOOLEAN
            conjuncts.append(eq)
        _flatten_join_chain(node.left, leaves, conjuncts)
        _flatten_join_chain(node.right, leaves, conjuncts)
        return
    if isinstance(node, LFilter):
        # A filter directly over a join-chain member: keep its predicate with
        # the leaf so selectivity estimation sees it.
        leaves.append(_Leaf(node=node))
        return
    leaves.append(_Leaf(node=node))


def _build_join_tree(leaves: list[_Leaf],
                     conjuncts: list[ex.Expr]) -> LogicalNode:
    remaining = list(leaves)
    edges: list[tuple[ex.Expr, int, int]] = []  # (conjunct, cid_a, cid_b)
    other: list[ex.Expr] = []
    for conjunct in conjuncts:
        pair = _equi_pair(conjunct)
        if pair is None:
            other.append(conjunct)
        else:
            edges.append((conjunct, pair[0], pair[1]))

    def leaf_of(cid: int) -> Optional[_Leaf]:
        for leaf in remaining:
            if cid in leaf.cids:
                return leaf
        return None

    # Start with the most selective non-lazy leaf.
    non_lazy = [l for l in remaining if l.lazy_scan is None]
    start_pool = non_lazy or remaining
    current_leaf = min(start_pool, key=lambda l: l.estimated_rows())
    remaining.remove(current_leaf)
    plan: LogicalNode = current_leaf.node
    covered = set(plan.output_cids())
    used_edges: set[int] = set()

    while remaining:
        # Candidate leaves connected to the covered set by an equi edge.
        candidates: dict[int, list[tuple[ex.Expr, int, int]]] = {}
        for index, (conjunct, a, b) in enumerate(edges):
            if index in used_edges:
                continue
            if a in covered:
                target = leaf_of(b)
                if target is not None:
                    candidates.setdefault(id(target), []).append((conjunct, a, b))
            elif b in covered:
                target = leaf_of(a)
                if target is not None:
                    candidates.setdefault(id(target), []).append((conjunct, b, a))
        next_leaf: Optional[_Leaf] = None
        if candidates:
            connected = [l for l in remaining if id(l) in candidates]
            non_lazy_connected = [l for l in connected if l.lazy_scan is None]
            pool = non_lazy_connected or connected
            next_leaf = min(pool, key=lambda l: l.estimated_rows())
        else:
            non_lazy_left = [l for l in remaining if l.lazy_scan is None]
            next_leaf = min(non_lazy_left or remaining,
                            key=lambda l: l.estimated_rows())
        remaining.remove(next_leaf)

        keys = candidates.get(id(next_leaf), [])
        for conjunct, _a, _b in keys:
            for index, (edge_conjunct, _x, _y) in enumerate(edges):
                if edge_conjunct is conjunct:
                    used_edges.add(index)

        lazy_scan = next_leaf.lazy_scan
        if lazy_scan is not None and keys:
            planted = _plant_lazy_fetch(plan, next_leaf, lazy_scan, keys)
            if planted is not None:
                fetch, consumed = planted
                # Key conjuncts beyond the binding's key columns (e.g. a
                # redundant F.file = D.file next to R.file = D.file) are not
                # enforced by the fetch join — reapply them as filters.
                for conjunct, _a, _b in keys:
                    if conjunct not in consumed:
                        other.append(conjunct)
                plan = fetch
                covered = set(plan.output_cids())
                continue
        join = LJoin(
            left=plan,
            right=next_leaf.node,
            kind="inner" if keys else "cross",
            left_keys=[left for _c, left, _r in keys],
            right_keys=[right for _c, _l, right in keys],
            output=plan.output + next_leaf.node.output,
        )
        plan = join
        covered = set(plan.output_cids())

    # Remaining (non-equi or multi-leaf) conjuncts become a filter on top;
    # unused equi edges (e.g. redundant transitive ones) are restored too.
    leftovers = list(other)
    for index, (conjunct, _a, _b) in enumerate(edges):
        if index not in used_edges:
            leftovers.append(conjunct)
    applicable = [c for c in leftovers if c.referenced_cids() <= covered]
    dangling = [c for c in leftovers if not c.referenced_cids() <= covered]
    if dangling:
        raise BindError("internal: join reordering lost predicate columns")
    return _wrap_filter(plan, applicable)


def _plant_lazy_fetch(
    meta_plan: LogicalNode, leaf: _Leaf, scan: LScan,
    keys: list[tuple[ex.Expr, int, int]],
) -> Optional[tuple[LogicalNode, list[ex.Expr]]]:
    """Convert meta ⋈ lazy-scan into the LLazyFetch rewrite point.

    Returns ``(fetch_node, consumed_conjuncts)`` or ``None`` when the
    metadata join does not identify files/records.
    """
    binding = _binding_of(scan)
    if binding is None or not binding.key_columns:
        # Bindings without key columns (external tables) cannot be pruned
        # by metadata — they always degrade to full scans.
        return None
    name_by_cid = {c.cid: c.name for c in scan.output}
    key_names = []
    meta_key_cids = []
    for _conjunct, meta_cid, lazy_cid in keys:
        lazy_name = name_by_cid.get(lazy_cid)
        if lazy_name is None:
            return None
        key_names.append(lazy_name)
        meta_key_cids.append(meta_cid)
    if set(binding.key_columns) - set(key_names):
        # The metadata join does not identify files/records — cannot prune.
        return None
    # Order the key lists canonically by the binding's key columns.
    ordered_meta: list[int] = []
    consumed: list[ex.Expr] = []
    for key_col in binding.key_columns:
        index = key_names.index(key_col)
        ordered_meta.append(meta_key_cids[index])
        consumed.append(keys[index][0])

    residuals: list[ex.Expr] = []
    node = leaf.node
    while isinstance(node, LFilter):
        residuals.extend(split_conjuncts(node.predicate))
        node = node.child
    time_bounds, dynamic_bounds = _extract_time_bounds(residuals, scan,
                                                       binding)

    fetch = LLazyFetch(
        meta=meta_plan,
        binding=binding,
        table_name=scan.qualified_name,
        meta_key_cids=ordered_meta,
        lazy_output=list(scan.output),
        needed=[c.name for c in scan.output],
        residuals=residuals,
        time_bounds=time_bounds,
        dynamic_bounds=dynamic_bounds,
        output=meta_plan.output + list(scan.output),
    )
    return fetch, consumed


def _binding_of(scan: LScan):
    # The binding is attached to the table object by the engine before
    # optimisation (see Database._attach_bindings).
    return getattr(scan.table, "lazy_binding", None)


def _extract_time_bounds(
    residuals: list[ex.Expr], scan: LScan, binding
) -> tuple[tuple[Optional[int], Optional[int]], list[tuple[str, ex.Expr]]]:
    """Derive bounds on the binding's range column (sample_time).

    These bounds let extraction skip whole records whose metadata span
    falls outside the query's window — metadata identifying the actual
    data required, per §1.  Literal bounds tighten the static
    ``(lo, hi)`` tuple at compile time; parameter-valued bounds are
    returned as ``(op, expr)`` pairs the lazy-fetch operator resolves
    per execution, so prepared statements prune exactly like literal
    queries.
    """
    range_col = binding.range_column
    if range_col is None:
        return (None, None), []
    range_cid = None
    for col in scan.output:
        if col.name == range_col:
            range_cid = col.cid
            break
    if range_cid is None:
        return (None, None), []
    lo: Optional[int] = None
    hi: Optional[int] = None
    dynamic: list[tuple[str, ex.Expr]] = []

    def tighten(op: str, bound: ex.Expr) -> None:
        nonlocal lo, hi
        if isinstance(bound, ex.Param):
            dynamic.append((op, bound))
            return
        value = int(bound.value)  # ex.Literal
        if op in (">", ">="):
            lo = value if lo is None else max(lo, value)
        elif op in ("<", "<="):
            hi = value if hi is None else min(hi, value)

    def is_bound(expr: ex.Expr) -> bool:
        return (isinstance(expr, ex.Literal) and expr.value is not None) \
            or isinstance(expr, ex.Param)

    for conjunct in residuals:
        if isinstance(conjunct, ex.BinOp) and conjunct.op in ("<", "<=", ">", ">="):
            left, right, op = conjunct.left, conjunct.right, conjunct.op
            if (isinstance(left, ex.BoundRef) and left.cid == range_cid
                    and is_bound(right)):
                tighten(op, right)
            elif (isinstance(right, ex.BoundRef) and right.cid == range_cid
                    and is_bound(left)):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                tighten(flipped, left)
        elif (isinstance(conjunct, ex.Between) and not conjunct.negated
                and isinstance(conjunct.operand, ex.BoundRef)
                and conjunct.operand.cid == range_cid
                and is_bound(conjunct.low)
                and is_bound(conjunct.high)):
            tighten(">=", conjunct.low)
            tighten("<=", conjunct.high)
    return (lo, hi), dynamic


# ---------------------------------------------------------------------------
# Fallback: lazy scans that never met metadata
# ---------------------------------------------------------------------------


def degrade_lazy_scans(node: LogicalNode) -> LogicalNode:
    """Replace remaining lazy LScans with full-repository LScanAll."""
    for name in ("child", "left", "right", "meta"):
        child = getattr(node, name, None)
        if isinstance(child, LogicalNode):
            setattr(node, name, degrade_lazy_scans(child))
    if isinstance(node, LScan) and node.is_lazy:
        binding = _binding_of(node)
        if binding is not None:
            return LScanAll(binding=binding, table_name=node.qualified_name,
                            output=node.output)
    _refresh_output(node)
    return node


def _refresh_output(node: LogicalNode) -> None:
    if isinstance(node, LJoin):
        node.output = node.left.output + node.right.output
    elif isinstance(node, (LFilter, LSort, LLimit)):
        node.output = node.child.output
    elif isinstance(node, LLazyFetch):
        node.output = node.meta.output + node.lazy_output


# ---------------------------------------------------------------------------
# Pass 4: column pruning
# ---------------------------------------------------------------------------


def prune_columns(node: LogicalNode, required: Optional[set[int]] = None
                  ) -> LogicalNode:
    if required is None:
        required = node.output_cids()

    if isinstance(node, LProject):
        keep = [i for i, col in enumerate(node.output) if col.cid in required]
        if keep and len(keep) < len(node.output):
            node.exprs = [node.exprs[i] for i in keep]
            node.output = [node.output[i] for i in keep]
        child_req: set[int] = set()
        for expr in node.exprs:
            child_req |= expr.referenced_cids()
        if not child_req and node.child.output:
            child_req = {node.child.output[0].cid}
        node.child = prune_columns(node.child, child_req)
        return node

    if isinstance(node, LFilter):
        node.child = prune_columns(
            node.child, required | node.predicate.referenced_cids()
        )
        node.output = node.child.output
        return node

    if isinstance(node, LSort):
        needed = set(required)
        for key, _asc in node.keys:
            needed |= key.referenced_cids()
        node.child = prune_columns(node.child, needed)
        node.output = node.child.output
        return node

    if isinstance(node, LLimit):
        node.child = prune_columns(node.child, required)
        node.output = node.child.output
        return node

    if isinstance(node, LDistinct):
        # DISTINCT depends on every one of its columns.
        node.child = prune_columns(node.child, node.child.output_cids())
        return node

    if isinstance(node, LAggregate):
        child_req: set[int] = set()
        for expr in node.group_exprs:
            child_req |= expr.referenced_cids()
        for agg in node.aggregates:
            if agg.arg is not None:
                child_req |= agg.arg.referenced_cids()
        if not child_req and node.child.output:
            child_req = {node.child.output[0].cid}
        node.child = prune_columns(node.child, child_req)
        return node

    if isinstance(node, LJoin):
        needed = set(required)
        needed |= set(node.left_keys) | set(node.right_keys)
        if node.residual is not None:
            needed |= node.residual.referenced_cids()
        left_req = needed & node.left.output_cids()
        right_req = needed & node.right.output_cids()
        node.left = prune_columns(node.left, left_req or
                                  ({node.left.output[0].cid}
                                   if node.left.output else set()))
        node.right = prune_columns(node.right, right_req or
                                   ({node.right.output[0].cid}
                                    if node.right.output else set()))
        node.output = node.left.output + node.right.output
        return node

    if isinstance(node, LLazyFetch):
        needed = set(required)
        for residual in node.residuals:
            needed |= residual.referenced_cids()
        meta_req = (needed & node.meta.output_cids()) | set(node.meta_key_cids)
        node.meta = prune_columns(node.meta, meta_req)
        lazy_needed = [
            col for col in node.lazy_output
            if col.cid in needed or col.name in node.binding.key_columns
        ]
        node.lazy_output = lazy_needed
        node.needed = [c.name for c in lazy_needed]
        node.output = node.meta.output + node.lazy_output
        return node

    if isinstance(node, LScan):
        kept = [c for c in node.output if c.cid in required]
        node.output = kept or node.output[:1]
        return node

    if isinstance(node, LScanAll):
        kept = [c for c in node.output if c.cid in required]
        node.output = kept or node.output[:1]
        return node

    for child_name in ("child", "left", "right", "meta"):
        child = getattr(node, child_name, None)
        if isinstance(child, LogicalNode):
            setattr(node, child_name, prune_columns(child))
    return node


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def optimize(node: LogicalNode, *, enable_lazy_rewrite: bool = True,
             enable_pruning: bool = True) -> LogicalNode:
    """Run all optimisation passes.

    ``enable_lazy_rewrite=False`` keeps lazy scans as full-repository
    extractions (the static-plan ablation from DESIGN.md §5);
    ``enable_pruning=False`` disables column pruning.
    """
    node = push_down_filters(node)
    if enable_lazy_rewrite:
        node = reorder_joins(node)
    node = degrade_lazy_scans(node)
    if enable_pruning:
        node = prune_columns(node)
    return node
