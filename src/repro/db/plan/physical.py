"""Physical operators: column-at-a-time execution with materialised
intermediates, mirroring MonetDB's execution model.

Every operator's :meth:`~PhysicalNode.execute` returns a fully
materialised :class:`Chunk`.  That choice is deliberate — the paper's lazy
loading is "simply caching the result of a view definition (i.e. some of
the intermediate results)" via the recycler, which requires materialised
intermediates to exist.

:class:`PLazyFetch` is the run-time rewriting operator of §3.1: executing
it runs the metadata sub-plan, asks the lazy binding to inject cache-fetch
or file-extract steps for exactly the qualifying files, then joins the
extracted rows back to the metadata.  Its injected steps are appended to
``ctx.trace`` so the demo can show "the files containing required actual
data" and "the plans generated on the fly".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.db import expr as ex
from repro.db.column import Column
from repro.db.plan import logical as lg
from repro.db.table import SystemTable
from repro.db.types import DataType
from repro.errors import ExecutionError
from repro.util.oplog import OperationLog

if TYPE_CHECKING:  # imported lazily at run time to avoid an import cycle
    from repro.db.exec.recycler import Recycler


@dataclass
class Chunk:
    """A materialised intermediate: columns keyed by plan cid."""

    columns: dict[int, Column]
    length: int

    @classmethod
    def empty(cls, schema: list[lg.OutCol]) -> "Chunk":
        return cls(
            columns={c.cid: Column.from_values(c.dtype, []) for c in schema},
            length=0,
        )

    def take(self, indices: np.ndarray) -> "Chunk":
        return Chunk(
            columns={cid: col.take(indices) for cid, col in self.columns.items()},
            length=len(indices),
        )

    def filter(self, mask: np.ndarray) -> "Chunk":
        kept = int(mask.sum())
        return Chunk(
            columns={cid: col.filter(mask) for cid, col in self.columns.items()},
            length=kept,
        )

    def memory_bytes(self) -> int:
        return sum(col.memory_bytes() for col in self.columns.values())


@dataclass
class ExecutionContext:
    """Shared run-time state for one query execution."""

    oplog: OperationLog
    recycler: Optional["Recycler"] = None
    trace: list[dict] = field(default_factory=list)
    rows_extracted: int = 0
    operators_run: int = 0
    # Disk-backed scan I/O: segment pages actually fetched from disk vs
    # pages whose columns the query never touched (lazy I/O savings).
    pages_read: int = 0
    pages_skipped: int = 0
    # Pages of *projected* columns skipped because a zone map proved no
    # row in them could satisfy a scan-level conjunct.
    pages_skipped_zone: int = 0
    # The rowpath reference interpreter turns this off so it stays an
    # honest row-at-a-time baseline (no zone maps, no recycler).
    zone_pruning: bool = True
    # Repository files this query's lazy fetches were derived from
    # (uri -> (repository, mtime_ns)); recycler admissions pin them so a
    # later file change can never be served from a cached intermediate.
    file_deps: dict = field(default_factory=dict)
    # Operator-level profiling (EXPLAIN ANALYZE / span tracing): a
    # repro.obs.tracing.QueryProfile, or None for unprofiled execution —
    # the default keeps the hot path identical to before.
    profile: Optional[object] = None


DEFAULT_BATCH_ROWS = 4096
"""Row granularity of streamed execution (cursor fetch path)."""


def iter_chunk_slices(chunk: Chunk, batch_rows: int):
    """Split one materialised chunk into row-sliced batches (views)."""
    if chunk.length <= batch_rows:
        if chunk.length:
            yield chunk
        return
    for start in range(0, chunk.length, batch_rows):
        stop = min(start + batch_rows, chunk.length)
        yield Chunk(
            columns={cid: col.slice(start, stop)
                     for cid, col in chunk.columns.items()},
            length=stop - start,
        )


def _distinct_key(value):
    """Hashable per-row key matching factorize semantics (NaNs collapse)."""
    if isinstance(value, float) and value != value:
        return ("<nan>",)
    return value


def _concat_chunks(chunks: list[Chunk], schema: list[lg.OutCol]) -> Chunk:
    """Reassemble streamed batches into one chunk (pipeline breakers)."""
    chunks = [c for c in chunks if c.length]
    if not chunks:
        return Chunk.empty(schema)
    if len(chunks) == 1:
        return chunks[0]
    cids = list(chunks[0].columns)
    return Chunk(
        columns={cid: Column.concat([c.columns[cid] for c in chunks])
                 for cid in cids},
        length=sum(c.length for c in chunks),
    )


class PhysicalNode:
    """Base class for physical operators."""

    def __init__(self, schema: list[lg.OutCol]) -> None:
        self.schema = schema
        # Recyclable nodes carry their *logical* source; the signature is
        # rendered from it per execution (not baked at build time) so the
        # table versions and binding cache epochs it embeds are always
        # current — plans live across many executions in the plan cache.
        self.signature_source: Optional[lg.LogicalNode] = None

    @property
    def signature(self) -> Optional[str]:
        if self.signature_source is None:
            return None
        from repro.db.exec.recycler import signature_of

        return signature_of(self.signature_source)

    def children(self) -> list["PhysicalNode"]:
        return []

    def describe(self) -> str:
        raise NotImplementedError

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        """Yield the operator's output in row batches.

        The default materialises (via :meth:`execute`, so recycler hits
        and admissions still apply) and slices the result.  Streamable
        operators — scans, filters, projections, limits — override this
        to pull row batches through without materialising the whole
        output first, which lets a cursor consume the head of a large
        result while the tail has not been produced, and lets LIMIT stop
        pulling (and thus stop extracting) early.
        """
        yield from iter_chunk_slices(self.execute(ctx), batch_rows)

    def _recycler_lookup(self, ctx: ExecutionContext,
                         signature: Optional[str]) -> Optional[Chunk]:
        if signature is None:
            return None
        cached = ctx.recycler.lookup_validated(signature)
        if cached is None:
            return None
        columns, length, depends = cached
        # Propagate the hit's file dependencies: an enclosing
        # recyclable node must pin them too, or a later admit
        # above this hit would lose the staleness anchor.
        ctx.file_deps.update(depends)
        ctx.trace.append(
            {"op": "recycler_hit", "node": type(self).__name__,
             "signature": signature[:60]}
        )
        # Cached results are positional; re-key to this plan's cids.
        return Chunk(
            columns={c.cid: columns[i] for i, c in enumerate(self.schema)},
            length=length,
        )

    def _recycler_admit(self, ctx: ExecutionContext,
                        signature: Optional[str], chunk: Chunk) -> None:
        if signature is None:
            return
        ctx.recycler.admit(
            signature,
            [chunk.columns[c.cid] for c in self.schema],
            chunk.length,
            depends=dict(ctx.file_deps) if ctx.file_deps else None,
        )

    def execute(self, ctx: ExecutionContext) -> Chunk:
        if ctx.profile is not None:
            return self._execute_profiled(ctx)
        ctx.operators_run += 1
        signature = self.signature if ctx.recycler is not None else None
        cached = self._recycler_lookup(ctx, signature)
        if cached is not None:
            return cached
        chunk = self._run(ctx)
        self._recycler_admit(ctx, signature, chunk)
        return chunk

    def _execute_profiled(self, ctx: ExecutionContext) -> Chunk:
        """:meth:`execute` with an OpFrame recording time/rows/pages.

        Frames nest through the profile's stack, so recursive child
        ``execute`` calls land as child frames; the trace window
        [trace_begin, trace_end) later attributes extraction events to
        the operator that caused them.
        """
        profile = ctx.profile
        frame = profile.enter(self)
        pages_before = ctx.pages_read
        trace_begin = len(ctx.trace)
        recycled = False
        rows_out = 0
        started = time.perf_counter()
        try:
            ctx.operators_run += 1
            signature = self.signature if ctx.recycler is not None else None
            chunk = self._recycler_lookup(ctx, signature)
            if chunk is not None:
                recycled = True
            else:
                chunk = self._run(ctx)
                self._recycler_admit(ctx, signature, chunk)
            rows_out = chunk.length
            return chunk
        finally:
            profile.exit(
                frame,
                elapsed_s=time.perf_counter() - started,
                rows_out=rows_out,
                pages_read=ctx.pages_read - pages_before,
                trace_begin=trace_begin,
                trace_end=len(ctx.trace),
                recycled=recycled,
            )

    def _run(self, ctx: ExecutionContext) -> Chunk:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Join machinery (shared by PJoin and PLazyFetch)
# ---------------------------------------------------------------------------


_CODE_BOUND_LIMIT = 1 << 62
"""Combined-code headroom: densify before the bound product can wrap."""


def _densify_codes(codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Re-rank sparse codes densely (order-preserving; -1 stays -1).

    factorize() may return sparse range-bounds for integer columns;
    chaining several wide-range key columns could overflow int64, so the
    combiners compress the running codes before that can happen.
    """
    uniques, inverse = np.unique(codes, return_inverse=True)
    inverse = inverse.astype(np.int64)
    if uniques.size and uniques[0] == -1:
        # -1 sorts first: shift it back out of the dense code space.
        inverse -= 1
        return inverse, int(uniques.size) - 1
    return inverse, int(uniques.size)


def _combined_codes(columns: list[Column]) -> np.ndarray:
    """Factorize multi-column grouping keys into one int64 code.

    Unlike the join-side combiners, NULL here is an ordinary key value:
    per column it maps to code 0 (every non-null code shifts up by one),
    so ``(NULL, 1)`` and ``(NULL, 2)`` stay distinct groups and NULL
    sorts first within each key column — SQL GROUP BY/DISTINCT treat
    NULLs as equal to each other, not as match-nothing join keys.
    """
    if not columns:
        raise ExecutionError("grouping requires at least one key column")
    combined: Optional[np.ndarray] = None
    bound = 1  # max value currently representable in `combined`
    for col in columns:
        codes, count = col.factorize()
        if combined is None:
            combined = codes.astype(np.int64) + 1
            bound = count + 1
        else:
            if bound * (count + 2) >= _CODE_BOUND_LIMIT:
                combined, bound = _densify_codes(combined)
            combined = combined * (count + 2) + (codes + 1)
            bound = bound * (count + 2) + count + 1
    assert combined is not None
    return combined


def _pair_codes(left: Column, right: Column
                ) -> tuple[np.ndarray, np.ndarray, int]:
    """Shared-space codes for one join key column pair.

    Null-free VARCHAR pairs merge the two sides' (cached) dictionaries
    and remap codes with one vectorised fancy-index each — the wide lazy
    side never gets re-factorized per query.  Everything else falls back
    to concat-and-factorize.
    """
    if (left.dtype == DataType.VARCHAR and left.valid is None
            and right.valid is None):
        left_codes, left_uniques = left.dictionary()
        right_codes, right_uniques = right.dictionary()
        if left_uniques == right_uniques:
            return left_codes, right_codes, len(left_uniques)
        union = sorted(set(left_uniques) | set(right_uniques))
        position = {value: i for i, value in enumerate(union)}
        left_map = np.fromiter((position[v] for v in left_uniques),
                               dtype=np.int64, count=len(left_uniques))
        right_map = np.fromiter((position[v] for v in right_uniques),
                                dtype=np.int64, count=len(right_uniques))
        return left_map[left_codes], right_map[right_codes], len(union)
    merged = Column.concat([left, right])
    codes, count = merged.factorize()
    split = len(left)
    return codes[:split], codes[split:], count


def _factorize_pair(left: list[Column], right: list[Column]
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Factorize left/right key sets in a shared dictionary space."""
    if not left:
        raise ExecutionError("join requires at least one key column")
    combined_l: Optional[np.ndarray] = None
    combined_r: Optional[np.ndarray] = None
    bound = 1
    for l_col, r_col in zip(left, right):
        lc, rc, count = _pair_codes(l_col, r_col)
        if combined_l is None:
            combined_l = lc.copy()
            combined_r = rc.copy()
            bound = count
        else:
            if bound * (count + 1) >= _CODE_BOUND_LIMIT:
                # Densify both sides in one shared code space.
                merged, bound = _densify_codes(
                    np.concatenate([combined_l, combined_r]))
                split = len(combined_l)
                combined_l, combined_r = merged[:split], merged[split:]
            null_l = (combined_l < 0) | (lc < 0)
            null_r = (combined_r < 0) | (rc < 0)
            combined_l = combined_l * (count + 1) + lc
            combined_r = combined_r * (count + 1) + rc
            combined_l[null_l] = -1
            combined_r[null_r] = -1
            bound = bound * (count + 1) + count
    assert combined_l is not None and combined_r is not None
    return combined_l, combined_r


def join_indices(left_keys: list[Column], right_keys: list[Column]
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All matching row pairs for an equi join.

    Returns ``(left_idx, right_idx, left_match_counts)``; NULL keys never
    match.  Vectorised: sort right codes once, binary-search the left side,
    then expand ranges without Python loops.
    """
    left_codes, right_codes = _factorize_pair(left_keys, right_keys)
    order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[order]
    lo = np.searchsorted(sorted_right, left_codes, side="left")
    hi = np.searchsorted(sorted_right, left_codes, side="right")
    counts = hi - lo
    # NULL keys never match: -1 left codes are masked here, and -1 right
    # codes sort before every valid code so valid probes never reach them.
    counts[left_codes < 0] = 0
    lo[left_codes < 0] = 0
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_codes)), counts)
    if total:
        starts = np.repeat(np.cumsum(counts) - counts, counts)
        offsets = np.arange(total) - starts
        right_idx = order[np.repeat(lo, counts) + offsets]
    else:
        right_idx = np.zeros(0, dtype=np.int64)
    return left_idx, right_idx, counts


def _collect_file_deps(ctx: ExecutionContext, trace_start: int,
                       binding) -> None:
    """Record which repository files (at which mtime) a lazy fetch used.

    The binding's trace entries carry ``file``/``mtime_ns`` for every
    record served from cache, extracted here, or shared from another
    session's flight; recycler admissions pin these so cached
    intermediates can never outlive a file change.
    """
    repo = getattr(binding, "repo", None)
    if repo is None:
        return
    for entry in ctx.trace[trace_start:]:
        uri = entry.get("file")
        mtime_ns = entry.get("mtime_ns")
        if uri is not None and mtime_ns is not None:
            ctx.file_deps[uri] = (repo, mtime_ns)


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


class PTableScan(PhysicalNode):
    """Scan a base table, materialising only the pruned column set."""

    def __init__(self, node: lg.LScan) -> None:
        super().__init__(node.output)
        self.table = node.table
        self.qualified_name = node.qualified_name

    def describe(self) -> str:
        cols = ", ".join(c.name for c in self.schema)
        return f"TableScan {self.qualified_name} [{cols}]"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        columns = {c.cid: self.table.column(c.name) for c in self.schema}
        ctx.oplog.record("scan", f"scan {self.qualified_name}",
                         rows=self.table.row_count,
                         columns=len(self.schema))
        return Chunk(columns=columns, length=self.table.row_count)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # Stream row slices: downstream streamable operators (and the
        # cursor) see the first rows before the scan's full output ever
        # exists as one materialised chunk.
        ctx.operators_run += 1
        columns = {c.cid: self.table.column(c.name) for c in self.schema}
        total = self.table.row_count
        streamed = 0
        try:
            for start in range(0, total, batch_rows):
                stop = min(start + batch_rows, total)
                yield Chunk(
                    columns={cid: col.slice(start, stop)
                             for cid, col in columns.items()},
                    length=stop - start,
                )
                streamed = stop
        finally:
            # Recorded on completion (or abandonment, e.g. a satisfied
            # LIMIT) so the oplog reflects rows actually streamed.
            ctx.oplog.record(
                "scan", f"scan {self.qualified_name} (streamed)",
                rows=streamed, of=total, columns=len(self.schema),
            )


class PSystemScan(PhysicalNode):
    """Scan a :class:`~repro.db.table.SystemTable` provider snapshot.

    The provider is sampled exactly once per execution (materialised or
    streamed), so every column — and every batch of a streamed scan —
    describes one consistent instant of runtime state, even while other
    sessions keep appending journal entries or bumping counters.
    """

    def __init__(self, node: lg.LScan) -> None:
        super().__init__(node.output)
        self.table: SystemTable = node.table
        self.qualified_name = node.qualified_name

    def describe(self) -> str:
        cols = ", ".join(c.name for c in self.schema)
        return f"SystemScan {self.qualified_name} [{cols}]"

    def _snapshot(self, ctx: ExecutionContext) -> Chunk:
        by_name, length = self.table.snapshot_columns()
        ctx.oplog.record("scan", f"scan {self.qualified_name} (system)",
                         rows=length, columns=len(self.schema))
        return Chunk(
            columns={c.cid: by_name[c.name] for c in self.schema},
            length=length,
        )

    def _run(self, ctx: ExecutionContext) -> Chunk:
        return self._snapshot(ctx)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        ctx.operators_run += 1
        chunk = self._snapshot(ctx)
        yield from iter_chunk_slices(chunk, batch_rows)


# -- zone-map page pruning ---------------------------------------------------

_ZONE_DTYPES = (DataType.BIGINT, DataType.DOUBLE, DataType.TIMESTAMP)

# Normalising `constant <cmp> column` to `column <cmp'> constant`.
_PRUNE_FLIP = {"=": "=", "!=": "!=", "<>": "<>",
               "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _prune_constant(node: ex.Expr) -> bool:
    if isinstance(node, (ex.Literal, ex.Param)):
        return True
    # Negative literals parse as unary minus over a literal.
    return (isinstance(node, ex.UnOp) and node.op == "-"
            and isinstance(node.operand, ex.Literal))


def prunable_conjuncts(predicate: ex.Expr,
                       schema: list[lg.OutCol]) -> list[tuple]:
    """``(col, op, value_expr)`` triples a zone map can evaluate.

    Only top-level AND conjuncts of the shape ``column <cmp> constant``
    (plus BETWEEN over constants) qualify, and only for numeric columns
    of the scan.  The filter above keeps the *full* predicate, so this
    extraction may be as partial as it likes — pruning must merely be
    sound, never complete.
    """
    by_cid = {c.cid: c for c in schema if c.dtype in _ZONE_DTYPES}
    out: list[tuple] = []
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.BinOp) and node.op == "and":
            stack.extend((node.left, node.right))
            continue
        if (isinstance(node, ex.Between) and not node.negated
                and isinstance(node.operand, ex.BoundRef)
                and node.operand.cid in by_cid):
            for op, bound in ((">=", node.low), ("<=", node.high)):
                if _prune_constant(bound):
                    out.append((by_cid[node.operand.cid], op, bound))
            continue
        if isinstance(node, ex.BinOp) and node.op in _PRUNE_FLIP:
            left, right, op = node.left, node.right, node.op
            if _prune_constant(left) and isinstance(right, ex.BoundRef):
                left, right, op = right, left, _PRUNE_FLIP[op]
            if (isinstance(left, ex.BoundRef) and left.cid in by_cid
                    and _prune_constant(right)):
                out.append((by_cid[left.cid], op, right))
    return out


def _zone_dead(zone: "tuple | None", op: str, value) -> bool:
    """True when no row of a page with this zone can satisfy the conjunct.

    NULL/NaN constants fail (or yield NULL for) every comparison, so
    they condemn every page; a ``None`` zone means the page holds no
    valid comparable value, so every row fails the conjunct too.
    """
    if value is None or (isinstance(value, float) and value != value):
        return True
    if zone is None:
        return True
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False  # shouldn't happen (dtype-gated), stay sound
    lo, hi = zone
    if op == "=":
        return value < lo or value > hi
    if op in ("!=", "<>"):
        return lo == hi == value
    if op == "<":
        return lo >= value
    if op == "<=":
        return lo > value
    if op == ">":
        return hi <= value
    if op == ">=":
        return hi < value
    return False


class PDiskScan(PhysicalNode):
    """Scan a disk-backed table, faulting in only the needed columns.

    This is lazy ETL extended into lazy I/O: the table's rows live in a
    compressed segment file, and only the pages of the columns this scan
    projects are read (through the store's buffer pool).  Pages of
    untouched columns never leave disk; the counters surface exactly that
    in EXPLAIN and the query report.

    When the filter directly above holds ``column <cmp> constant``
    conjuncts over numeric columns, the planner pushes them down here as
    ``prune_conjuncts``: pages whose footer zone map proves no row can
    qualify are skipped before decode.  Pruning is optimisation-only —
    the filter retains the full predicate, so an over-conservative (or
    absent) zone map costs nothing but I/O.
    """

    def __init__(self, node: lg.LScan) -> None:
        super().__init__(node.output)
        self.table = node.table
        self.qualified_name = node.qualified_name
        # (col, op, value_expr) triples installed by build_physical when
        # a filter sits directly above this scan.
        self.prune_conjuncts: list[tuple] = []

    def describe(self) -> str:
        cols = ", ".join(c.name for c in self.schema)
        backing = self.table.disk_backing
        if backing is not None:
            needed = sum(backing.pages_of(c.name) for c in self.schema)
            total = backing.total_pages()
            pages = f" pages={needed}/{total} (skip {total - needed})"
            pages += self._describe_zones(backing)
        else:  # the table was materialised between compile and describe
            pages = ""
        return f"DiskScan {self.qualified_name} [{cols}]{pages}"

    def _describe_zones(self, backing) -> str:
        if not self.prune_conjuncts:
            return ""
        conjuncts = ", ".join(
            f"{col.name} {op} "
            + (repr(value.value) if isinstance(value, ex.Literal) else "?")
            for col, op, value in self.prune_conjuncts
        )
        try:  # unbound Params make the dead-page count unknowable here
            dead = self._dead_pages(backing)
            n_pages = len(backing.page_row_counts(self.schema[0].name))
            count = f" skip {len(dead)}/{n_pages} pages/col"
        except Exception:
            count = ""
        return f" zone-prune[{conjuncts}]{count}"

    def _dead_pages(self, backing) -> set[int]:
        """Page indices no projected row can come from, per zone maps."""
        dead: set[int] = set()
        for col, op, value_expr in self.prune_conjuncts:
            zones = backing.zone_map(col.name)
            if zones is None:
                continue
            value = value_expr.eval({}, 1).value_at(0)
            for page, zone in enumerate(zones):
                if _zone_dead(zone, op, value):
                    dead.add(page)
        return dead

    def _page_offsets(self, backing) -> "tuple[list[int], list[int]]":
        """(row counts, row start offsets) of this table's page grid.

        Table segments are uniform (every column paginated identically),
        so any projected column describes the shared layout.
        """
        counts = backing.page_row_counts(self.schema[0].name)
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        return counts, offsets

    def _run(self, ctx: ExecutionContext) -> Chunk:
        backing = self.table.disk_backing
        if backing is None:
            # Mutated since planning: fall back to the resident columns.
            columns = {c.cid: self.table.column(c.name) for c in self.schema}
            return Chunk(columns=columns, length=self.table.row_count)
        dead = (self._dead_pages(backing)
                if ctx.zone_pruning and self.prune_conjuncts and self.schema
                else set())
        if dead:
            return self._run_pruned(ctx, backing, dead)
        pool_stats = backing.store.pool.stats
        reads_before = pool_stats.disk_reads
        columns: dict[int, Column] = {}
        needed_pages = 0
        for c in self.schema:
            needed_pages += backing.pages_of(c.name)
            columns[c.cid] = self.table.column(c.name)
        pages_read = pool_stats.disk_reads - reads_before
        pages_skipped = backing.total_pages() - needed_pages
        ctx.pages_read += pages_read
        ctx.pages_skipped += pages_skipped
        ctx.trace.append({
            "op": "disk_scan",
            "table": self.qualified_name,
            "columns": [c.name for c in self.schema],
            "pages_read": pages_read,
            "pages_skipped": pages_skipped,
        })
        ctx.oplog.record(
            "scan", f"disk scan {self.qualified_name}",
            rows=backing.row_count, columns=len(self.schema),
            pages_read=pages_read, pages_skipped=pages_skipped,
        )
        return Chunk(columns=columns, length=backing.row_count)

    def _run_pruned(self, ctx: ExecutionContext, backing,
                    dead: set[int]) -> Chunk:
        """Read only pages the zone maps could not condemn.

        Bypasses the table's column-fault cache on purpose: a partial
        column must never become the table's resident copy.  Columns
        already resident are sliced to the same page subset so rows stay
        aligned.
        """
        from repro.storage.segment import IOCounter

        counts, offsets = self._page_offsets(backing)
        keep = [i for i in range(len(counts)) if i not in dead]
        io = IOCounter()
        columns: dict[int, Column] = {}
        zone_skipped = 0
        for c in self.schema:
            if self.table.is_column_resident(c.name):
                full = self.table.column(c.name)
                parts = [full.slice(offsets[i], offsets[i + 1]) for i in keep]
                columns[c.cid] = (Column.concat(parts) if len(parts) > 1
                                  else parts[0] if parts
                                  else full.slice(0, 0))
            else:
                columns[c.cid] = backing.load_column_pages(c.name, keep, io)
                zone_skipped += len(dead)
        length = sum(counts[i] for i in keep)
        pages_skipped = backing.total_pages() - sum(
            backing.pages_of(c.name) for c in self.schema)
        ctx.pages_read += io.disk_reads
        ctx.pages_skipped += pages_skipped
        ctx.pages_skipped_zone += zone_skipped
        ctx.trace.append({
            "op": "disk_scan",
            "table": self.qualified_name,
            "columns": [c.name for c in self.schema],
            "pages_read": io.disk_reads,
            "pages_skipped": pages_skipped,
            "pages_skipped_zone": zone_skipped,
            "zone_dead_pages": len(dead),
        })
        ctx.oplog.record(
            "scan", f"disk scan {self.qualified_name} (zone-pruned)",
            rows=length, of=backing.row_count, columns=len(self.schema),
            pages_read=io.disk_reads, pages_skipped=pages_skipped,
            pages_skipped_zone=zone_skipped,
        )
        return Chunk(columns=columns, length=length)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        backing = self.table.disk_backing
        if backing is None or not self.schema:
            yield from super().execute_batches(ctx, batch_rows)
            return
        ctx.operators_run += 1
        from repro.storage.segment import IOCounter

        dead = (self._dead_pages(backing)
                if ctx.zone_pruning and self.prune_conjuncts else set())
        counts, offsets = self._page_offsets(backing)
        resident = {c.cid: self.table.column(c.name) for c in self.schema
                    if self.table.is_column_resident(c.name)}
        io = IOCounter()
        streamed = 0
        zone_skipped = 0
        try:
            for page in range(len(counts)):
                if page in dead:
                    zone_skipped += len(self.schema) - len(resident)
                    continue
                start, stop = offsets[page], offsets[page + 1]
                cols = {
                    c.cid: (resident[c.cid].slice(start, stop)
                            if c.cid in resident
                            else backing.load_column_pages(c.name, [page], io))
                    for c in self.schema
                }
                chunk = Chunk(columns=cols, length=stop - start)
                streamed += chunk.length
                yield from iter_chunk_slices(chunk, batch_rows)
        finally:
            pages_skipped = backing.total_pages() - sum(
                backing.pages_of(c.name) for c in self.schema)
            ctx.pages_read += io.disk_reads
            ctx.pages_skipped += pages_skipped
            ctx.pages_skipped_zone += zone_skipped
            ctx.trace.append({
                "op": "disk_scan",
                "table": self.qualified_name,
                "columns": [c.name for c in self.schema],
                "pages_read": io.disk_reads,
                "pages_skipped": pages_skipped,
                "pages_skipped_zone": zone_skipped,
                "zone_dead_pages": len(dead),
            })
            ctx.oplog.record(
                "scan", f"disk scan {self.qualified_name} (streamed)",
                rows=streamed, of=backing.row_count,
                columns=len(self.schema),
                pages_read=io.disk_reads, pages_skipped=pages_skipped,
                pages_skipped_zone=zone_skipped,
            )


class PScanAll(PhysicalNode):
    """Extract the entire repository for a lazy table (worst case / NoDB)."""

    def __init__(self, node: lg.LScanAll) -> None:
        super().__init__(node.output)
        self.binding = node.binding
        self.table_name = node.table_name

    def describe(self) -> str:
        cols = ", ".join(c.name for c in self.schema)
        return f"LazyScanAll {self.table_name} [{cols}] (full repository!)"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        started = time.perf_counter()
        trace_start = len(ctx.trace)
        named = self.binding.scan_all([c.name for c in self.schema], ctx.trace)
        elapsed = time.perf_counter() - started
        _collect_file_deps(ctx, trace_start, self.binding)
        length = len(next(iter(named.values()))) if named else 0
        ctx.rows_extracted += length
        ctx.oplog.record(
            "extract", f"full extraction of {self.table_name}",
            rows=length, seconds=round(elapsed, 4),
        )
        columns = {c.cid: named[c.name] for c in self.schema}
        return Chunk(columns=columns, length=length)


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class PFilter(PhysicalNode):
    def __init__(self, node: lg.LFilter, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child
        self.predicate = node.predicate

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter {self.predicate!r}"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        chunk = self.child.execute(ctx)
        if chunk.length == 0:
            return chunk
        mask = ex.predicate_mask(
            self.predicate.eval(chunk.columns, chunk.length)
        )
        return chunk.filter(mask)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        ctx.operators_run += 1
        for chunk in self.child.execute_batches(ctx, batch_rows):
            mask = ex.predicate_mask(
                self.predicate.eval(chunk.columns, chunk.length)
            )
            filtered = chunk.filter(mask)
            if filtered.length:
                yield filtered


class PProject(PhysicalNode):
    def __init__(self, node: lg.LProject, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child
        self.exprs = node.exprs

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        cols = ", ".join(c.name for c in self.schema)
        return f"Project [{cols}]"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        chunk = self.child.execute(ctx)
        columns = {}
        for out, expr in zip(self.schema, self.exprs):
            columns[out.cid] = expr.eval(chunk.columns, chunk.length)
        return Chunk(columns=columns, length=chunk.length)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        ctx.operators_run += 1
        for chunk in self.child.execute_batches(ctx, batch_rows):
            columns = {}
            for out, expr in zip(self.schema, self.exprs):
                columns[out.cid] = expr.eval(chunk.columns, chunk.length)
            yield Chunk(columns=columns, length=chunk.length)


class PSort(PhysicalNode):
    def __init__(self, node: lg.LSort, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child
        self.keys = node.keys

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        parts = [f"{k!r} {'ASC' if asc else 'DESC'}" for k, asc in self.keys]
        return f"Sort [{', '.join(parts)}]"

    def _sorted(self, chunk: Chunk) -> Chunk:
        if chunk.length <= 1:
            return chunk
        lexsort_keys: list[np.ndarray] = []
        for key_expr, ascending in self.keys:
            col = key_expr.eval(chunk.columns, chunk.length)
            if col.dtype == DataType.VARCHAR:
                values, _count = col.factorize()
                values = values.astype(np.float64)
            else:
                values = col.values.astype(np.float64)
            if not ascending:
                values = -values
            null_rank = (~col.validity()).astype(np.int8)  # NULLS LAST
            # Within one ORDER BY key the null rank dominates the value.
            lexsort_keys.append(null_rank)
            lexsort_keys.append(values)
        # np.lexsort sorts by the LAST key first; our list is primary-first
        # with (null_rank, values) pairs, so reverse it wholesale.
        order = np.lexsort(tuple(reversed(lexsort_keys)))
        return chunk.take(order)

    def _run(self, ctx: ExecutionContext) -> Chunk:
        return self._sorted(self.child.execute(ctx))

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # Sort is a pipeline breaker, but its *input* still streams: child
        # batches accumulate (the natural spill point), are sorted once,
        # and the output re-streams in batch_rows slices.
        ctx.operators_run += 1
        chunks = list(self.child.execute_batches(ctx, batch_rows))
        merged = _concat_chunks(chunks, self.child.schema)
        yield from iter_chunk_slices(self._sorted(merged), batch_rows)


class PLimit(PhysicalNode):
    def __init__(self, node: lg.LLimit, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child
        self.limit = node.limit
        self.offset = node.offset

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit {self.limit} OFFSET {self.offset}"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        chunk = self.child.execute(ctx)
        start = self.offset
        stop = chunk.length if self.limit is None else start + self.limit
        columns = {cid: col.slice(start, stop)
                   for cid, col in chunk.columns.items()}
        return Chunk(columns=columns, length=max(0, min(stop, chunk.length) - start))

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # Genuinely lazy LIMIT: stop pulling child batches (and whatever
        # work upstream would have done to produce them) once satisfied.
        ctx.operators_run += 1
        to_skip = self.offset
        remaining = self.limit  # None = unbounded
        if remaining is not None and remaining <= 0:
            # LIMIT 0 must not pull (and thus extract) a single child batch.
            return
        for chunk in self.child.execute_batches(ctx, batch_rows):
            if to_skip:
                if chunk.length <= to_skip:
                    to_skip -= chunk.length
                    continue
                chunk = Chunk(
                    columns={cid: col.slice(to_skip, chunk.length)
                             for cid, col in chunk.columns.items()},
                    length=chunk.length - to_skip,
                )
                to_skip = 0
            if remaining is not None and chunk.length > remaining:
                chunk = Chunk(
                    columns={cid: col.slice(0, remaining)
                             for cid, col in chunk.columns.items()},
                    length=remaining,
                )
            if chunk.length:
                yield chunk
            if remaining is not None:
                remaining -= chunk.length
                if remaining <= 0:
                    return


class PDistinct(PhysicalNode):
    def __init__(self, node: lg.LDistinct, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        chunk = self.child.execute(ctx)
        if chunk.length == 0:
            return chunk
        codes = _combined_codes([chunk.columns[c.cid] for c in self.schema])
        _uniques, first = np.unique(codes, return_index=True)
        return chunk.take(np.sort(first))

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # Streaming first-occurrence dedup: each batch is first collapsed
        # vectorised (codes are batch-local), then the handful of batch
        # survivors is checked against the distinct rows seen so far.
        # Emission order — first global occurrence — matches _run exactly.
        ctx.operators_run += 1
        seen: set = set()
        for chunk in self.child.execute_batches(ctx, batch_rows):
            if chunk.length == 0:
                continue
            cols = [chunk.columns[c.cid] for c in self.schema]
            codes = _combined_codes(cols)
            _uniques, first = np.unique(codes, return_index=True)
            local = chunk.take(np.sort(first))
            local_cols = [local.columns[c.cid] for c in self.schema]
            fresh = np.zeros(local.length, dtype=bool)
            for i in range(local.length):
                key = tuple(_distinct_key(col.value_at(i))
                            for col in local_cols)
                if key not in seen:
                    seen.add(key)
                    fresh[i] = True
            if fresh.all():
                yield local
            elif fresh.any():
                yield local.filter(fresh)


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


class PJoin(PhysicalNode):
    def __init__(self, node: lg.LJoin, left: PhysicalNode,
                 right: PhysicalNode) -> None:
        super().__init__(node.output)
        self.left = left
        self.right = right
        self.kind = node.kind
        self.left_keys = node.left_keys
        self.right_keys = node.right_keys
        self.residual = node.residual

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        if self.left_keys:
            keys = ", ".join(f"#{l}=#{r}" for l, r in
                             zip(self.left_keys, self.right_keys))
            base = f"HashJoin[{self.kind}] on {keys}"
        else:
            base = f"NestedJoin[{self.kind}]"
        if self.residual is not None:
            base += f" residual {self.residual!r}"
        return base

    def _run(self, ctx: ExecutionContext) -> Chunk:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        if self.left_keys:
            left_cols = [left.columns[cid] for cid in self.left_keys]
            right_cols = [right.columns[cid] for cid in self.right_keys]
            left_idx, right_idx, _counts = join_indices(left_cols, right_cols)
        else:
            # Cross product (kept small by the optimiser in practice).
            left_idx = np.repeat(np.arange(left.length), right.length)
            right_idx = np.tile(np.arange(right.length), left.length)

        if self.residual is not None and len(left_idx):
            frame = {}
            for cid, col in left.columns.items():
                frame[cid] = col.take(left_idx)
            for cid, col in right.columns.items():
                frame[cid] = col.take(right_idx)
            mask = ex.predicate_mask(
                self.residual.eval(frame, len(left_idx))
            )
            left_idx = left_idx[mask]
            right_idx = right_idx[mask]

        if self.kind == "left":
            matched = np.zeros(left.length, dtype=bool)
            if len(left_idx):
                matched[left_idx] = True
            missing = np.flatnonzero(~matched)
            pad = len(missing)
            left_idx = np.concatenate([left_idx, missing])
            columns: dict[int, Column] = {}
            for cid, col in left.columns.items():
                columns[cid] = col.take(left_idx)
            for cid, col in right.columns.items():
                taken = col.take(right_idx)
                padded = Column.concat([taken, Column.nulls(col.dtype, pad)])
                columns[cid] = padded
            return Chunk(columns=columns, length=len(left_idx))

        columns = {}
        for cid, col in left.columns.items():
            columns[cid] = col.take(left_idx)
        for cid, col in right.columns.items():
            columns[cid] = col.take(right_idx)
        return Chunk(columns=columns, length=len(left_idx))

    def _probe_batch(self, batch: Chunk, right: Chunk
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Match one left batch against the materialised build side."""
        if self.left_keys:
            left_cols = [batch.columns[cid] for cid in self.left_keys]
            right_cols = [right.columns[cid] for cid in self.right_keys]
            left_idx, right_idx, _counts = join_indices(left_cols, right_cols)
        else:
            left_idx = np.repeat(np.arange(batch.length), right.length)
            right_idx = np.tile(np.arange(right.length), batch.length)
        if self.residual is not None and len(left_idx):
            frame = {}
            for cid, col in batch.columns.items():
                frame[cid] = col.take(left_idx)
            for cid, col in right.columns.items():
                frame[cid] = col.take(right_idx)
            mask = ex.predicate_mask(
                self.residual.eval(frame, len(left_idx))
            )
            left_idx = left_idx[mask]
            right_idx = right_idx[mask]
        return left_idx, right_idx

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # Streamed hash join: materialise the (metadata-sized) build side
        # once, probe with each left batch as it arrives.  Inner/cross
        # matches flow straight through; a left join holds back only its
        # unmatched rows, emitting the NULL-padded tail last — the same
        # global row order _run produces.
        ctx.operators_run += 1
        right = self.right.execute(ctx)
        unmatched: list[Chunk] = []
        for batch in self.left.execute_batches(ctx, batch_rows):
            left_idx, right_idx = self._probe_batch(batch, right)
            if self.kind == "left":
                matched = np.zeros(batch.length, dtype=bool)
                if len(left_idx):
                    matched[left_idx] = True
                if not matched.all():
                    unmatched.append(batch.filter(~matched))
            if not len(left_idx):
                continue
            columns = {cid: col.take(left_idx)
                       for cid, col in batch.columns.items()}
            for cid, col in right.columns.items():
                columns[cid] = col.take(right_idx)
            yield from iter_chunk_slices(
                Chunk(columns=columns, length=len(left_idx)), batch_rows)
        if self.kind == "left" and unmatched:
            tail = _concat_chunks(unmatched, self.left.schema)
            columns = dict(tail.columns)
            for cid, col in right.columns.items():
                columns[cid] = Column.nulls(col.dtype, tail.length)
            yield from iter_chunk_slices(
                Chunk(columns=columns, length=tail.length), batch_rows)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


_MIN_SENTINELS = {
    DataType.BIGINT: np.iinfo(np.int64).max,
    DataType.TIMESTAMP: np.iinfo(np.int64).max,
    DataType.DOUBLE: np.inf,
    DataType.BOOLEAN: True,
}
_MAX_SENTINELS = {
    DataType.BIGINT: np.iinfo(np.int64).min,
    DataType.TIMESTAMP: np.iinfo(np.int64).min,
    DataType.DOUBLE: -np.inf,
    DataType.BOOLEAN: False,
}


class PAggregate(PhysicalNode):
    def __init__(self, node: lg.LAggregate, child: PhysicalNode) -> None:
        super().__init__(node.output)
        self.child = child
        self.group_exprs = node.group_exprs
        self.aggregates = node.aggregates
        self.group_cols = node.output[: len(node.group_exprs)]
        self.agg_cols = node.output[len(node.group_exprs):]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        groups = ", ".join(repr(g) for g in self.group_exprs) or "<global>"
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"Aggregate groups=[{groups}] aggs=[{aggs}]"

    def _run(self, ctx: ExecutionContext) -> Chunk:
        return self._aggregate_chunk(self.child.execute(ctx))

    def execute_batches(self, ctx: ExecutionContext,
                        batch_rows: int = DEFAULT_BATCH_ROWS):
        # The aggregate itself is a pipeline breaker, but its input
        # streams: child batches accumulate and the exact _run kernels
        # finalise once, so the streamed result is bit-identical to the
        # materialised one (float reductions are order-sensitive).
        # Recycler lookup/admit must still happen here — this operator is
        # a signature point for cross-query reuse.
        ctx.operators_run += 1
        signature = self.signature if ctx.recycler is not None else None
        cached = self._recycler_lookup(ctx, signature)
        if cached is not None:
            yield from iter_chunk_slices(cached, batch_rows)
            return
        chunks = list(self.child.execute_batches(ctx, batch_rows))
        result = self._aggregate_chunk(
            _concat_chunks(chunks, self.child.schema))
        self._recycler_admit(ctx, signature, result)
        yield from iter_chunk_slices(result, batch_rows)

    def _aggregate_chunk(self, chunk: Chunk) -> Chunk:
        length = chunk.length

        if not self.group_exprs and length == 0:
            # Global aggregate over empty input: one row, COUNT()=0, rest NULL.
            columns: dict[int, Column] = {}
            for out, agg in zip(self.agg_cols, self.aggregates):
                if agg.name == "count":
                    columns[out.cid] = Column.from_values(DataType.BIGINT, [0])
                else:
                    columns[out.cid] = Column.nulls(out.dtype, 1)
            return Chunk(columns=columns, length=1)

        if self.group_exprs:
            group_values = [g.eval(chunk.columns, length)
                            for g in self.group_exprs]
            codes = _combined_codes(group_values)
            uniques, first, inverse = np.unique(
                codes, return_index=True, return_inverse=True
            )
            n_groups = len(uniques)
            order = np.argsort(inverse, kind="stable")
            starts = np.searchsorted(inverse[order], np.arange(n_groups),
                                     side="left")
        else:
            # Global aggregate: one group containing every row, already
            # "sorted" — skip the argsort (hot in concurrent serving).
            group_values = []
            first = np.zeros(0, dtype=np.int64)
            inverse = np.zeros(length, dtype=np.int64)
            n_groups = 1
            order = np.arange(length, dtype=np.int64)
            starts = np.zeros(1, dtype=np.int64)

        columns = {}
        for out, group_col in zip(self.group_cols, group_values):
            columns[out.cid] = group_col.take(first)
        for out, agg in zip(self.agg_cols, self.aggregates):
            columns[out.cid] = self._compute_aggregate(
                agg, out.dtype, chunk, order, starts, inverse, n_groups, length
            )
        return Chunk(columns=columns, length=n_groups)

    def _compute_aggregate(self, agg: ex.AggCall, dtype: DataType, chunk: Chunk,
                           order: np.ndarray, starts: np.ndarray,
                           inverse: np.ndarray, n_groups: int,
                           length: int) -> Column:
        if agg.name == "count" and agg.arg is None:
            counts = np.bincount(inverse, minlength=n_groups).astype(np.int64)
            return Column(DataType.BIGINT, counts)

        assert agg.arg is not None
        col = agg.arg.eval(chunk.columns, length)
        valid = col.validity()

        if agg.distinct:
            value_codes, _n = col.factorize()
            pair = inverse * (np.int64(value_codes.max(initial=0)) + 2) + value_codes
            keep_mask = valid.copy()
            _uniq, keep_first = np.unique(
                np.where(keep_mask, pair, -1), return_index=True
            )
            sel = np.zeros(length, dtype=bool)
            sel[keep_first] = True
            sel &= keep_mask
            subset = np.flatnonzero(sel)
            col = col.take(subset)
            valid = col.validity()
            inverse = inverse[subset]
            length = len(subset)
            order = np.argsort(inverse, kind="stable")
            starts = np.searchsorted(inverse[order], np.arange(n_groups),
                                     side="left")

        ordered_valid = valid[order]
        counts_valid = np.add.reduceat(
            ordered_valid.astype(np.int64), starts
        ) if length else np.zeros(n_groups, dtype=np.int64)
        empty_groups = counts_valid == 0

        if agg.name == "count":
            return Column(DataType.BIGINT, counts_valid)

        if col.dtype == DataType.VARCHAR and agg.name in ("min", "max"):
            codes, n_values = col.factorize()
            sentinel = n_values if agg.name == "min" else -1
            work = np.where(valid, codes, sentinel)[order]
            reducer = np.minimum if agg.name == "min" else np.maximum
            best = reducer.reduceat(work, starts) if length else \
                np.full(n_groups, sentinel)
            uniques = np.unique(col.values.astype(str))
            values = np.empty(n_groups, dtype=object)
            for g in range(n_groups):
                code = int(best[g])
                values[g] = uniques[code] if 0 <= code < n_values else ""
            return Column(DataType.VARCHAR, values,
                          None if not empty_groups.any() else ~empty_groups)

        numeric = col.values.astype(np.float64)
        numeric = np.where(valid, numeric, 0.0)
        ordered = numeric[order]

        if agg.name in ("min", "max"):
            sentinels = _MIN_SENTINELS if agg.name == "min" else _MAX_SENTINELS
            work = np.where(valid, col.values.astype(np.float64),
                            float(sentinels[col.dtype]))[order]
            reducer = np.minimum if agg.name == "min" else np.maximum
            best = reducer.reduceat(work, starts) if length else \
                np.zeros(n_groups)
            result = Column.from_numpy(dtype, best,
                                       None if not empty_groups.any()
                                       else ~empty_groups)
            return result

        sums = np.add.reduceat(ordered, starts) if length else np.zeros(n_groups)
        if agg.name == "sum":
            return Column.from_numpy(
                dtype, sums, None if not empty_groups.any() else ~empty_groups
            )
        if agg.name == "avg":
            with np.errstate(invalid="ignore", divide="ignore"):
                means = sums / np.where(counts_valid == 0, 1, counts_valid)
            return Column.from_numpy(
                DataType.DOUBLE, means,
                None if not empty_groups.any() else ~empty_groups,
            )
        if agg.name == "stddev_samp":
            sq = np.add.reduceat(ordered * ordered, starts) if length else \
                np.zeros(n_groups)
            n = counts_valid.astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                variance = (sq - sums * sums / np.where(n == 0, 1, n)) / \
                    np.where(n <= 1, 1, n - 1)
                variance = np.maximum(variance, 0.0)
                result = np.sqrt(variance)
            bad = counts_valid <= 1
            return Column.from_numpy(DataType.DOUBLE, result,
                                     None if not bad.any() else ~bad)
        if agg.name == "median":
            ordered_vals = col.values.astype(np.float64)[order]
            ordered_ok = valid[order]
            medians = np.zeros(n_groups, dtype=np.float64)
            bounds = list(starts) + [length]
            for g in range(n_groups):
                seg = ordered_vals[bounds[g]:bounds[g + 1]]
                ok = ordered_ok[bounds[g]:bounds[g + 1]]
                seg = seg[ok]
                medians[g] = np.median(seg) if len(seg) else 0.0
            return Column.from_numpy(
                dtype, medians,
                None if not empty_groups.any() else ~empty_groups,
            )
        raise ExecutionError(f"unknown aggregate {agg.name}")


# ---------------------------------------------------------------------------
# The run-time rewriting operator (§3.1)
# ---------------------------------------------------------------------------


class PLazyFetch(PhysicalNode):
    def __init__(self, node: lg.LLazyFetch, meta: PhysicalNode) -> None:
        super().__init__(node.output)
        self.meta = meta
        self.node = node

    def children(self) -> list[PhysicalNode]:
        return [self.meta]

    def describe(self) -> str:
        lo, hi = self.node.time_bounds
        bounds = ""
        if lo is not None or hi is not None:
            bounds = f" time_bounds=[{lo}, {hi}]"
        res = f" residuals={len(self.node.residuals)}" if self.node.residuals else ""
        # Promotion state is live (rendered per EXPLAIN, not baked at
        # compile time): how many units would be served eagerly today.
        promoted = getattr(self.node.binding, "promoted", None)
        hot = (f" promoted_units={len(promoted)}"
               if promoted is not None and len(promoted) else "")
        return (
            f"LazyFetch {self.node.table_name} "
            f"keys={list(self.node.binding.key_columns)} "
            f"cols={self.node.needed}{bounds}{res}{hot} "
            "(run-time rewrite point)"
        )

    def _resolve_time_bounds(self) -> tuple[Optional[int], Optional[int]]:
        """Static bounds tightened by parameter-valued ones.

        Dynamic bounds come from prepared-statement placeholders on the
        range column; their values are read per execution (the matching
        predicates also remain in ``residuals``, so pruning here is an
        optimisation, never a semantic change).
        """
        node = self.node
        lo, hi = node.time_bounds
        for op, expr in node.dynamic_bounds:
            value = expr.eval({}, 1).value_at(0)
            if value is None:
                continue  # NULL bound prunes nothing; residuals decide
            value = int(value)
            if op in (">", ">="):
                lo = value if lo is None else max(lo, value)
            else:
                hi = value if hi is None else min(hi, value)
        return (lo, hi)

    def _run(self, ctx: ExecutionContext) -> Chunk:
        meta_chunk = self.meta.execute(ctx)
        node = self.node
        binding = node.binding
        key_names = list(binding.key_columns)

        if meta_chunk.length == 0:
            ctx.trace.append({"op": "rewrite", "table": node.table_name,
                              "files": 0, "note": "metadata selected nothing"})
            return Chunk.empty(self.schema)

        keys = {
            name: meta_chunk.columns[cid].values
            for name, cid in zip(key_names, node.meta_key_cids)
        }
        time_bounds = self._resolve_time_bounds()
        ctx.trace.append({
            "op": "rewrite",
            "table": node.table_name,
            "meta_rows": meta_chunk.length,
            "needed": list(node.needed),
            "time_bounds": time_bounds,
        })
        started = time.perf_counter()
        trace_start = len(ctx.trace)
        named = binding.fetch(keys, list(node.needed), time_bounds,
                              ctx.trace)
        elapsed = time.perf_counter() - started
        _collect_file_deps(ctx, trace_start, binding)
        lazy_len = len(next(iter(named.values()))) if named else 0
        ctx.rows_extracted += lazy_len
        ctx.oplog.record(
            "extract", f"lazy fetch from {node.table_name}",
            rows=lazy_len, seconds=round(elapsed, 4),
        )

        name_to_cid = {c.name: c.cid for c in node.lazy_output}
        lazy_frame = {name_to_cid[n]: col for n, col in named.items()
                      if n in name_to_cid}
        lazy_chunk = Chunk(columns=lazy_frame, length=lazy_len)

        # Record/value-level residual predicates (e.g. sample_time windows)
        # run right after extraction, before the join back to metadata.
        for residual in node.residuals:
            if lazy_chunk.length == 0:
                break
            mask = ex.predicate_mask(
                residual.eval(lazy_chunk.columns, lazy_chunk.length)
            )
            lazy_chunk = lazy_chunk.filter(mask)

        left_key_cols = [meta_chunk.columns[cid] for cid in node.meta_key_cids]
        right_key_cols = [lazy_chunk.columns[name_to_cid[n]] for n in key_names]
        left_idx, right_idx, _counts = join_indices(left_key_cols, right_key_cols)

        columns: dict[int, Column] = {}
        for cid, col in meta_chunk.columns.items():
            columns[cid] = col.take(left_idx)
        for cid, col in lazy_chunk.columns.items():
            columns[cid] = col.take(right_idx)
        return Chunk(columns=columns, length=len(left_idx))


# ---------------------------------------------------------------------------
# Physical plan construction
# ---------------------------------------------------------------------------


def build_physical(node: lg.LogicalNode,
                   recycler: Optional["Recycler"] = None) -> PhysicalNode:
    """Translate a logical plan 1:1 into physical operators.

    When a recycler is supplied, recyclable nodes (aggregates and lazy
    fetches — the expensive materialisation points) get a stable signature
    so their results can be reused across queries.  Signatures are
    rendered per execution (see :attr:`PhysicalNode.signature`), so
    fragments containing prepared-statement parameters embed the
    *currently bound values*: identical re-executions recycle, different
    bindings can never share an entry.
    """
    if isinstance(node, lg.LScan):
        if isinstance(node.table, SystemTable):
            return PSystemScan(node)
        if getattr(node.table, "disk_backing", None) is not None:
            return PDiskScan(node)
        return PTableScan(node)
    if isinstance(node, lg.LScanAll):
        return PScanAll(node)
    if isinstance(node, lg.LFilter):
        child = build_physical(node.child, recycler)
        if isinstance(child, PDiskScan):
            # Push zone-map prunable conjuncts into the scan.  The
            # filter keeps the full predicate: pruning stays
            # optimisation-only.
            child.prune_conjuncts = prunable_conjuncts(
                node.predicate, child.schema)
        return PFilter(node, child)
    if isinstance(node, lg.LProject):
        return PProject(node, build_physical(node.child, recycler))
    if isinstance(node, lg.LSort):
        return PSort(node, build_physical(node.child, recycler))
    if isinstance(node, lg.LLimit):
        return PLimit(node, build_physical(node.child, recycler))
    if isinstance(node, lg.LDistinct):
        return PDistinct(node, build_physical(node.child, recycler))
    if isinstance(node, lg.LJoin):
        return PJoin(node, build_physical(node.left, recycler),
                     build_physical(node.right, recycler))
    if isinstance(node, lg.LAggregate):
        physical = PAggregate(node, build_physical(node.child, recycler))
        if recycler is not None:
            physical.signature_source = node
        return physical
    if isinstance(node, lg.LLazyFetch):
        physical = PLazyFetch(node, build_physical(node.meta, recycler))
        if recycler is not None:
            physical.signature_source = node
        return physical
    raise ExecutionError(f"no physical operator for {type(node).__name__}")
