"""Plan rendering for EXPLAIN and the demo's plan-observation panels."""

from __future__ import annotations

from repro.db import expr as ex
from repro.db.plan import logical as lg
from repro.db.plan.physical import PhysicalNode


def render_logical(node: lg.LogicalNode, indent: int = 0) -> str:
    """Indented, one-node-per-line rendering of a logical plan."""
    pad = "  " * indent
    line = pad + _describe_logical(node)
    parts = [line]
    for child in node.children():
        parts.append(render_logical(child, indent + 1))
    return "\n".join(parts)


def _describe_logical(node: lg.LogicalNode) -> str:
    if isinstance(node, lg.LScan):
        cols = ", ".join(c.name for c in node.output)
        lazy = " LAZY" if node.is_lazy else ""
        return f"Scan {node.qualified_name}{lazy} [{cols}]"
    if isinstance(node, lg.LScanAll):
        cols = ", ".join(c.name for c in node.output)
        return f"ScanAll {node.table_name} [{cols}] (entire repository)"
    if isinstance(node, lg.LFilter):
        return f"Filter {node.predicate!r}"
    if isinstance(node, lg.LProject):
        cols = ", ".join(
            f"{c.name}={e!r}" for c, e in zip(node.output, node.exprs)
        )
        return f"Project [{cols}]"
    if isinstance(node, lg.LJoin):
        keys = ", ".join(
            f"#{l}=#{r}" for l, r in zip(node.left_keys, node.right_keys)
        )
        residual = f" residual={node.residual!r}" if node.residual else ""
        return f"Join[{node.kind}] keys=[{keys}]{residual}"
    if isinstance(node, lg.LAggregate):
        groups = ", ".join(repr(g) for g in node.group_exprs) or "<global>"
        aggs = ", ".join(repr(a) for a in node.aggregates)
        return f"Aggregate groups=[{groups}] aggs=[{aggs}]"
    if isinstance(node, lg.LSort):
        keys = ", ".join(
            f"{k!r} {'ASC' if asc else 'DESC'}" for k, asc in node.keys
        )
        return f"Sort [{keys}]"
    if isinstance(node, lg.LLimit):
        return f"Limit {node.limit} OFFSET {node.offset}"
    if isinstance(node, lg.LDistinct):
        return "Distinct"
    if isinstance(node, lg.LLazyFetch):
        lo, hi = node.time_bounds
        bounds = f" bounds=[{lo},{hi}]" if (lo is not None or hi is not None) else ""
        return (
            f"LazyFetch {node.table_name} need=[{', '.join(node.needed)}]"
            f"{bounds} residuals={len(node.residuals)}  <-- run-time rewrite"
        )
    return type(node).__name__


def render_physical(node: PhysicalNode, indent: int = 0) -> str:
    """Indented rendering of a physical plan."""
    pad = "  " * indent
    line = pad + node.describe()
    if node.signature is not None:
        line += "  [recyclable]"
    parts = [line]
    for child in node.children():
        parts.append(render_physical(child, indent + 1))
    return "\n".join(parts)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.3f}ms"


def render_analyzed(profile, trace: list[dict]) -> str:
    """Annotated plan tree for EXPLAIN ANALYZE.

    Rendered from the executed :class:`~repro.obs.tracing.QueryProfile`
    frame tree (not the static node tree): each line is one operator
    *invocation* carrying measured wall time (total and self), rows out
    and page I/O, with the run-time trace events it produced (extract,
    cache_fetch, promoted_fetch, ...) nested beneath it.
    """
    if profile is None or not profile.roots:
        return "(no operators executed)"
    lines: list[str] = []

    def walk(frame, indent: int) -> None:
        pad = "  " * indent
        stats = [f"time={_fmt_s(frame.total_s)}",
                 f"self={_fmt_s(frame.self_s)}",
                 f"rows={frame.rows_out}"]
        if frame.pages_read:
            stats.append(f"pages={frame.pages_read}")
        if frame.recycled:
            stats.append("recycled")
        lines.append(f"{pad}{frame.label}  (actual: {', '.join(stats)})")
        for index in frame.own_trace_indices():
            entry = trace[index]
            op = entry.get("op", "?")
            rest = ", ".join(f"{k}={v}" for k, v in entry.items()
                             if k not in ("op", "mtime_ns"))
            lines.append(f"{pad}  + {op:<14} {rest}")
        for child in frame.children:
            walk(child, indent + 1)

    for root in profile.roots:
        walk(root, 0)
    return "\n".join(lines)


def render_trace(trace: list[dict]) -> str:
    """Render the run-time rewrite trace (demo items 5-7).

    Each entry describes one operator injected while executing a lazy
    fetch: the rewrite itself, per-file cache hits, extractions, refreshes.
    """
    if not trace:
        return "(no run-time rewriting occurred)"
    lines = []
    for entry in trace:
        op = entry.get("op", "?")
        rest = ", ".join(f"{k}={v}" for k, v in entry.items() if k != "op")
        lines.append(f"  + {op:<14} {rest}")
    return "\n".join(lines)
