"""Catalog: schemas, tables, non-materialised views, lazy bindings.

Two catalog concepts carry the paper's design:

* **Views are never materialised** (§3.2 "lazy transformation"): a view
  stores its SELECT AST and is expanded inline by the binder, so the
  transformations it encodes run inside the query plan and benefit from
  query optimisation.
* **Lazy table bindings** (§3.1 "lazy extraction"): a base table may be
  *virtual*, backed by a :class:`LazyTableBinding` that the ETL layer
  registers.  The optimiser recognises such tables and plans run-time
  extraction instead of scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.db.column import Column
from repro.db.expr import ColumnRef, Star
from repro.db.sql import ast
from repro.db.table import SystemTable, Table, TableSchema
from repro.errors import BindError, CatalogError

DEFAULT_SCHEMA = "main"

SYSTEM_SCHEMA = "sys"
"""Reserved schema for virtual system tables (``sys.queries`` & co).

User DDL — CREATE/DROP TABLE/VIEW/SCHEMA, lazy binding — is rejected in
it, and registering a system table does *not* bump the catalog epoch:
system tables appear under every connection without invalidating a
single cached plan (their providers produce rows at scan time, so
cached plans always see current data anyway).
"""


@runtime_checkable
class LazyTableBinding(Protocol):
    """What the engine needs from a lazily-bound (virtual) table.

    Implementations live in :mod:`repro.etl.lazy`; the engine only relies
    on this protocol, keeping the DB substrate application-agnostic.
    """

    @property
    def key_columns(self) -> tuple[str, ...]:
        """Columns joining the lazy table to its metadata table."""
        ...

    @property
    def range_column(self) -> Optional[str]:
        """Column whose predicates can prune extraction (sample_time)."""
        ...

    @property
    def cache_epoch(self) -> int:
        """Monotone counter; bumps whenever cached extraction state changes."""
        ...

    def fetch(
        self,
        keys: dict[str, np.ndarray],
        needed: list[str],
        time_bounds: tuple[Optional[int], Optional[int]],
        trace: list[dict],
    ) -> dict[str, Column]:
        """Extract/transform/load the rows matching ``keys``.

        ``trace`` receives one entry per injected operator (cache hit,
        extraction, refresh) for plan introspection — demo items (5)-(7).
        """
        ...

    def scan_all(self, needed: list[str], trace: list[dict]) -> dict[str, Column]:
        """Worst case (§3.1): extract the entire repository."""
        ...


@dataclass
class View:
    """A non-materialised view."""

    name: str
    schema_name: str
    select: ast.SelectStmt
    sql_text: str
    # (inner_alias, inner_column) -> output column name.  Lets queries use
    # the paper's ``F.station`` syntax against the joined dataview.
    alias_map: dict[tuple[str, str], str] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.schema_name}.{self.name}"


@dataclass
class SchemaEntry:
    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    views: dict[str, View] = field(default_factory=dict)


class Catalog:
    """All schema objects of one database."""

    def __init__(self) -> None:
        self._schemas: dict[str, SchemaEntry] = {
            DEFAULT_SCHEMA: SchemaEntry(DEFAULT_SCHEMA)
        }
        self._bindings: dict[str, LazyTableBinding] = {}
        self._store = None  # TableStore set by attach()
        self._checkpointed_versions: dict[str, int] = {}
        # Schema epoch: bumped by every DDL-level change (create/drop of
        # schemas, tables and views, lazy (un)binding, store attachment).
        # Compiled plans are cached keyed by (SQL, epoch), so any change
        # that could alter name resolution or plan shape makes every
        # previously cached plan unreachable.
        self.epoch = 0

    def _bump_epoch(self) -> None:
        self.epoch += 1

    # -- schemas ---------------------------------------------------------------

    @staticmethod
    def _reject_system_schema(key: str, action: str) -> None:
        if key == SYSTEM_SCHEMA:
            raise CatalogError(
                f"schema {SYSTEM_SCHEMA!r} is reserved for system tables; "
                f"cannot {action}"
            )

    def create_schema(self, name: str, *, if_not_exists: bool = False) -> None:
        key = name.lower()
        self._reject_system_schema(key, "create it")
        if key in self._schemas:
            if if_not_exists:
                return
            raise CatalogError(f"schema {name!r} already exists")
        self._schemas[key] = SchemaEntry(key)
        self._bump_epoch()

    def drop_schema(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key == DEFAULT_SCHEMA:
            raise CatalogError("cannot drop the default schema")
        self._reject_system_schema(key, "drop it")
        if key not in self._schemas:
            if if_exists:
                return
            raise CatalogError(f"unknown schema {name!r}")
        del self._schemas[key]
        self._bump_epoch()

    def schema_names(self) -> list[str]:
        return sorted(self._schemas)

    def _schema(self, name: str) -> SchemaEntry:
        try:
            return self._schemas[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown schema {name!r}") from None

    # -- tables -----------------------------------------------------------------

    @staticmethod
    def split_name(parts: tuple[str, ...]) -> tuple[str, str]:
        """Split a 1- or 2-part name into (schema, object)."""
        if len(parts) == 1:
            return DEFAULT_SCHEMA, parts[0].lower()
        if len(parts) == 2:
            return parts[0].lower(), parts[1].lower()
        raise CatalogError(f"name {'.'.join(parts)!r} has too many parts")

    def create_table(self, parts: tuple[str, ...], schema: TableSchema,
                     *, if_not_exists: bool = False) -> Table:
        schema_name, table_name = self.split_name(parts)
        self._reject_system_schema(schema_name, "create tables in it")
        entry = self._schema(schema_name)
        if table_name in entry.tables or table_name in entry.views:
            if if_not_exists and table_name in entry.tables:
                return entry.tables[table_name]
            raise CatalogError(
                f"object {schema_name}.{table_name} already exists"
            )
        table = Table(f"{schema_name}.{table_name}", schema)
        entry.tables[table_name] = table
        self._bump_epoch()
        return table

    def drop_table(self, parts: tuple[str, ...], *, if_exists: bool = False) -> None:
        schema_name, table_name = self.split_name(parts)
        self._reject_system_schema(schema_name, "drop tables in it")
        entry = self._schema(schema_name)
        if table_name not in entry.tables:
            if if_exists:
                return
            raise CatalogError(f"unknown table {schema_name}.{table_name}")
        del entry.tables[table_name]
        self._bindings.pop(f"{schema_name}.{table_name}", None)
        self._bump_epoch()

    def table(self, parts: tuple[str, ...]) -> Table:
        schema_name, table_name = self.split_name(parts)
        entry = self._schema(schema_name)
        try:
            return entry.tables[table_name]
        except KeyError:
            raise CatalogError(
                f"unknown table {schema_name}.{table_name}"
            ) from None

    def lookup(self, parts: tuple[str, ...]) -> Table | View:
        """Resolve a name to a table or view."""
        schema_name, obj_name = self.split_name(parts)
        entry = self._schema(schema_name)
        if obj_name in entry.tables:
            return entry.tables[obj_name]
        if obj_name in entry.views:
            return entry.views[obj_name]
        raise BindError(f"unknown table or view {schema_name}.{obj_name}")

    def tables(self) -> list[Table]:
        out: list[Table] = []
        for entry in self._schemas.values():
            out.extend(entry.tables.values())
        return out

    # -- system tables -----------------------------------------------------------

    def register_system_table(self, table: SystemTable) -> SystemTable:
        """Mount a virtual table under the reserved ``sys`` schema.

        Epoch-stable by design: registration never invalidates cached
        plans, and re-registering a name simply replaces the provider
        (warehouse wiring is idempotent).  ``table.name`` must be
        ``sys.<name>``.
        """
        schema_name, table_name = self.split_name(
            tuple(table.name.split("."))
        )
        if schema_name != SYSTEM_SCHEMA:
            raise CatalogError(
                f"system table {table.name!r} must live in the "
                f"{SYSTEM_SCHEMA!r} schema"
            )
        entry = self._schemas.get(SYSTEM_SCHEMA)
        if entry is None:
            entry = self._schemas[SYSTEM_SCHEMA] = SchemaEntry(SYSTEM_SCHEMA)
        entry.tables[table_name] = table
        return table

    def system_tables(self) -> dict[str, SystemTable]:
        """Registered system tables by bare name (``queries``, ...)."""
        entry = self._schemas.get(SYSTEM_SCHEMA)
        if entry is None:
            return {}
        return {name: table for name, table in entry.tables.items()
                if isinstance(table, SystemTable)}

    # -- views -------------------------------------------------------------------

    def create_view(self, parts: tuple[str, ...], select: ast.SelectStmt,
                    sql_text: str) -> View:
        schema_name, view_name = self.split_name(parts)
        self._reject_system_schema(schema_name, "create views in it")
        entry = self._schema(schema_name)
        if view_name in entry.views or view_name in entry.tables:
            raise CatalogError(f"object {schema_name}.{view_name} already exists")
        view = View(
            name=view_name,
            schema_name=schema_name,
            select=select,
            sql_text=sql_text,
            alias_map=self._provenance(select),
        )
        entry.views[view_name] = view
        self._bump_epoch()
        return view

    def drop_view(self, parts: tuple[str, ...], *, if_exists: bool = False) -> None:
        schema_name, view_name = self.split_name(parts)
        entry = self._schema(schema_name)
        if view_name not in entry.views:
            if if_exists:
                return
            raise CatalogError(f"unknown view {schema_name}.{view_name}")
        del entry.views[view_name]
        self._bump_epoch()

    def _provenance(self, select: ast.SelectStmt) -> dict[tuple[str, str], str]:
        """Map the view's inner aliases to output names.

        For a view ``SELECT F.station, ... FROM files AS F, ...`` the pair
        ``('f', 'station')`` maps to output ``'station'``.  ``alias.*``
        items are expanded against the catalog.  Queries over the view may
        then reference ``F.station`` even though the view's output column
        is plainly named ``station`` — exactly how the paper's Figure-1
        queries address ``mseed.dataview``.
        """
        alias_tables: dict[str, Table] = {}
        for item in select.from_items:
            stack = [item]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.JoinRef):
                    stack.extend([node.left, node.right])
                elif isinstance(node, ast.TableRef):
                    alias = (node.alias or node.parts[-1]).lower()
                    try:
                        obj = self.lookup(node.parts)
                    except (BindError, CatalogError):
                        continue
                    if isinstance(obj, Table):
                        alias_tables[alias] = obj
        mapping: dict[tuple[str, str], str] = {}
        for item in select.items:
            expr = item.expr
            if isinstance(expr, Star):
                if expr.qualifier is None:
                    sources = alias_tables.items()
                else:
                    alias = expr.qualifier.lower()
                    sources = [(alias, alias_tables[alias])] \
                        if alias in alias_tables else []
                for alias, table in sources:
                    for spec in table.schema.columns:
                        mapping.setdefault((alias, spec.name), spec.name)
            elif isinstance(expr, ColumnRef) and len(expr.parts) == 2:
                alias, column = expr.parts[0].lower(), expr.parts[1].lower()
                out_name = (item.alias or column).lower()
                mapping.setdefault((alias, column), out_name)
        return mapping

    # -- lazy bindings --------------------------------------------------------------

    def bind_lazy(self, parts: tuple[str, ...], binding: LazyTableBinding) -> None:
        """Mark a table as lazily extracted (registered by the ETL layer)."""
        schema_name, table_name = self.split_name(parts)
        self._reject_system_schema(schema_name, "bind lazy tables in it")
        self._schema(schema_name)  # validate
        qualified = f"{schema_name}.{table_name}"
        table = self.table(parts)  # must exist
        self._bindings[qualified] = binding
        # The optimiser reads the binding straight off the table object.
        table.lazy_binding = binding  # type: ignore[attr-defined]
        self._bump_epoch()

    def unbind_lazy(self, parts: tuple[str, ...]) -> None:
        schema_name, table_name = self.split_name(parts)
        binding = self._bindings.pop(f"{schema_name}.{table_name}", None)
        if binding is not None:
            table = self.table(parts)
            if getattr(table, "lazy_binding", None) is binding:
                del table.lazy_binding  # type: ignore[attr-defined]
            self._bump_epoch()

    def lazy_binding(self, qualified_name: str) -> Optional[LazyTableBinding]:
        return self._bindings.get(qualified_name)

    def is_lazy(self, qualified_name: str) -> bool:
        return qualified_name in self._bindings

    # -- persistent storage -----------------------------------------------------

    @property
    def store(self):
        """The attached :class:`~repro.storage.store.TableStore`, if any."""
        return self._store

    def attach(self, storage, *,
               bufferpool_bytes: int = 64 * 1024 * 1024):
        """Attach a persistent table store and mount its tables.

        ``storage`` is a directory path (a :class:`TableStore` is opened
        there, created if absent) or an already-open store.  Each persisted
        table is mounted *disk-backed*: its schema enters the catalog but
        no column data is read — columns fault in lazily at scan time.  An
        existing *empty* catalog table with a matching schema is backed in
        place (the warm-start path, where DDL ran before ``attach``); an
        existing *non-empty* table keeps its resident rows — memory wins,
        and the next :meth:`checkpoint` overwrites the stored generation
        (the re-checkpoint path of an eagerly loaded warehouse).
        """
        from repro.storage.store import TableStore

        store = (storage if isinstance(storage, TableStore)
                 else TableStore(storage, bufferpool_bytes=bufferpool_bytes))
        if self._store is not None and self._store is not store:
            raise CatalogError("a table store is already attached")
        for qualified in store.table_names():
            schema_name, table_name = self.split_name(
                tuple(qualified.split("."))
            )
            self.create_schema(schema_name, if_not_exists=True)
            entry = self._schema(schema_name)
            stored_schema = store.schema_of(qualified)
            table = entry.tables.get(table_name)
            if table is None:
                table = Table(qualified, stored_schema)
                entry.tables[table_name] = table
            else:
                if table.disk_backing is not None:
                    continue  # already mounted (re-attach is idempotent)
                if table.row_count > 0:
                    continue  # resident data wins; checkpoint overwrites
                _check_schema_match(qualified, table.schema, stored_schema)
            table.attach_backing(store.backing_for(qualified))
        self._store = store
        self._bump_epoch()
        return store

    def checkpoint(self) -> list[str]:
        """Persist every mutated resident table to the attached store.

        Returns the qualified names written.  Skips virtual tables (lazy
        bindings have no rows of their own) and tables still disk-backed
        with no mutations (their segment on disk is already current).
        The manifest commits once, atomically, after all segments are
        written.
        """
        if self._store is None:
            raise CatalogError("no table store attached; call attach() first")
        written: list[str] = []
        for schema_entry in self._schemas.values():
            for table in schema_entry.tables.values():
                if isinstance(table, SystemTable):
                    continue  # runtime introspection, not warehouse data
                if getattr(table, "lazy_binding", None) is not None:
                    continue
                if table.disk_backing is not None:
                    continue  # unchanged since it was mounted from disk
                if (self._store.has_table(table.name)
                        and self._checkpointed_versions.get(table.name)
                        == table.version):
                    continue  # already checkpointed at this version
                self._store.save_table(table.name, table, commit=False)
                self._checkpointed_versions[table.name] = table.version
                written.append(table.name)
        self._store.commit()
        return written


def _check_schema_match(qualified: str, existing: "TableSchema",
                        stored: "TableSchema") -> None:
    ours = [(c.name, c.dtype) for c in existing.columns]
    theirs = [(c.name, c.dtype) for c in stored.columns]
    if ours != theirs:
        raise CatalogError(
            f"stored schema of {qualified} does not match the catalog: "
            f"{theirs} vs {ours}"
        )
