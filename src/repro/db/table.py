"""Tables: columnar storage with schema and constraint metadata.

A :class:`Table` stores one :class:`~repro.db.column.Column` per attribute
(the column-store layout the paper's MonetDB host pioneered).  Tables keep
a monotonically increasing ``version`` that mutations bump; the recycler
uses it to invalidate cached intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.db.column import Column
from repro.db.types import DataType
from repro.errors import CatalogError, ConstraintError, ExecutionError


@dataclass(frozen=True)
class ColumnSpec:
    """Schema entry for one column."""

    name: str
    dtype: DataType
    not_null: bool = False


@dataclass(frozen=True)
class ForeignKeySpec:
    """A foreign-key constraint (validated on demand)."""

    columns: tuple[str, ...]
    ref_table: str  # qualified name "schema.table"
    ref_columns: tuple[str, ...]


@dataclass
class TableSchema:
    """Ordered column specs plus key constraints."""

    columns: list[ColumnSpec]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKeySpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        for key_col in self.primary_key:
            if key_col not in names:
                raise CatalogError(f"primary key column {key_col!r} not in schema")

    def spec(self, name: str) -> ColumnSpec:
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"no column {name!r}")

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]


class Table:
    """A base table with columnar storage.

    A table may be **disk-backed**: attached to a
    :class:`~repro.storage.store.TableBacking` whose segment file holds
    the rows.  Columns then fault in lazily on first access — the lazy-ETL
    principle extended to I/O — and the first mutation materialises every
    column and detaches the backing (copy-on-write semantics), so DML
    behaves identically for resident and disk-backed tables.
    """

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self.version = 0
        self._columns: dict[str, Column] = {
            spec.name: Column.from_numpy(
                spec.dtype,
                np.empty(0, dtype=object)
                if spec.dtype == DataType.VARCHAR
                else np.empty(0),
            )
            for spec in schema.columns
        }
        self._pk_index: set | None = set() if schema.primary_key else None
        self._backing = None  # set via attach_backing()

    # -- disk backing -----------------------------------------------------------

    @property
    def disk_backing(self):
        """The storage backing, or ``None`` for purely resident tables."""
        return self._backing

    def attach_backing(self, backing) -> None:
        """Make this (empty) table serve rows from a segment file."""
        first = next(iter(self._columns.values()), None)
        if first is not None and len(first):
            raise CatalogError(
                f"cannot attach storage to non-empty table {self.name}"
            )
        self._backing = backing
        self._columns = {}
        # The PK index covers only resident rows; it is rebuilt from the
        # faulted columns when the first mutation materialises the table.
        self._pk_index = None

    def is_column_resident(self, name: str) -> bool:
        return name in self._columns

    def _fault_column(self, name: str) -> Column:
        spec = self.schema.spec(name)  # raises CatalogError on unknown
        column = self._backing.load_column(spec.name)
        if column.dtype != spec.dtype:
            raise CatalogError(
                f"segment column {self.name}.{name} has dtype "
                f"{column.dtype}, schema says {spec.dtype}"
            )
        self._columns[name] = column
        return column

    def _materialize_all(self) -> None:
        """Fault in every column and detach the backing (before DML)."""
        if self._backing is None:
            return
        for spec in self.schema.columns:
            if spec.name not in self._columns:
                self._fault_column(spec.name)
        backing, self._backing = self._backing, None
        backing.close()
        if self.schema.primary_key:
            self._pk_index = set(
                self._pk_tuples(self._columns, self.row_count)
            )

    # -- introspection --------------------------------------------------------

    @property
    def row_count(self) -> int:
        if self._backing is not None:
            return self._backing.row_count
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            if self._backing is not None:
                return self._fault_column(name)
            raise CatalogError(f"table {self.name} has no column {name!r}") from None

    def columns(self) -> dict[str, Column]:
        if self._backing is not None:
            return {spec.name: self.column(spec.name)
                    for spec in self.schema.columns}
        return dict(self._columns)

    def memory_bytes(self) -> int:
        """Resident bytes across all columns (experiment E4).

        For disk-backed tables only *faulted* columns count — pages still
        on disk cost no memory, which is the point of the storage engine.
        """
        return sum(col.memory_bytes() for col in self._columns.values())

    # -- mutation ---------------------------------------------------------------

    def _check_not_null(self, name: str, column: Column) -> None:
        if self.schema.spec(name).not_null and column.has_nulls:
            raise ConstraintError(
                f"NULL in NOT NULL column {self.name}.{name}"
            )

    def _pk_tuples(self, batch: Mapping[str, Column], count: int) -> list[tuple]:
        keys = []
        pk_cols = [batch[k] for k in self.schema.primary_key]
        for i in range(count):
            keys.append(tuple(col.value_at(i) for col in pk_cols))
        return keys

    def append_batch(self, batch: Mapping[str, Column],
                     *, enforce_keys: bool = True) -> int:
        """Append aligned columns; returns the number of rows appended."""
        missing = set(self.schema.names) - set(batch)
        if missing:
            raise ExecutionError(f"insert into {self.name} missing columns {missing}")
        lengths = {len(batch[name]) for name in self.schema.names}
        if len(lengths) != 1:
            raise ExecutionError("ragged insert batch")
        count = lengths.pop()
        if count == 0:
            return 0
        self._materialize_all()
        for name in self.schema.names:
            self._check_not_null(name, batch[name])
        if enforce_keys and self._pk_index is not None:
            fresh = self._pk_tuples(batch, count)
            duplicates = set(fresh) & self._pk_index
            if duplicates or len(set(fresh)) != len(fresh):
                raise ConstraintError(
                    f"duplicate primary key in {self.name}: "
                    f"{next(iter(duplicates), 'within batch')}"
                )
            self._pk_index.update(fresh)
        elif self._pk_index is not None:
            self._pk_index.update(self._pk_tuples(batch, count))
        for name in self.schema.names:
            spec = self.schema.spec(name)
            incoming = batch[name]
            if incoming.dtype != spec.dtype:
                raise ExecutionError(
                    f"type mismatch inserting {incoming.dtype} into "
                    f"{self.name}.{name} ({spec.dtype})"
                )
            self._columns[name] = Column.concat([self._columns[name], incoming])
        self.version += 1
        return count

    def append_pydict(self, data: Mapping[str, Sequence],
                      *, enforce_keys: bool = True) -> int:
        """Append from Python sequences (tests and small inserts)."""
        batch = {
            spec.name: Column.from_values(spec.dtype, data[spec.name])
            for spec in self.schema.columns
        }
        return self.append_batch(batch, enforce_keys=enforce_keys)

    def delete_where(self, mask: np.ndarray) -> int:
        """Delete rows where ``mask`` is True; returns the count removed."""
        removed = int(mask.sum())
        if removed == 0:
            return 0
        self._materialize_all()
        keep = ~mask
        if self._pk_index is not None:
            doomed = {name: self._columns[name].filter(mask)
                      for name in self.schema.primary_key}
            self._pk_index -= set(self._pk_tuples(doomed, removed))
        for name in list(self._columns):
            self._columns[name] = self._columns[name].filter(keep)
        self.version += 1
        return removed

    def update_rows(self, mask: np.ndarray,
                    assignments: Mapping[str, Column]) -> int:
        """Overwrite the given columns where ``mask`` is True."""
        touched = int(mask.sum())
        if touched == 0:
            return 0
        self._materialize_all()
        if self._pk_index is not None and (
            set(assignments) & set(self.schema.primary_key)
        ):
            raise ConstraintError("updating primary key columns is not supported")
        for name, new_col in assignments.items():
            spec = self.schema.spec(name)
            if new_col.dtype != spec.dtype:
                raise ExecutionError(
                    f"type mismatch updating {self.name}.{name}"
                )
            self._check_not_null(name, new_col)
            current = self._columns[name]
            values = current.values.copy()
            values[mask] = new_col.values[mask]
            valid = None
            if current.valid is not None or new_col.valid is not None:
                valid = current.validity().copy()
                valid[mask] = new_col.validity()[mask]
            self._columns[name] = Column(spec.dtype, values, valid)
        self.version += 1
        return touched

    def truncate(self) -> None:
        """Remove every row (fast reset used by eager re-loads)."""
        if self._backing is not None:
            backing, self._backing = self._backing, None
            backing.close()
        for spec in self.schema.columns:
            self._columns[spec.name] = Column.from_numpy(
                spec.dtype,
                np.empty(0, dtype=object)
                if spec.dtype == DataType.VARCHAR
                else np.empty(0),
            )
        self._pk_index = set() if self.schema.primary_key else None
        self.version += 1

    def validate_foreign_keys(self, lookup) -> None:
        """Check FK constraints; ``lookup(qualified_name) -> Table``."""
        for fk in self.schema.foreign_keys:
            parent = lookup(fk.ref_table)
            parent_keys = set()
            parent_cols = [parent.column(c) for c in fk.ref_columns]
            for i in range(parent.row_count):
                parent_keys.add(tuple(col.value_at(i) for col in parent_cols))
            child_cols = [self.column(c) for c in fk.columns]
            for i in range(self.row_count):
                key = tuple(col.value_at(i) for col in child_cols)
                if any(part is None for part in key):
                    continue
                if key not in parent_keys:
                    raise ConstraintError(
                        f"foreign key violation in {self.name}: {key} not in "
                        f"{fk.ref_table}({', '.join(fk.ref_columns)})"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name}, rows={self.row_count})"


class SystemTable(Table):
    """A read-only virtual table whose rows come from a provider.

    The provider is any callable returning ``{column_name: sequence}``
    with every schema column present and aligned.  Rows materialise at
    *scan* time, never at bind time, so a plan compiled once (and kept
    in the plan cache) always sees the current runtime state.  Each
    snapshot bumps :attr:`version`, which keeps recycler signatures —
    they embed table versions — from ever serving a stale aggregate
    over moving introspection data.

    System tables reject every mutation and are skipped by catalog
    checkpoints: they describe the warehouse, they are not data in it.
    """

    def __init__(self, name: str, schema: TableSchema, provider) -> None:
        super().__init__(name, schema)
        self._provider = provider
        self._columns = {}  # never holds resident data

    def snapshot_columns(self) -> tuple[dict[str, Column], int]:
        """One consistent snapshot: ``(columns by name, row count)``."""
        data = self._provider()
        columns: dict[str, Column] = {}
        length: int | None = None
        for spec in self.schema.columns:
            if spec.name not in data:
                raise ExecutionError(
                    f"system table {self.name} provider omitted "
                    f"column {spec.name!r}"
                )
            column = Column.from_values(spec.dtype, data[spec.name])
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ExecutionError(
                    f"system table {self.name} provider returned ragged "
                    f"columns ({spec.name!r}: {len(column)} vs {length})"
                )
            columns[spec.name] = column
        self.version += 1
        return columns, length or 0

    def rows(self) -> list[dict]:
        """The snapshot as JSON-friendly row dicts (HTTP /sys route)."""
        columns, length = self.snapshot_columns()
        names = self.schema.names
        return [
            {name: columns[name].value_at(i) for name in names}
            for i in range(length)
        ]

    # -- introspection: a system table is never resident ----------------------

    @property
    def row_count(self) -> int:
        return 0  # unknown until snapshot; 0 keeps planning provider-free

    def column(self, name: str) -> Column:
        raise ExecutionError(
            f"system table {self.name} has no resident columns; "
            "rows exist only inside a scan snapshot"
        )

    # -- mutation: rejected ----------------------------------------------------

    def _read_only(self) -> ExecutionError:
        return ExecutionError(f"system table {self.name} is read-only")

    def attach_backing(self, backing) -> None:
        raise self._read_only()

    def append_batch(self, batch, *, enforce_keys: bool = True) -> int:
        raise self._read_only()

    def append_pydict(self, data, *, enforce_keys: bool = True) -> int:
        raise self._read_only()

    def delete_where(self, mask) -> int:
        raise self._read_only()

    def update_rows(self, mask, assignments) -> int:
        raise self._read_only()

    def truncate(self) -> None:
        raise self._read_only()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SystemTable({self.name})"
