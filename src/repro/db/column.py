"""Typed, NumPy-backed columns with optional null masks.

A :class:`Column` is immutable-by-convention: operators produce new
columns.  ``valid`` is either ``None`` (all rows valid — the common case,
kept cheap) or a boolean array where ``False`` marks NULL.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.db.types import DataType, numpy_dtype
from repro.errors import ExecutionError


class Column:
    """One column of a (intermediate) result: dtype + values + null mask."""

    __slots__ = ("dtype", "values", "valid", "_mem_bytes", "_dict")

    def __init__(self, dtype: DataType, values: np.ndarray,
                 valid: np.ndarray | None = None) -> None:
        self.dtype = dtype
        self.values = values
        self.valid = valid
        self._mem_bytes: int | None = None  # lazy memory_bytes() cache
        # Optional precomputed dictionary (codes, sorted uniques) — set by
        # producers that know the value runs (lazy fetch assembly) and
        # consumed by joins to skip re-factorizing wide key columns.
        self._dict: tuple[np.ndarray, list] | None = None
        if valid is not None and len(valid) != len(values):
            raise ExecutionError("null mask length does not match values")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_values(cls, dtype: DataType, raw: Iterable) -> "Column":
        """Build from a Python iterable; ``None`` entries become NULLs."""
        items = list(raw)
        has_null = any(v is None for v in items)
        np_dtype = numpy_dtype(dtype)
        if dtype == DataType.VARCHAR:
            values = np.empty(len(items), dtype=object)
            for i, v in enumerate(items):
                values[i] = "" if v is None else str(v)
        else:
            fill = False if dtype == DataType.BOOLEAN else 0
            values = np.array(
                [fill if v is None else v for v in items], dtype=np_dtype
            )
        valid = None
        if has_null:
            valid = np.array([v is not None for v in items], dtype=bool)
        return cls(dtype, values, valid)

    @classmethod
    def from_numpy(cls, dtype: DataType, array: np.ndarray,
                   valid: np.ndarray | None = None) -> "Column":
        """Wrap an existing array, coercing to the canonical physical dtype."""
        target = numpy_dtype(dtype)
        if dtype == DataType.VARCHAR:
            if array.dtype != object:
                array = array.astype(object)
        elif array.dtype != target:
            array = array.astype(target)
        return cls(dtype, array, valid)

    @classmethod
    def constant(cls, dtype: DataType, value, length: int) -> "Column":
        """A column repeating one value (used for literals and LEFT-join pads)."""
        if value is None:
            return cls.nulls(dtype, length)
        if dtype == DataType.VARCHAR:
            values = np.empty(length, dtype=object)
            values[:] = str(value)
        else:
            values = np.full(length, value, dtype=numpy_dtype(dtype))
        return cls(dtype, values)

    @classmethod
    def nulls(cls, dtype: DataType, length: int) -> "Column":
        """An all-NULL column."""
        if dtype == DataType.VARCHAR:
            values = np.empty(length, dtype=object)
            values[:] = ""
        else:
            fill = False if dtype == DataType.BOOLEAN else 0
            values = np.full(length, fill, dtype=numpy_dtype(dtype))
        return cls(dtype, values, np.zeros(length, dtype=bool))

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def has_nulls(self) -> bool:
        return self.valid is not None and not bool(self.valid.all())

    def validity(self) -> np.ndarray:
        """A boolean validity array (materialises the all-valid case)."""
        if self.valid is None:
            return np.ones(len(self.values), dtype=bool)
        return self.valid

    def value_at(self, index: int):
        """Python value at ``index`` (``None`` for NULL)."""
        if self.valid is not None and not self.valid[index]:
            return None
        value = self.values[index]
        if self.dtype == DataType.VARCHAR:
            return str(value)
        if self.dtype == DataType.BOOLEAN:
            return bool(value)
        if self.dtype == DataType.DOUBLE:
            return float(value)
        return int(value)

    def to_pylist(self) -> list:
        """The whole column as Python values."""
        return [self.value_at(i) for i in range(len(self))]

    # -- transformations ------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        valid = None if self.valid is None else self.valid[indices]
        return Column(self.dtype, self.values[indices], valid)

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        valid = None if self.valid is None else self.valid[mask]
        return Column(self.dtype, self.values[mask], valid)

    def slice(self, start: int, stop: int) -> "Column":
        valid = None if self.valid is None else self.valid[start:stop]
        return Column(self.dtype, self.values[start:stop], valid)

    def with_nulls_at(self, invalid_mask: np.ndarray) -> "Column":
        """Mark additional rows NULL (used by LEFT joins)."""
        valid = self.validity() & ~invalid_mask
        return Column(self.dtype, self.values, valid)

    @staticmethod
    def concat(parts: Sequence["Column"]) -> "Column":
        """Concatenate columns of identical dtype."""
        if not parts:
            raise ExecutionError("cannot concatenate zero columns")
        dtype = parts[0].dtype
        if any(p.dtype != dtype for p in parts):
            raise ExecutionError("concat of mismatched column types")
        values = np.concatenate([p.values for p in parts])
        if any(p.valid is not None for p in parts):
            valid = np.concatenate([p.validity() for p in parts])
        else:
            valid = None
        return Column(dtype, values, valid)

    # -- introspection ---------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes (drives cache budgets and exp. E4).

        VARCHAR columns count one 8-byte reference per row plus each
        *distinct* string payload once, matching what a
        dictionary-encoded column store stores.  Cached per instance
        (columns are immutable by convention) — this runs on every
        recycler admission, squarely on the concurrent serving hot path.
        """
        if self._mem_bytes is not None:
            return self._mem_bytes
        if self.dtype == DataType.VARCHAR:
            # set() dedups at C speed; the big arrays here are join keys
            # with very few distinct values.
            payload = sum(map(len, set(self.values.tolist())))
            total = self.values.size * 8 + payload
        else:
            total = self.values.nbytes
        if self.valid is not None:
            total += self.valid.nbytes
        if self._dict is not None:
            total += self._dict[0].nbytes  # resident dictionary codes
        self._mem_bytes = int(total)
        return self._mem_bytes

    def factorize(self) -> tuple[np.ndarray, int]:
        """Map values to dense integer codes; NULL becomes code -1.

        Codes follow sort order of the distinct values, which keeps ORDER BY
        on dictionary codes consistent with value order.  Returns
        ``(codes, bound)`` where ``bound`` is an exclusive upper bound for
        the codes — the exact distinct count for strings and floats, and a
        (possibly sparse) value-range bound for narrow integer columns,
        which join/group-by code combination handles identically while
        skipping the O(n log n) sort on the hot lazy-join path.
        """
        if self.dtype == DataType.VARCHAR:
            codes, uniques = self.dictionary()
            n_distinct = len(uniques)
            if self.valid is not None:
                codes = codes.copy()  # never mutate the cached codes
        elif (self.values.dtype.kind in "iu" and len(self.values)
              and int(self.values.max()) - int(self.values.min()) < (1 << 21)):
            # Narrow integer range (seq_no, timestamps within a window):
            # order-preserving offset codes, no sort needed.
            lo = int(self.values.min())
            codes = self.values.astype(np.int64) - lo
            n_distinct = int(codes.max()) + 1
        else:
            uniques, codes = np.unique(self.values, return_inverse=True)
            codes = codes.astype(np.int64)
            n_distinct = len(uniques)
        if self.valid is not None:
            codes[~self.valid] = -1
        return codes, n_distinct

    def dictionary(self) -> tuple[np.ndarray, list]:
        """``(codes, sorted uniques)`` for a VARCHAR column, cached.

        Producers that know the value runs (lazy fetch assembly) pre-set
        this via :meth:`set_dictionary`; otherwise it is computed once at
        C speed (set/map/fromiter — np.unique on object arrays falls back
        to per-element Python comparisons).  NULL rows carry the code of
        their placeholder value; :meth:`factorize` overlays -1.
        """
        if self._dict is not None:
            return self._dict
        if self.dtype != DataType.VARCHAR:
            raise ExecutionError("dictionary() requires a VARCHAR column")
        vals = self.values.tolist()
        try:
            uniques = sorted(set(vals))
        except TypeError:
            # Mixed non-string payloads: coerce like str(v) always did.
            vals = list(map(str, vals))
            uniques = sorted(set(vals))
        lookup = {v: i for i, v in enumerate(uniques)}
        codes = np.fromiter(map(lookup.__getitem__, vals),
                            dtype=np.int64, count=len(vals))
        self._dict = (codes, uniques)
        self._mem_bytes = None  # codes are resident: re-account on demand
        return self._dict

    def set_dictionary(self, codes: np.ndarray, uniques: list) -> None:
        """Install a precomputed dictionary (see :meth:`dictionary`)."""
        self._dict = (codes, uniques)
        self._mem_bytes = None  # codes are resident: re-account on demand

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = ", ".join(str(self.value_at(i)) for i in range(min(5, len(self))))
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column<{self.dtype}>[{preview}{suffix}] n={len(self)}"
