"""Prepared-statement parameters: specs, validation, substitution.

Two halves of the parameter story live here:

* **AST level** — :class:`ParamSpec` (what placeholders a statement
  declares) and :func:`substitute_ast_params` (rewrite ``Param`` nodes
  into bound literals, the path DML statements take: they are not
  plan-cached, so value substitution is the simplest correct binding).
* **Plan level** — :func:`collect_bound_params` (every ``Param``
  occurrence in a bound logical plan, with its inferred dtype) and
  :func:`resolve_param_values` (turn the caller's values into the
  slot->value mapping :meth:`Param.eval` reads, with eager validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from repro.db import expr as ex
from repro.db.sql import ast
from repro.db.types import coerce_literal
from repro.errors import ParameterError, TypeMismatchError


@dataclass(frozen=True)
class ParamSpec:
    """The placeholders one parsed statement declares."""

    style: Optional[str]  # None | 'positional' | 'named'
    count: int = 0        # positional slots
    names: tuple[str, ...] = ()

    @property
    def is_parameterized(self) -> bool:
        return self.style is not None


# ---------------------------------------------------------------------------
# Value resolution and validation
# ---------------------------------------------------------------------------


def resolve_param_values(
    spec: ParamSpec,
    bound_params: Sequence[ex.Param],
    values: "Sequence | Mapping | None",
) -> Optional[dict]:
    """Normalise caller-supplied values into a slot->value mapping.

    Raises :class:`ParameterError` on arity/name mismatches and on
    values that cannot coerce to a placeholder's inferred type — eagerly,
    before any operator runs, so a bad bind never half-executes a query.
    """
    if not spec.is_parameterized:
        if values:
            raise ParameterError(
                "statement takes no parameters but values were supplied"
            )
        return None
    if spec.style == "positional":
        if values is None or isinstance(values, (Mapping, str, bytes)):
            # A bare string would iterate per character — always a bug.
            raise ParameterError(
                f"statement expects {spec.count} positional parameter(s); "
                "pass a sequence of values, e.g. ['NL']"
            )
        seq = list(values)
        if len(seq) != spec.count:
            raise ParameterError(
                f"statement expects {spec.count} parameter(s), "
                f"got {len(seq)}"
            )
        mapping: dict = {i: v for i, v in enumerate(seq)}
    else:
        if not isinstance(values, Mapping):
            raise ParameterError(
                f"statement expects named parameters "
                f"{sorted(spec.names)}; pass a mapping"
            )
        missing = [n for n in spec.names if n not in values]
        if missing:
            raise ParameterError(f"missing named parameter(s): {missing}")
        extra = sorted(set(values) - set(spec.names))
        if extra:
            raise ParameterError(f"unknown named parameter(s): {extra}")
        mapping = dict(values)
    for param in bound_params:
        value = mapping[param.slot]
        try:
            coerce_literal(value, param.dtype)
        except (TypeError, ValueError, TypeMismatchError) as exc:
            raise ParameterError(
                f"parameter {param.display}: cannot bind "
                f"{value!r} as {param.dtype}"
            ) from exc
    return mapping


# ---------------------------------------------------------------------------
# Expression / AST walking
# ---------------------------------------------------------------------------


def _expr_params(expr: Optional[ex.Expr]) -> Iterator[ex.Param]:
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.Param):
            yield node
        stack.extend(node.children())


def _substitute_expr(expr: ex.Expr, values: dict) -> ex.Expr:
    from repro.db.plan.logical import _clone_with_children

    if isinstance(expr, ex.Param):
        return ex.Literal(value=values[expr.slot])
    children = [_substitute_expr(c, values) for c in expr.children()]
    if not children:
        return expr
    return _clone_with_children(expr, children)


def substitute_ast_params(stmt: ast.Statement, values: dict) -> ast.Statement:
    """Rewrite a DML statement's Param nodes into unbound literals.

    DML statements are executed once per call (never plan-cached), so
    substituting the values directly into the expression tree is the
    simplest correct binding; the binder then types the literals exactly
    as if the caller had inlined them — but the values arrive as *data*,
    never re-parsed as SQL text.
    """
    if isinstance(stmt, ast.InsertStmt):
        return ast.InsertStmt(
            table=stmt.table,
            columns=stmt.columns,
            rows=[[_substitute_expr(e, values) for e in row]
                  for row in stmt.rows],
        )
    if isinstance(stmt, ast.DeleteStmt):
        return ast.DeleteStmt(
            table=stmt.table,
            where=None if stmt.where is None
            else _substitute_expr(stmt.where, values),
        )
    if isinstance(stmt, ast.UpdateStmt):
        return ast.UpdateStmt(
            table=stmt.table,
            assignments=[(name, _substitute_expr(e, values))
                         for name, e in stmt.assignments],
            where=None if stmt.where is None
            else _substitute_expr(stmt.where, values),
        )
    raise ParameterError(
        f"parameters are not supported in "
        f"{type(stmt).__name__.removesuffix('Stmt')} statements"
    )


# ---------------------------------------------------------------------------
# Logical-plan walking
# ---------------------------------------------------------------------------


def _node_exprs(node) -> Iterator[ex.Expr]:
    """Every expression attached to one logical node (not its children)."""
    from repro.db.plan import logical as lg

    if isinstance(node, lg.LFilter):
        yield node.predicate
    elif isinstance(node, lg.LProject):
        yield from node.exprs
    elif isinstance(node, lg.LJoin):
        if node.residual is not None:
            yield node.residual
    elif isinstance(node, lg.LAggregate):
        yield from node.group_exprs
        for agg in node.aggregates:
            if agg.arg is not None:
                yield agg.arg
    elif isinstance(node, lg.LSort):
        for key, _asc in node.keys:
            yield key
    elif isinstance(node, lg.LLazyFetch):
        yield from node.residuals


def _plan_nodes(node) -> Iterator:
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children())  # LLazyFetch.children() is [meta]


def collect_bound_params(plan) -> list[ex.Param]:
    """All Param occurrences in a bound plan, validated to carry a dtype.

    An occurrence whose type the binder could not infer (e.g. ``SELECT ?``
    with no context) is a compile-time error with a CAST hint — better
    than an opaque failure mid-execution.
    """
    params: list[ex.Param] = []
    for plan_node in _plan_nodes(plan):
        for expr in _node_exprs(plan_node):
            params.extend(_expr_params(expr))
    for param in params:
        if param.dtype is None:
            raise ParameterError(
                f"cannot infer the type of parameter {param.display}; "
                "wrap it in CAST(... AS <type>)"
            )
    return params
