"""SQL lexer.

Keywords are case-insensitive; identifiers are folded to lower case
(quote with double quotes to preserve case).  String literals use single
quotes with ``''`` escaping, as in the paper's queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"  # '?' (text == "") or ':name' (text == name)
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "offset", "as", "and", "or", "not", "in", "between", "like", "is",
    "null", "true", "false", "asc", "desc", "distinct", "join", "inner",
    "left", "right", "outer", "on", "cross", "create", "table", "view",
    "schema", "drop", "insert", "into", "values", "delete", "update", "set",
    "primary", "foreign", "key", "references", "explain", "analyze", "case",
    "when", "then", "else", "end", "cast", "exists", "if", "union", "all",
}

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.text in names

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenise ``sql``; raises :class:`LexerError` on unknown characters."""
    tokens: list[Token] = []
    index = 0
    size = len(sql)
    while index < size:
        ch = sql[index]
        if ch.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            end = sql.find("\n", index)
            index = size if end < 0 else end + 1
            continue
        if sql.startswith("/*", index):
            end = sql.find("*/", index + 2)
            if end < 0:
                raise LexerError("unterminated block comment", index)
            index = end + 2
            continue
        if ch == "'":
            chunks = []
            pos = index + 1
            while True:
                if pos >= size:
                    raise LexerError("unterminated string literal", index)
                if sql[pos] == "'":
                    if pos + 1 < size and sql[pos + 1] == "'":
                        chunks.append("'")
                        pos += 2
                        continue
                    break
                chunks.append(sql[pos])
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), index))
            index = pos + 1
            continue
        if ch == '"':
            end = sql.find('"', index + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", index)
            tokens.append(Token(TokenType.IDENT, sql[index + 1 : end], index))
            index = end + 1
            continue
        if ch.isdigit() or (ch == "." and index + 1 < size and sql[index + 1].isdigit()):
            pos = index
            seen_dot = False
            seen_exp = False
            while pos < size:
                c = sql[pos]
                if c.isdigit():
                    pos += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Disambiguate "1." followed by an identifier (alias.col
                    # never starts with a digit, so a dot after digits is a
                    # decimal point).
                    seen_dot = True
                    pos += 1
                elif c in "eE" and not seen_exp and pos + 1 < size and (
                    sql[pos + 1].isdigit() or sql[pos + 1] in "+-"
                ):
                    seen_exp = True
                    pos += 2 if sql[pos + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[index:pos], index))
            index = pos
            continue
        if ch.isalpha() or ch == "_":
            pos = index
            while pos < size and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            word = sql[index:pos].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, index))
            index = pos
            continue
        if ch == "?":
            # Positional parameter placeholder (prepared statements).
            tokens.append(Token(TokenType.PARAM, "", index))
            index += 1
            continue
        if ch == ":":
            pos = index + 1
            if pos >= size or not (sql[pos].isalpha() or sql[pos] == "_"):
                raise LexerError("expected a parameter name after ':'", index)
            while pos < size and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            tokens.append(Token(TokenType.PARAM, sql[index + 1 : pos].lower(),
                                index))
            index = pos
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, index):
                tokens.append(Token(TokenType.OPERATOR, op, index))
                index += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, index))
            index += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", index)
    tokens.append(Token(TokenType.EOF, "", size))
    return tokens
