"""Statement-level AST produced by the parser.

Expressions reuse the node classes in :mod:`repro.db.expr` (unbound form);
this module adds the statement and table-reference shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.db.expr import Expr


# -- table references ---------------------------------------------------------


class TableExpr:
    """Base class for FROM-clause items."""


@dataclass
class TableRef(TableExpr):
    """``schema.table [AS alias]`` — may resolve to a table or a view."""

    parts: tuple[str, ...]
    alias: Optional[str] = None

    @property
    def display(self) -> str:
        name = ".".join(self.parts)
        return f"{name} AS {self.alias}" if self.alias else name


@dataclass
class SubqueryRef(TableExpr):
    """A derived table: ``(SELECT ...) AS alias``."""

    select: "SelectStmt"
    alias: str


@dataclass
class JoinRef(TableExpr):
    """Explicit join: ``left [INNER|LEFT|CROSS] JOIN right [ON cond]``."""

    left: TableExpr
    right: TableExpr
    kind: str  # 'inner' | 'left' | 'cross'
    condition: Optional[Expr] = None


# -- SELECT -------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class SelectStmt:
    items: list[SelectItem]
    from_items: list[TableExpr] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


# -- DDL ----------------------------------------------------------------------


@dataclass
class ColumnDefAst:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass
class ForeignKeyAst:
    columns: list[str]
    ref_table: tuple[str, ...]
    ref_columns: list[str]


@dataclass
class CreateTableStmt:
    name: tuple[str, ...]
    columns: list[ColumnDefAst]
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKeyAst] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class CreateViewStmt:
    name: tuple[str, ...]
    select: SelectStmt
    sql_text: str = ""


@dataclass
class CreateSchemaStmt:
    name: str
    if_not_exists: bool = False


@dataclass
class DropStmt:
    kind: str  # 'table' | 'view' | 'schema'
    name: tuple[str, ...]
    if_exists: bool = False


# -- DML ----------------------------------------------------------------------


@dataclass
class InsertStmt:
    table: tuple[str, ...]
    columns: Optional[list[str]]
    rows: list[list[Expr]]


@dataclass
class DeleteStmt:
    table: tuple[str, ...]
    where: Optional[Expr] = None


@dataclass
class UpdateStmt:
    table: tuple[str, ...]
    assignments: list[tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class ExplainStmt:
    select: SelectStmt
    sql_text: str = ""
    # EXPLAIN ANALYZE: execute the plan and annotate each operator with
    # measured wall time, rows and page I/O (plain EXPLAIN never runs).
    analyze: bool = False


Statement = (
    SelectStmt
    | CreateTableStmt
    | CreateViewStmt
    | CreateSchemaStmt
    | DropStmt
    | InsertStmt
    | DeleteStmt
    | UpdateStmt
    | ExplainStmt
)
