"""SQL front-end: lexer, AST definitions and recursive-descent parser."""

from repro.db.sql.parser import parse_statement, parse_select
from repro.db.sql import ast

__all__ = ["parse_statement", "parse_select", "ast"]
