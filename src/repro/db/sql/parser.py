"""Recursive-descent SQL parser.

Grammar (informal):

.. code-block:: text

   statement   := select | create_table | create_view | create_schema
                | drop | insert | delete | update | explain
   select      := SELECT [DISTINCT] items FROM table_expr (',' table_expr)*
                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                  [ORDER BY order_list] [LIMIT n [OFFSET m]]
   table_expr  := table_primary (join_clause)*
   expr        := or_expr with the usual precedence:
                  OR < AND < NOT < comparison/BETWEEN/IN/LIKE/IS < add < mul < unary

Operator precedence follows standard SQL.  The expression productions
build unbound :mod:`repro.db.expr` nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.db.expr import (
    AggCall,
    Between,
    BinOp,
    Case,
    Cast,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Star,
    UnOp,
    AGGREGATE_NAMES,
)
from repro.db.sql import ast
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.types import type_from_name
from repro.errors import ParseError


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        # Prepared-statement placeholders found while parsing: positional
        # '?' slots are numbered left to right; ':name' slots are named.
        # One statement must not mix the two styles.
        self.param_style: Optional[str] = None  # 'positional' | 'named'
        self.positional_params = 0
        self.named_params: list[str] = []

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.index += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        found = token.text or "<eof>"
        return ParseError(f"{message} (found {found!r})", token.position)

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            raise self.error(f"expected {name.upper()}")

    def accept_punct(self, text: str) -> bool:
        token = self.current
        if token.type == TokenType.PUNCT and token.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise self.error(f"expected {text!r}")

    def accept_operator(self, *ops: str) -> Optional[str]:
        token = self.current
        if token.type == TokenType.OPERATOR and token.text in ops:
            self.advance()
            return token.text
        return None

    def expect_ident(self) -> str:
        token = self.current
        if token.type == TokenType.IDENT:
            self.advance()
            return token.text
        # Non-reserved use of keywords as identifiers is common (e.g. a
        # column named "key"); allow a safe subset.
        if token.type == TokenType.KEYWORD and token.text in ("key", "values", "set"):
            self.advance()
            return token.text
        raise self.error("expected identifier")

    def qualified_name(self) -> tuple[str, ...]:
        parts = [self.expect_ident()]
        while self.accept_punct("."):
            parts.append(self.expect_ident())
        return tuple(parts)

    # -- statements ----------------------------------------------------------

    def statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("select"):
            return self.select()
        if token.is_keyword("explain"):
            self.advance()
            analyze = False
            if self.current.is_keyword("analyze"):
                self.advance()
                analyze = True
            select = self.select()
            return ast.ExplainStmt(select=select, sql_text=self.sql,
                                   analyze=analyze)
        if token.is_keyword("create"):
            return self.create()
        if token.is_keyword("drop"):
            return self.drop()
        if token.is_keyword("insert"):
            return self.insert()
        if token.is_keyword("delete"):
            return self.delete()
        if token.is_keyword("update"):
            return self.update()
        raise self.error("expected a statement")

    def parse_single(self) -> ast.Statement:
        stmt = self.statement()
        self.accept_punct(";")
        if self.current.type != TokenType.EOF:
            raise self.error("unexpected trailing input")
        return stmt

    # -- SELECT ----------------------------------------------------------------

    def select(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        if distinct is False:
            self.accept_keyword("all")
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())

        from_items: list[ast.TableExpr] = []
        if self.accept_keyword("from"):
            from_items.append(self.table_expr())
            while self.accept_punct(","):
                from_items.append(self.table_expr())

        where = self.expr() if self.accept_keyword("where") else None

        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.expr())
            while self.accept_punct(","):
                group_by.append(self.expr())

        having = self.expr() if self.accept_keyword("having") else None

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.order_item())
            while self.accept_punct(","):
                order_by.append(self.order_item())

        limit = offset = None
        if self.accept_keyword("limit"):
            limit = self.integer_literal()
            if self.accept_keyword("offset"):
                offset = self.integer_literal()

        return ast.SelectStmt(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def integer_literal(self) -> int:
        token = self.current
        if token.type != TokenType.NUMBER:
            raise self.error("expected an integer")
        self.advance()
        try:
            return int(token.text)
        except ValueError:
            raise ParseError(f"expected an integer, got {token.text!r}",
                             token.position) from None

    def select_item(self) -> ast.SelectItem:
        if self.current.type == TokenType.OPERATOR and self.current.text == "*":
            self.advance()
            return ast.SelectItem(expr=Star())
        expr = self.expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type == TokenType.IDENT:
            alias = self.advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def order_item(self) -> ast.OrderItem:
        expr = self.expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr=expr, ascending=ascending)

    # -- FROM ------------------------------------------------------------------

    def table_expr(self) -> ast.TableExpr:
        left = self.table_primary()
        while True:
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                right = self.table_primary()
                left = ast.JoinRef(left=left, right=right, kind="cross")
                continue
            kind = None
            if self.current.is_keyword("join"):
                kind = "inner"
            elif self.current.is_keyword("inner"):
                self.advance()
                kind = "inner"
            elif self.current.is_keyword("left"):
                self.advance()
                self.accept_keyword("outer")
                kind = "left"
            if kind is None:
                return left
            self.expect_keyword("join")
            right = self.table_primary()
            self.expect_keyword("on")
            condition = self.expr()
            left = ast.JoinRef(left=left, right=right, kind=kind,
                               condition=condition)

    def table_primary(self) -> ast.TableExpr:
        if self.accept_punct("("):
            select = self.select()
            self.expect_punct(")")
            self.accept_keyword("as")
            alias = self.expect_ident()
            return ast.SubqueryRef(select=select, alias=alias)
        parts = self.qualified_name()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type == TokenType.IDENT:
            alias = self.advance().text
        return ast.TableRef(parts=parts, alias=alias)

    # -- DDL ---------------------------------------------------------------------

    def create(self) -> ast.Statement:
        self.expect_keyword("create")
        if self.accept_keyword("schema"):
            if_not_exists = self._if_not_exists()
            return ast.CreateSchemaStmt(name=self.expect_ident(),
                                        if_not_exists=if_not_exists)
        if self.accept_keyword("view"):
            name = self.qualified_name()
            self.expect_keyword("as")
            select = self.select()
            return ast.CreateViewStmt(name=name, select=select, sql_text=self.sql)
        self.expect_keyword("table")
        if_not_exists = self._if_not_exists()
        name = self.qualified_name()
        self.expect_punct("(")
        columns: list[ast.ColumnDefAst] = []
        primary_key: list[str] = []
        foreign_keys: list[ast.ForeignKeyAst] = []
        while True:
            if self.current.is_keyword("primary"):
                self.advance()
                self.expect_keyword("key")
                primary_key = self._paren_name_list()
            elif self.current.is_keyword("foreign"):
                self.advance()
                self.expect_keyword("key")
                cols = self._paren_name_list()
                self.expect_keyword("references")
                ref_table = self.qualified_name()
                ref_cols = self._paren_name_list()
                foreign_keys.append(
                    ast.ForeignKeyAst(columns=cols, ref_table=ref_table,
                                      ref_columns=ref_cols)
                )
            else:
                columns.append(self.column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        inline_pk = [c.name for c in columns if c.primary_key]
        if inline_pk and primary_key:
            raise self.error("duplicate PRIMARY KEY specification")
        return ast.CreateTableStmt(
            name=name,
            columns=columns,
            primary_key=primary_key or inline_pk,
            foreign_keys=foreign_keys,
            if_not_exists=if_not_exists,
        )

    def _if_not_exists(self) -> bool:
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            return True
        return False

    def _paren_name_list(self) -> list[str]:
        self.expect_punct("(")
        names = [self.expect_ident()]
        while self.accept_punct(","):
            names.append(self.expect_ident())
        self.expect_punct(")")
        return names

    def column_def(self) -> ast.ColumnDefAst:
        name = self.expect_ident()
        type_token = self.current
        if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self.error("expected a type name")
        self.advance()
        type_name = type_token.text
        # Swallow optional length arguments: VARCHAR(30), CHAR(2) ...
        if self.accept_punct("("):
            self.integer_literal()
            while self.accept_punct(","):
                self.integer_literal()
            self.expect_punct(")")
        type_from_name(type_name)  # validate early
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                not_null = True
            elif self.accept_keyword("primary"):
                self.expect_keyword("key")
                primary_key = True
                not_null = True
            else:
                break
        return ast.ColumnDefAst(name=name, type_name=type_name,
                                not_null=not_null, primary_key=primary_key)

    def drop(self) -> ast.DropStmt:
        self.expect_keyword("drop")
        for kind in ("table", "view", "schema"):
            if self.accept_keyword(kind):
                if_exists = False
                if self.accept_keyword("if"):
                    self.expect_keyword("exists")
                    if_exists = True
                return ast.DropStmt(kind=kind, name=self.qualified_name(),
                                    if_exists=if_exists)
        raise self.error("expected TABLE, VIEW or SCHEMA after DROP")

    # -- DML ---------------------------------------------------------------------

    def insert(self) -> ast.InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.qualified_name()
        columns = None
        if self.current.type == TokenType.PUNCT and self.current.text == "(":
            columns = self._paren_name_list()
        self.expect_keyword("values")
        rows = [self._value_row()]
        while self.accept_punct(","):
            rows.append(self._value_row())
        return ast.InsertStmt(table=table, columns=columns, rows=rows)

    def _value_row(self) -> list[Expr]:
        self.expect_punct("(")
        row = [self.expr()]
        while self.accept_punct(","):
            row.append(self.expr())
        self.expect_punct(")")
        return row

    def delete(self) -> ast.DeleteStmt:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.qualified_name()
        where = self.expr() if self.accept_keyword("where") else None
        return ast.DeleteStmt(table=table, where=where)

    def update(self) -> ast.UpdateStmt:
        self.expect_keyword("update")
        table = self.qualified_name()
        self.expect_keyword("set")
        assignments = []
        while True:
            name = self.expect_ident()
            if self.accept_operator("=") is None:
                raise self.error("expected '=' in assignment")
            assignments.append((name, self.expr()))
            if not self.accept_punct(","):
                break
        where = self.expr() if self.accept_keyword("where") else None
        return ast.UpdateStmt(table=table, assignments=assignments, where=where)

    # -- expressions ---------------------------------------------------------------

    def expr(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.accept_keyword("or"):
            left = BinOp(op="or", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.accept_keyword("and"):
            left = BinOp(op="and", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.accept_keyword("not"):
            return UnOp(op="not", operand=self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        left = self.additive()
        negated = False
        if self.current.is_keyword("not"):
            # NOT BETWEEN / NOT IN / NOT LIKE
            nxt = self.tokens[self.index + 1]
            if nxt.is_keyword("between", "in", "like"):
                self.advance()
                negated = True
        if self.accept_keyword("between"):
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return Between(operand=left, low=low, high=high, negated=negated)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            items = [self.expr()]
            while self.accept_punct(","):
                items.append(self.expr())
            self.expect_punct(")")
            return InList(operand=left, items=items, negated=negated)
        if self.accept_keyword("like"):
            token = self.current
            if token.type != TokenType.STRING:
                raise self.error("LIKE requires a string literal pattern")
            self.advance()
            return Like(operand=left, pattern=token.text, negated=negated)
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(operand=left, negated=is_negated)
        op = self.accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            right = self.additive()
            return BinOp(op="<>" if op == "!=" else op, left=left, right=right)
        return left

    def additive(self) -> Expr:
        left = self.multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            right = self.multiplicative()
            if op == "||":
                left = FuncCall(name="concat", args=[left, right])
            else:
                left = BinOp(op=op, left=left, right=right)

    def multiplicative(self) -> Expr:
        left = self.unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = BinOp(op=op, left=left, right=self.unary())

    def unary(self) -> Expr:
        if self.accept_operator("-"):
            return UnOp(op="-", operand=self.unary())
        if self.accept_operator("+"):
            return self.unary()
        return self.primary()

    def param_expr(self) -> Expr:
        token = self.advance()
        style = "positional" if token.text == "" else "named"
        if self.param_style is None:
            self.param_style = style
        elif self.param_style != style:
            raise ParseError(
                "cannot mix positional (?) and named (:name) parameters "
                "in one statement", token.position,
            )
        if style == "positional":
            slot: "int | str" = self.positional_params
            self.positional_params += 1
        else:
            slot = token.text
            if token.text not in self.named_params:
                self.named_params.append(token.text)
        return Param(slot=slot)

    def primary(self) -> Expr:
        token = self.current
        if token.type == TokenType.PARAM:
            return self.param_expr()
        if token.type == TokenType.NUMBER:
            self.advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(value=float(text))
            return Literal(value=int(text))
        if token.type == TokenType.STRING:
            self.advance()
            return Literal(value=token.text)
        if token.is_keyword("true"):
            self.advance()
            return Literal(value=True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(value=False)
        if token.is_keyword("null"):
            self.advance()
            return Literal(value=None)
        if token.is_keyword("cast"):
            self.advance()
            self.expect_punct("(")
            operand = self.expr()
            self.expect_keyword("as")
            type_token = self.current
            if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise self.error("expected a type name in CAST")
            self.advance()
            if self.accept_punct("("):
                self.integer_literal()
                self.expect_punct(")")
            self.expect_punct(")")
            return Cast(operand=operand, target=type_from_name(type_token.text))
        if token.is_keyword("case"):
            return self.case_expr()
        if self.accept_punct("("):
            inner = self.expr()
            self.expect_punct(")")
            return inner
        if token.type == TokenType.IDENT:
            return self.identifier_expr()
        raise self.error("expected an expression")

    def case_expr(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            cond = self.expr()
            self.expect_keyword("then")
            whens.append((cond, self.expr()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = self.expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return Case(whens=whens, default=default)

    def identifier_expr(self) -> Expr:
        name = self.expect_ident()
        # Function or aggregate call
        if self.current.type == TokenType.PUNCT and self.current.text == "(":
            self.advance()
            lowered = name.lower()
            if lowered in AGGREGATE_NAMES:
                if self.current.type == TokenType.OPERATOR and self.current.text == "*":
                    self.advance()
                    self.expect_punct(")")
                    if lowered != "count":
                        raise self.error(f"{name.upper()}(*) is not valid")
                    return AggCall(name="count", arg=None)
                distinct = self.accept_keyword("distinct")
                arg = self.expr()
                self.expect_punct(")")
                return AggCall(name=lowered, arg=arg, distinct=distinct)
            args = []
            if not self.accept_punct(")"):
                args.append(self.expr())
                while self.accept_punct(","):
                    args.append(self.expr())
                self.expect_punct(")")
            return FuncCall(name=lowered, args=args)
        parts = [name]
        while self.accept_punct("."):
            if self.current.type == TokenType.OPERATOR and self.current.text == "*":
                self.advance()
                return Star(qualifier=".".join(parts))
            parts.append(self.expect_ident())
        return ColumnRef(parts=tuple(parts))


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement (an optional trailing ``;`` is allowed)."""
    return _Parser(sql).parse_single()


def parse_prepared(sql: str):
    """Parse one statement and return it with its parameter spec
    (``(statement, ParamSpec)``)."""
    from repro.db.sql.parameters import ParamSpec

    parser = _Parser(sql)
    stmt = parser.parse_single()
    spec = ParamSpec(
        style=parser.param_style,
        count=parser.positional_params,
        names=tuple(parser.named_params),
    )
    return stmt, spec


def parse_select(sql: str) -> ast.SelectStmt:
    """Parse and require a SELECT statement."""
    stmt = parse_statement(sql)
    if not isinstance(stmt, ast.SelectStmt):
        raise ParseError("expected a SELECT statement")
    return stmt
