"""A columnar, vectorised analytical SQL engine — the MonetDB stand-in.

The paper implements Lazy ETL *inside* MonetDB, relying on four engine
capabilities; this package provides all of them:

* column-at-a-time execution over NumPy arrays with fully materialised
  intermediates (:mod:`repro.db.column`, :mod:`repro.db.plan.physical`),
* non-materialised views that expand into queries
  (:mod:`repro.db.catalog`, the binder in :mod:`repro.db.plan.logical`),
* plan introspection and **run-time plan rewriting** — the optimiser plants
  a rewrite operator over lazily-bound tables; at execution it injects
  per-file cache-fetch/extract operators (:mod:`repro.db.plan.optimizer`),
* **intermediate result recycling** with an LRU byte budget
  (:mod:`repro.db.exec.recycler`), the substrate of lazy loading.
"""

from repro.db.types import DataType
from repro.db.column import Column
from repro.db.table import Table, TableSchema, ColumnSpec
from repro.db.catalog import Catalog, LazyTableBinding
from repro.db.exec.engine import Database
from repro.db.exec.result import Result

__all__ = [
    "DataType",
    "Column",
    "Table",
    "TableSchema",
    "ColumnSpec",
    "Catalog",
    "LazyTableBinding",
    "Database",
    "Result",
]
