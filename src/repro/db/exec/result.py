"""Query result sets."""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.column import Column
from repro.db.types import DataType, render_value
from repro.errors import ExecutionError


class Result:
    """A materialised query result: named, typed columns."""

    def __init__(self, names: list[str], columns: list[Column]) -> None:
        if len(names) != len(columns):
            raise ExecutionError("result names/columns mismatch")
        self.names = names
        self.columns = columns

    # -- shape -------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_count(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.row_count

    @property
    def dtypes(self) -> list[DataType]:
        return [col.dtype for col in self.columns]

    # -- access -----------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self.columns[self.names.index(name.lower())]
        except ValueError:
            raise ExecutionError(f"no result column {name!r}") from None

    def rows(self) -> list[tuple]:
        """All rows as Python tuples (``None`` for NULL)."""
        return [
            tuple(col.value_at(i) for col in self.columns)
            for i in range(self.row_count)
        ]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if self.row_count != 1 or self.column_count != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{self.row_count}x{self.column_count}"
            )
        return self.columns[0].value_at(0)

    def first(self) -> tuple:
        if self.row_count == 0:
            raise ExecutionError("first() on an empty result")
        return tuple(col.value_at(0) for col in self.columns)

    def to_pydict(self) -> dict[str, list]:
        return {name: col.to_pylist()
                for name, col in zip(self.names, self.columns)}

    # -- display -------------------------------------------------------------------

    def format(self, max_rows: int = 25) -> str:
        """Aligned text rendering (used by examples and the demo tour)."""
        shown = min(self.row_count, max_rows)
        cells = [
            [render_value(col.value_at(i), col.dtype) for col in self.columns]
            for i in range(shown)
        ]
        widths = [len(n) for n in self.names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(n.ljust(widths[i]) for i, n in enumerate(self.names)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if shown < self.row_count:
            lines.append(f"... ({self.row_count - shown} more rows)")
        lines.append(f"({self.row_count} row{'s' if self.row_count != 1 else ''})")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Result({self.row_count}x{self.column_count})"
