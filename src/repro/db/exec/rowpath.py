"""Row-at-a-time reference interpreter — the differential-testing oracle.

The vectorised executor in :mod:`repro.db.plan.physical` is the fast
path; this module is the *semantic anchor* it is tested against.  Every
physical operator is re-implemented here as a scalar, tuple-at-a-time
interpreter over plain Python values (``None`` for NULL), with SQL
three-valued logic written out longhand.  The oracle in
``tests/oracle.py`` runs each query through both paths and requires the
results to agree bit-for-bit.

Design rules that make bit-identity achievable:

* Expression nodes with no inputs (``Literal``/``Param``) delegate to
  their own vectorised ``eval`` on a length-1 frame, so literal/parameter
  coercion is shared by construction rather than re-implemented.
* Scalar functions run the registered vectorised implementation on
  length-1 columns: libm calls (``sqrt``, ``ln``…) are bit-identical
  only when the same code computes them.
* Floating-point aggregates replicate the kernels in
  ``PAggregate._compute_aggregate`` operation for operation —
  ``np.add.reduceat`` reduces strictly sequentially, so a Python loop
  adding in the same row order produces the same bits (including the
  ``+ 0.0`` contributed by NULL rows).
* Everything else (comparisons, Kleene AND/OR, LIKE, CASE, joins, sort
  order, group order) is written independently, which is what gives the
  differential tests their teeth.

The interpreter is deliberately slow — it *is* the pre-vectorisation
row-at-a-time engine, and doubles as the baseline for bench E15.
"""

from __future__ import annotations

import functools
import math
from typing import Optional

import numpy as np

from repro.db import expr as ex
from repro.db.column import Column
from repro.db.plan import physical as ph
from repro.db.types import DataType, render_value
from repro.errors import ExecutionError

Row = dict  # cid -> python value (None encodes NULL)

# ---------------------------------------------------------------------------
# Scalar expression evaluation
# ---------------------------------------------------------------------------

_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NULL_PLACEHOLDER = {
    DataType.VARCHAR: "",
    DataType.BOOLEAN: False,
    DataType.DOUBLE: 0.0,
}


def _placeholder(dtype: DataType):
    """The raw storage value backing a NULL slot (see Column.from_values)."""
    return _NULL_PLACEHOLDER.get(dtype, 0)


def _coerce(value, dtype: DataType):
    """Coerce a computed scalar to its column dtype, as Column storage would."""
    if value is None:
        return None
    if dtype == DataType.VARCHAR:
        return str(value)
    if dtype == DataType.BOOLEAN:
        return bool(value)
    if dtype == DataType.DOUBLE:
        return float(value)
    # BIGINT / TIMESTAMP: numpy astype truncates toward zero, as int() does.
    return int(value)


def eval_scalar(node: ex.Expr, row: Row):
    """Evaluate a bound expression against one row of Python values."""
    if isinstance(node, ex.BoundRef):
        try:
            return row[node.cid]
        except KeyError:
            raise ExecutionError(
                f"column #{node.cid} ({node.name or 'unnamed'}) missing from row"
            ) from None

    if isinstance(node, (ex.Literal, ex.Param)):
        # Shared coercion path: identical to the vectorised evaluation.
        return node.eval({}, 1).value_at(0)

    if isinstance(node, ex.BinOp):
        return _scalar_binop(node.op,
                             eval_scalar(node.left, row), node.left.dtype,
                             eval_scalar(node.right, row), node.right.dtype)

    if isinstance(node, ex.UnOp):
        v = eval_scalar(node.operand, row)
        if v is None:
            return None
        if node.op == "-":
            return _coerce(-v, node.operand.dtype)
        if node.op == "not":
            return not bool(v)
        raise ExecutionError(f"unknown unary operator {node.op}")

    if isinstance(node, ex.FuncCall):
        spec = ex.FUNCTIONS.get(node.name)
        if spec is None:
            raise ExecutionError(f"unknown function {node.name}")
        cols = [Column.from_values(a.dtype, [eval_scalar(a, row)])
                for a in node.args]
        return spec.impl(cols, 1).value_at(0)

    if isinstance(node, ex.Between):
        operand = eval_scalar(node.operand, row)
        lower = _scalar_binop(">=", operand, node.operand.dtype,
                              eval_scalar(node.low, row), node.low.dtype)
        upper = _scalar_binop("<=", operand, node.operand.dtype,
                              eval_scalar(node.high, row), node.high.dtype)
        both = _kleene_and(lower, upper)
        if both is None:
            return None
        return (not both) if node.negated else both

    if isinstance(node, ex.InList):
        operand = eval_scalar(node.operand, row)
        # Mirrors the vectorised raw-value OR: item NULLs compare through
        # their storage placeholder, and operand NULL-ness alone decides
        # the result's validity.
        raw = operand if operand is not None else _placeholder(node.operand.dtype)
        hit = False
        for item in node.items:
            iv = eval_scalar(item, row)
            if iv is None:
                iv = _placeholder(item.dtype)
            if _raw_compare("=", raw, node.operand.dtype, iv, item.dtype):
                hit = True
                break
        if node.negated:
            hit = not hit
        return None if operand is None else hit

    if isinstance(node, ex.IsNull):
        is_null = eval_scalar(node.operand, row) is None
        return (not is_null) if node.negated else is_null

    if isinstance(node, ex.Like):
        operand = eval_scalar(node.operand, row)
        if operand is None:
            return None
        hit = _like_matcher(node.pattern)(str(operand)) is not None
        return (not hit) if node.negated else hit

    if isinstance(node, ex.Case):
        for cond, value in node.whens:
            if eval_scalar(cond, row) is True:
                return eval_scalar(value, row)
        if node.default is not None:
            return eval_scalar(node.default, row)
        return None

    if isinstance(node, ex.Cast):
        return cast_scalar(eval_scalar(node.operand, row),
                           node.operand.dtype, node.target)

    if isinstance(node, ex.AggCall):
        raise ExecutionError(
            f"aggregate {node.name} outside an Aggregate operator"
        )

    raise ExecutionError(f"cannot evaluate {type(node).__name__} row-at-a-time")


@functools.lru_cache(maxsize=256)
def _like_matcher(pattern: str):
    import re

    return re.compile(ex._like_to_regex(pattern), re.DOTALL).fullmatch


def _raw_compare(op: str, lhs, ldt: DataType, rhs, rdt: DataType) -> bool:
    if ldt == DataType.VARCHAR or rdt == DataType.VARCHAR:
        lhs = str(lhs) if ldt == DataType.VARCHAR else lhs
        rhs = str(rhs) if rdt == DataType.VARCHAR else rhs
    return bool(_CMP[op](lhs, rhs))


def _kleene_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _kleene_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _scalar_binop(op: str, lhs, ldt: DataType, rhs, rdt: DataType):
    if op == "and":
        return _kleene_and(None if lhs is None else bool(lhs),
                           None if rhs is None else bool(rhs))
    if op == "or":
        return _kleene_or(None if lhs is None else bool(lhs),
                          None if rhs is None else bool(rhs))

    if lhs is None or rhs is None:
        return None

    if op in _CMP:
        return _raw_compare(op, lhs, ldt, rhs, rdt)

    if op in ("+", "-", "*", "/", "%"):
        if op == "/":
            if rhs == 0:
                return None
            value = lhs / rhs
        elif op == "%":
            if rhs == 0:
                return None
            value = lhs % rhs
        elif op == "+":
            value = lhs + rhs
        elif op == "-":
            value = lhs - rhs
        else:
            value = lhs * rhs
        # Result typing mirrors _eval_binop: timestamp arithmetic stays a
        # timestamp (difference of two is BIGINT), division is DOUBLE,
        # everything else follows numeric promotion.
        if ldt == DataType.TIMESTAMP or rdt == DataType.TIMESTAMP:
            both_ts = ldt == DataType.TIMESTAMP and rdt == DataType.TIMESTAMP
            dtype = (DataType.BIGINT if (op == "-" and both_ts)
                     else DataType.TIMESTAMP)
        elif op == "/":
            dtype = DataType.DOUBLE
        elif ldt == DataType.DOUBLE or rdt == DataType.DOUBLE:
            dtype = DataType.DOUBLE
        else:
            dtype = DataType.BIGINT
        return _coerce(value, dtype)

    raise ExecutionError(f"unknown binary operator {op}")


def cast_scalar(value, source: DataType, target: DataType):
    """Scalar twin of :func:`repro.db.expr.cast_column`."""
    if value is None or source == target:
        return value
    if target == DataType.VARCHAR:
        return render_value(value, source)
    if source == DataType.VARCHAR and target == DataType.TIMESTAMP:
        from repro.util.timefmt import parse_iso8601

        return parse_iso8601(str(value))
    if source == DataType.VARCHAR and target in (DataType.BIGINT,
                                                 DataType.DOUBLE):
        return int(str(value)) if target == DataType.BIGINT else float(str(value))
    try:
        return _coerce(value, target)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"cannot cast {source} to {target}") from exc


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------

_NAN_KEY = ("<nan>",)


def _hash_key(value):
    """Hashable group/join key: NaNs collapse, like np.unique's equal_nan."""
    if isinstance(value, float) and math.isnan(value):
        return _NAN_KEY
    return value


def _chunk_rows(chunk) -> list[Row]:
    cols = list(chunk.columns.items())
    return [{cid: col.value_at(i) for cid, col in cols}
            for i in range(chunk.length)]


def iter_rows(node: ph.PhysicalNode, ctx: ph.ExecutionContext) -> list[Row]:
    """Interpret a physical plan row-at-a-time; returns rows in order."""
    if isinstance(node, ph.PFilter):
        ctx.operators_run += 1
        return [row for row in iter_rows(node.child, ctx)
                if eval_scalar(node.predicate, row) is True]

    if isinstance(node, ph.PProject):
        ctx.operators_run += 1
        rows = iter_rows(node.child, ctx)
        return [{out.cid: eval_scalar(expr, row)
                 for out, expr in zip(node.schema, node.exprs)}
                for row in rows]

    if isinstance(node, ph.PLimit):
        ctx.operators_run += 1
        rows = iter_rows(node.child, ctx)
        start = node.offset
        stop = len(rows) if node.limit is None else start + node.limit
        return rows[start:stop]

    if isinstance(node, ph.PSort):
        ctx.operators_run += 1
        return _sort_rows(iter_rows(node.child, ctx), node.keys)

    if isinstance(node, ph.PDistinct):
        ctx.operators_run += 1
        seen: set = set()
        out = []
        for row in iter_rows(node.child, ctx):
            key = tuple(_hash_key(row[c.cid]) for c in node.schema)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    if isinstance(node, ph.PJoin):
        return _join_rows(node, ctx)

    if isinstance(node, ph.PAggregate):
        return _aggregate_rows(node, ctx)

    if isinstance(node, ph.PLazyFetch):
        return _lazy_fetch_rows(node, ctx)

    # Leaves (PTableScan / PDiskScan / PScanAll): the storage layer is
    # shared with the vectorised path — the oracle targets the executor,
    # not column materialisation.
    return _chunk_rows(node.execute(ctx))


# -- ORDER BY ----------------------------------------------------------------


def _sort_rows(rows: list[Row], keys) -> list[Row]:
    """Stable sort matching PSort's lexsort: NULLS LAST on every key
    regardless of direction (the null rank is never negated)."""
    decorated = [
        (tuple(eval_scalar(expr, row) for expr, _asc in keys), row)
        for row in rows
    ]
    directions = [asc for _expr, asc in keys]

    def compare(a, b) -> int:
        for ka, kb, ascending in zip(a[0], b[0], directions):
            if ka is None or kb is None:
                if ka is None and kb is None:
                    continue
                return 1 if ka is None else -1  # NULLS LAST, both directions
            a_nan = isinstance(ka, float) and math.isnan(ka)
            b_nan = isinstance(kb, float) and math.isnan(kb)
            if a_nan or b_nan:
                if a_nan and b_nan:
                    continue
                return 1 if a_nan else -1  # lexsort puts NaN last either way
            la = str(ka) if isinstance(ka, str) else ka
            lb = str(kb) if isinstance(kb, str) else kb
            if la == lb:
                continue
            verdict = -1 if la < lb else 1
            return verdict if ascending else -verdict
        return 0

    decorated.sort(key=functools.cmp_to_key(compare))
    return [row for _keys, row in decorated]


# -- Joins -------------------------------------------------------------------


def _hash_join(left_rows: list[Row], right_rows: list[Row],
               left_keys: list[int], right_keys: list[int]
               ) -> list[tuple[int, int]]:
    """(left, right) index pairs in the exact emission order of
    ``join_indices``: left rows in order, each paired with its matches in
    ascending right index.  NULL keys never match."""
    table: dict = {}
    for ri, row in enumerate(right_rows):
        key = tuple(row[cid] for cid in right_keys)
        if any(v is None for v in key):
            continue
        table.setdefault(tuple(_hash_key(v) for v in key), []).append(ri)
    pairs: list[tuple[int, int]] = []
    for li, row in enumerate(left_rows):
        key = tuple(row[cid] for cid in left_keys)
        if any(v is None for v in key):
            continue
        for ri in table.get(tuple(_hash_key(v) for v in key), ()):
            pairs.append((li, ri))
    return pairs


def _join_rows(node: ph.PJoin, ctx: ph.ExecutionContext) -> list[Row]:
    ctx.operators_run += 1
    left_rows = iter_rows(node.left, ctx)
    right_rows = iter_rows(node.right, ctx)

    if node.left_keys:
        pairs = _hash_join(left_rows, right_rows,
                           node.left_keys, node.right_keys)
    else:
        pairs = [(li, ri) for li in range(len(left_rows))
                 for ri in range(len(right_rows))]

    if node.residual is not None and pairs:
        pairs = [
            (li, ri) for li, ri in pairs
            if eval_scalar(node.residual,
                           {**left_rows[li], **right_rows[ri]}) is True
        ]

    merged = [{**left_rows[li], **right_rows[ri]} for li, ri in pairs]
    if node.kind == "left":
        # Matched bitmap is taken AFTER the residual, exactly like _run:
        # a left row whose only matches were vetoed is padded with NULLs.
        matched = {li for li, _ri in pairs}
        pad = {c.cid: None for c in node.right.schema}
        merged += [{**left_rows[li], **pad}
                   for li in range(len(left_rows)) if li not in matched]
    return merged


# -- Aggregation -------------------------------------------------------------


def _np_min(a: float, b: float) -> float:
    # np.minimum: NaN in either operand wins.
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return a if a <= b else b


def _np_max(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return a if a >= b else b


def _group_sort_key(key_values: tuple):
    out = []
    for v in key_values:
        if v is None:
            out.append((0, 0))
        elif isinstance(v, str):
            out.append((1, v))
        elif isinstance(v, float) and math.isnan(v):
            out.append((2, 0))  # np.unique sorts NaN after every number
        else:
            out.append((1, v))
    return tuple(out)


def _aggregate_rows(node: ph.PAggregate, ctx: ph.ExecutionContext) -> list[Row]:
    ctx.operators_run += 1
    rows = iter_rows(node.child, ctx)

    if not node.group_exprs and not rows:
        out: Row = {}
        for col, agg in zip(node.agg_cols, node.aggregates):
            out[col.cid] = 0 if agg.name == "count" else None
        return [out]

    # Group rows preserving first-occurrence key values; output order is
    # ascending combined code = lexicographic over key columns.
    groups: dict = {}
    grouped_rows: dict = {}
    for row in rows:
        key_values = tuple(eval_scalar(g, row) for g in node.group_exprs)
        key = tuple(_hash_key(v) for v in key_values)
        if key not in groups:
            groups[key] = key_values
            grouped_rows[key] = []
        grouped_rows[key].append(row)

    if node.group_exprs:
        ordered_keys = sorted(groups,
                              key=lambda k: _group_sort_key(groups[k]))
    else:
        ordered_keys = [()]
        groups.setdefault((), ())
        grouped_rows.setdefault((), rows)

    out_rows: list[Row] = []
    for key in ordered_keys:
        member_rows = grouped_rows[key]
        out: Row = {}
        for col, value in zip(node.group_cols, groups[key]):
            out[col.cid] = value
        for col, agg in zip(node.agg_cols, node.aggregates):
            out[col.cid] = _scalar_aggregate(agg, col.dtype, member_rows)
        out_rows.append(out)
    return out_rows


def _scalar_aggregate(agg: ex.AggCall, dtype: DataType,
                      member_rows: list[Row]):
    if agg.name == "count" and agg.arg is None:
        return len(member_rows)

    assert agg.arg is not None
    values = [eval_scalar(agg.arg, row) for row in member_rows]

    if agg.distinct:
        seen: set = set()
        deduped = []
        for v in values:
            if v is None:
                continue
            k = _hash_key(v)
            if k not in seen:
                seen.add(k)
                deduped.append(v)
        values = deduped

    n_valid = sum(1 for v in values if v is not None)

    if agg.name == "count":
        return n_valid

    if n_valid == 0:
        return None

    arg_dt = agg.arg.dtype
    if agg.name in ("min", "max") and arg_dt == DataType.VARCHAR:
        strs = [str(v) for v in values if v is not None]
        return min(strs) if agg.name == "min" else max(strs)

    if agg.name in ("min", "max"):
        # Replicates reducer.reduceat over np.where(valid, x, sentinel):
        # NULL rows contribute the sentinel, NaNs poison the group.
        sentinels = (ph._MIN_SENTINELS if agg.name == "min"
                     else ph._MAX_SENTINELS)
        sentinel = float(sentinels[arg_dt])
        pick = _np_min if agg.name == "min" else _np_max
        best: Optional[float] = None
        for v in values:
            work = float(v) if v is not None else sentinel
            best = work if best is None else pick(best, work)
        assert best is not None
        return _coerce(best, dtype)

    # sum / avg / stddev_samp reduce the group's values in row order
    # (NULL rows contribute 0.0, exactly like np.where(valid, x, 0.0)).
    # Float addition is order- AND algorithm-sensitive: a Python loop or
    # np.add.reduce are both ulps away from np.add.reduceat's inner loop,
    # so the reduction primitive itself is part of the semantics the
    # oracle pins — the reference applies the same ufunc method to the
    # same values in the same order.
    work = np.array([float(v) if v is not None else 0.0 for v in values],
                    dtype=np.float64)
    acc = float(np.add.reduceat(work, [0])[0])

    if agg.name == "sum":
        return _coerce(acc, dtype)
    if agg.name == "avg":
        return acc / n_valid
    if agg.name == "stddev_samp":
        if n_valid <= 1:
            return None
        sq = float(np.add.reduceat(work * work, [0])[0])
        n = float(n_valid)
        variance = (sq - acc * acc / n) / (n - 1.0)
        if not math.isnan(variance):
            variance = max(variance, 0.0)
        return math.sqrt(variance) if variance >= 0 else math.nan
    if agg.name == "median":
        seg = np.array([float(v) for v in values if v is not None],
                       dtype=np.float64)
        return _coerce(float(np.median(seg)), dtype)
    raise ExecutionError(f"unknown aggregate {agg.name}")


# -- Lazy fetch (the run-time rewrite point) --------------------------------


def _lazy_fetch_rows(node: ph.PLazyFetch, ctx: ph.ExecutionContext
                     ) -> list[Row]:
    import time as _time

    ctx.operators_run += 1
    lg_node = node.node
    binding = lg_node.binding
    key_names = list(binding.key_columns)
    meta_rows = iter_rows(node.meta, ctx)

    if not meta_rows:
        ctx.trace.append({"op": "rewrite", "table": lg_node.table_name,
                          "files": 0, "note": "metadata selected nothing"})
        return []

    meta_dtypes = {c.cid: c.dtype for c in node.meta.schema}
    keys = {}
    for name, cid in zip(key_names, lg_node.meta_key_cids):
        keys[name] = Column.from_values(
            meta_dtypes[cid], [row[cid] for row in meta_rows]
        ).values
    time_bounds = node._resolve_time_bounds()
    ctx.trace.append({
        "op": "rewrite",
        "table": lg_node.table_name,
        "meta_rows": len(meta_rows),
        "needed": list(lg_node.needed),
        "time_bounds": time_bounds,
    })
    started = _time.perf_counter()
    trace_start = len(ctx.trace)
    named = binding.fetch(keys, list(lg_node.needed), time_bounds, ctx.trace)
    elapsed = _time.perf_counter() - started
    ph._collect_file_deps(ctx, trace_start, binding)
    lazy_len = len(next(iter(named.values()))) if named else 0
    ctx.rows_extracted += lazy_len
    ctx.oplog.record(
        "extract", f"lazy fetch from {lg_node.table_name}",
        rows=lazy_len, seconds=round(elapsed, 4),
    )

    name_to_cid = {c.name: c.cid for c in lg_node.lazy_output}
    lazy_cols = {name_to_cid[n]: col for n, col in named.items()
                 if n in name_to_cid}
    lazy_rows = [
        {cid: col.value_at(i) for cid, col in lazy_cols.items()}
        for i in range(lazy_len)
    ]

    for residual in lg_node.residuals:
        if not lazy_rows:
            break
        lazy_rows = [row for row in lazy_rows
                     if eval_scalar(residual, row) is True]

    right_keys = [name_to_cid[n] for n in key_names]
    pairs = _hash_join(meta_rows, lazy_rows,
                       lg_node.meta_key_cids, right_keys)
    return [{**meta_rows[li], **lazy_rows[ri]} for li, ri in pairs]


# ---------------------------------------------------------------------------
# Materialisation
# ---------------------------------------------------------------------------


def rows_to_columns(rows: list[Row], output) -> dict[int, Column]:
    """Pack interpreter rows back into columns for Result construction."""
    return {
        out.cid: Column.from_values(out.dtype,
                                    [row[out.cid] for row in rows])
        for out in output
    }


def execute_rowpath(physical: ph.PhysicalNode, output,
                    ctx: ph.ExecutionContext) -> tuple[dict[int, Column], int]:
    """Run the plan through the scalar interpreter; returns (columns, rows)."""
    rows = iter_rows(physical, ctx)
    return rows_to_columns(rows, output), len(rows)
