"""Execution layer: engine facade, result sets, intermediate recycling.

The engine itself is imported via ``repro.db.exec.engine`` (not re-exported
here) to keep the package import graph acyclic: the physical operators
depend on the recycler, and the engine depends on the physical operators.
"""

from repro.db.exec.recycler import Recycler, signature_of
from repro.db.exec.result import Result

__all__ = ["Recycler", "signature_of", "Result"]
