"""The Database facade: parse → bind → optimise → execute.

This is the MonetDB stand-in the demo drives.  Besides running SQL it
exposes the introspection surface the demo scenario needs:

* :meth:`Database.explain` — compile-time plans before/after optimisation
  plus the physical plan (demo items 4 and 6),
* :attr:`Database.last_trace` — the operators injected at run time by the
  rewriting operator (demo item 5),
* :attr:`Database.recycler` — cache contents and update behaviour (7),
* :attr:`Database.oplog` — the ordered operation log (8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.db import expr as ex
from repro.db.catalog import Catalog, LazyTableBinding
from repro.db.column import Column
from repro.db.exec.recycler import Recycler
from repro.db.exec.result import Result
from repro.db.plan import explain as explain_mod
from repro.db.plan.logical import LogicalNode, bind_select
from repro.db.plan.optimizer import optimize
from repro.db.plan.physical import (
    Chunk,
    ExecutionContext,
    PhysicalNode,
    build_physical,
)
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.db.table import ColumnSpec, ForeignKeySpec, Table, TableSchema
from repro.db.types import DataType, type_from_name
from repro.errors import BindError, DatabaseError, ExecutionError, SQLError
from repro.util.oplog import OperationLog


@dataclass
class QueryReport:
    """Timings and counters for the most recent query."""

    sql: str = ""
    parse_s: float = 0.0
    bind_s: float = 0.0
    optimize_s: float = 0.0
    execute_s: float = 0.0
    rows_out: int = 0
    rows_extracted: int = 0
    operators_run: int = 0
    # Disk-backed scan I/O (storage engine): pages fetched vs pages of
    # columns the query never touched.
    pages_read: int = 0
    pages_skipped: int = 0
    # Concurrent serving: rows this query's session extracted itself vs
    # rows it obtained by waiting on another session's in-flight
    # extraction (single-flight coalescing).
    rows_extracted_here: int = 0
    rows_coalesced: int = 0

    @property
    def total_s(self) -> float:
        return self.parse_s + self.bind_s + self.optimize_s + self.execute_s


class Database:
    """An in-process analytical database with Lazy-ETL hooks."""

    def __init__(
        self,
        *,
        oplog: Optional[OperationLog] = None,
        recycler_budget_bytes: int = 64 * 1024 * 1024,
        recycler_policy: str = "lru",
        enable_recycler: bool = True,
        enable_lazy_rewrite: bool = True,
        enable_pruning: bool = True,
    ) -> None:
        self.catalog = Catalog()
        # Explicit None check: an empty OperationLog is falsy (len == 0).
        self.oplog = oplog if oplog is not None else OperationLog()
        self.recycler: Optional[Recycler] = (
            Recycler(recycler_budget_bytes, recycler_policy)
            if enable_recycler else None
        )
        self.enable_lazy_rewrite = enable_lazy_rewrite
        self.enable_pruning = enable_pruning
        self.last_trace: list[dict] = []
        self.last_plan_logical: Optional[LogicalNode] = None
        self.last_plan_optimized: Optional[LogicalNode] = None
        self.last_plan_physical: Optional[PhysicalNode] = None
        self.last_report = QueryReport()

    # -- public API -----------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Run any statement; DDL/DML return a one-cell status result."""
        stmt = parse_statement(sql)
        if isinstance(stmt, ast.SelectStmt):
            return self._run_select(stmt, sql)
        if isinstance(stmt, ast.ExplainStmt):
            text = self._explain_select(stmt.select)
            return Result(["plan"],
                          [Column.from_values(DataType.VARCHAR, [text])])
        handler = {
            ast.CreateTableStmt: self._create_table,
            ast.CreateViewStmt: self._create_view,
            ast.CreateSchemaStmt: self._create_schema,
            ast.DropStmt: self._drop,
            ast.InsertStmt: self._insert,
            ast.DeleteStmt: self._delete,
            ast.UpdateStmt: self._update,
        }.get(type(stmt))
        if handler is None:
            raise SQLError(f"unsupported statement {type(stmt).__name__}")
        message = handler(stmt)  # type: ignore[arg-type]
        return Result(["status"],
                      [Column.from_values(DataType.VARCHAR, [message])])

    def query(self, sql: str) -> Result:
        """Run a SELECT (raises on anything else)."""
        stmt = parse_statement(sql)
        if isinstance(stmt, ast.SelectStmt):
            return self._run_select(stmt, sql)
        raise SQLError("query() requires a SELECT statement")

    def explain(self, sql: str) -> str:
        """Compile-time plan report for a SELECT."""
        stmt = parse_statement(sql)
        if isinstance(stmt, ast.ExplainStmt):
            stmt = stmt.select
        if not isinstance(stmt, ast.SelectStmt):
            raise SQLError("explain() requires a SELECT statement")
        return self._explain_select(stmt)

    # -- SELECT path ------------------------------------------------------------

    def _compile(self, stmt: ast.SelectStmt) -> tuple[LogicalNode, LogicalNode,
                                                      PhysicalNode]:
        naive = bind_select(self.catalog, stmt)
        # Bind twice: optimisation mutates nodes, and we keep the pre-
        # optimisation plan for EXPLAIN/demo display.
        bound = bind_select(self.catalog, stmt)
        optimized = optimize(
            bound,
            enable_lazy_rewrite=self.enable_lazy_rewrite,
            enable_pruning=self.enable_pruning,
        )
        physical = build_physical(optimized, self.recycler)
        return naive, optimized, physical

    def _run_select(self, stmt: ast.SelectStmt, sql: str) -> Result:
        result, _report, _trace = self._execute_select(stmt, sql)
        return result

    def query_with_report(self, sql: str) -> tuple[Result, QueryReport,
                                                   list[dict]]:
        """Run a SELECT and return its private report and trace.

        This is the concurrency-safe entry point the query service uses:
        each call gets its own :class:`QueryReport` and trace list, so
        parallel sessions never read each other's ``last_report``.  (The
        ``last_*`` introspection attributes are still updated — they are
        last-writer-wins under concurrency, by design.)
        """
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.SelectStmt):
            raise SQLError("query_with_report() requires a SELECT statement")
        return self._execute_select(stmt, sql)

    def _execute_select(self, stmt: ast.SelectStmt, sql: str
                        ) -> tuple[Result, QueryReport, list[dict]]:
        report = QueryReport(sql=sql)
        started = time.perf_counter()
        naive, optimized, physical = self._compile(stmt)
        report.bind_s = time.perf_counter() - started

        self.last_plan_logical = naive
        self.last_plan_optimized = optimized
        self.last_plan_physical = physical

        ctx = ExecutionContext(oplog=self.oplog, recycler=self.recycler)
        self.oplog.record("query", "execute",
                          sql=sql[:120].replace("\n", " "))
        started = time.perf_counter()
        chunk = physical.execute(ctx)
        report.execute_s = time.perf_counter() - started
        report.rows_out = chunk.length
        report.rows_extracted = ctx.rows_extracted
        report.operators_run = ctx.operators_run
        report.pages_read = ctx.pages_read
        report.pages_skipped = ctx.pages_skipped
        for entry in ctx.trace:
            if entry.get("op") == "extract":
                report.rows_extracted_here += entry.get("rows", 0)
            elif entry.get("op") == "extract_wait":
                report.rows_coalesced += entry.get("rows", 0)
        self.last_trace = ctx.trace
        self.last_report = report
        self.oplog.record(
            "query", "done",
            rows=chunk.length,
            seconds=round(report.execute_s, 4),
            extracted=ctx.rows_extracted,
        )
        names = [c.name for c in optimized.output]
        columns = [chunk.columns[c.cid] for c in optimized.output]
        return Result(names, columns), report, ctx.trace

    def _explain_select(self, stmt: ast.SelectStmt) -> str:
        naive, optimized, physical = self._compile(stmt)
        sections = [
            "== logical plan (as bound) ==",
            explain_mod.render_logical(naive),
            "",
            "== logical plan (optimised: metadata first, lazy rewrite points) ==",
            explain_mod.render_logical(optimized),
            "",
            "== physical plan ==",
            explain_mod.render_physical(physical),
        ]
        return "\n".join(sections)

    def render_last_trace(self) -> str:
        """The operators injected at run time by the last query (demo 5/6)."""
        return explain_mod.render_trace(self.last_trace)

    # -- DDL -----------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTableStmt) -> str:
        specs = [
            ColumnSpec(name=c.name.lower(), dtype=type_from_name(c.type_name),
                       not_null=c.not_null)
            for c in stmt.columns
        ]
        fks = []
        for fk in stmt.foreign_keys:
            schema_name, table_name = self.catalog.split_name(fk.ref_table)
            fks.append(
                ForeignKeySpec(
                    columns=tuple(c.lower() for c in fk.columns),
                    ref_table=f"{schema_name}.{table_name}",
                    ref_columns=tuple(c.lower() for c in fk.ref_columns),
                )
            )
        schema = TableSchema(
            columns=specs,
            primary_key=tuple(c.lower() for c in stmt.primary_key),
            foreign_keys=fks,
        )
        self.catalog.create_table(stmt.name, schema,
                                  if_not_exists=stmt.if_not_exists)
        self.oplog.record("ddl", f"create table {'.'.join(stmt.name)}",
                          columns=len(specs))
        return f"table {'.'.join(stmt.name)} created"

    def _create_view(self, stmt: ast.CreateViewStmt) -> str:
        # Validate the view body by binding it now (against current catalog).
        bind_select(self.catalog, stmt.select)
        self.catalog.create_view(stmt.name, stmt.select, stmt.sql_text)
        self.oplog.record("ddl", f"create view {'.'.join(stmt.name)}")
        return f"view {'.'.join(stmt.name)} created"

    def _create_schema(self, stmt: ast.CreateSchemaStmt) -> str:
        self.catalog.create_schema(stmt.name, if_not_exists=stmt.if_not_exists)
        self.oplog.record("ddl", f"create schema {stmt.name}")
        return f"schema {stmt.name} created"

    def _drop(self, stmt: ast.DropStmt) -> str:
        if stmt.kind == "table":
            self.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
        elif stmt.kind == "view":
            self.catalog.drop_view(stmt.name, if_exists=stmt.if_exists)
        else:
            self.catalog.drop_schema(stmt.name[0], if_exists=stmt.if_exists)
        self.oplog.record("ddl", f"drop {stmt.kind} {'.'.join(stmt.name)}")
        return f"{stmt.kind} {'.'.join(stmt.name)} dropped"

    # -- DML -----------------------------------------------------------------------

    def _eval_literal_row(self, exprs: Sequence[ex.Expr]) -> list:
        from repro.db.plan.logical import Binder, _Scope

        binder = Binder(self.catalog)
        scope = _Scope([])
        values = []
        for expr in exprs:
            bound = binder.bind_expr(expr, scope)
            col = bound.eval({}, 1)
            values.append(col.value_at(0))
        return values

    def _insert(self, stmt: ast.InsertStmt) -> str:
        table = self.catalog.table(stmt.table)
        target_cols = (
            [c.lower() for c in stmt.columns]
            if stmt.columns is not None
            else table.schema.names
        )
        unknown = set(target_cols) - set(table.schema.names)
        if unknown:
            raise BindError(f"unknown insert columns {sorted(unknown)}")
        rows = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(target_cols):
                raise ExecutionError("INSERT arity mismatch")
            rows.append(self._eval_literal_row(row_exprs))
        data: dict[str, list] = {name: [] for name in table.schema.names}
        position = {name: i for i, name in enumerate(target_cols)}
        for row in rows:
            for name in table.schema.names:
                if name in position:
                    value = row[position[name]]
                    spec = table.schema.spec(name)
                    if value is not None:
                        from repro.db.types import coerce_literal

                        value = coerce_literal(value, spec.dtype)
                    data[name].append(value)
                else:
                    data[name].append(None)
        count = table.append_pydict(data)
        self._invalidate_for(table)
        self.oplog.record("dml", f"insert into {table.name}", rows=count)
        return f"{count} rows inserted into {table.name}"

    def bulk_insert(self, parts: tuple[str, ...],
                    data: Mapping[str, "np.ndarray | Column | list"],
                    *, enforce_keys: bool = False) -> int:
        """Bulk load aligned columns (the eager ETL load path)."""
        table = self.catalog.table(parts)
        batch: dict[str, Column] = {}
        for spec in table.schema.columns:
            if spec.name not in data:
                raise ExecutionError(f"bulk insert missing column {spec.name!r}")
            value = data[spec.name]
            if isinstance(value, Column):
                batch[spec.name] = value
            elif isinstance(value, np.ndarray):
                batch[spec.name] = Column.from_numpy(spec.dtype, value)
            else:
                batch[spec.name] = Column.from_values(spec.dtype, value)
        count = table.append_batch(batch, enforce_keys=enforce_keys)
        self._invalidate_for(table)
        self.oplog.record("load", f"bulk load {table.name}", rows=count)
        return count

    def _table_scope_frame(self, table: Table):
        from repro.db.plan.logical import FromEntry, _Scope
        from repro.db.plan.logical import OutCol

        cols = []
        frame = {}
        for index, spec in enumerate(table.schema.columns, start=1):
            cols.append(OutCol(cid=index, name=spec.name, dtype=spec.dtype))
            frame[index] = table.column(spec.name)
        scope = _Scope([FromEntry(alias=table.name.split(".")[-1], columns=cols)])
        return scope, frame

    def _delete(self, stmt: ast.DeleteStmt) -> str:
        from repro.db.plan.logical import Binder

        table = self.catalog.table(stmt.table)
        if stmt.where is None:
            removed = table.row_count
            table.truncate()
        else:
            scope, frame = self._table_scope_frame(table)
            predicate = Binder(self.catalog).bind_expr(stmt.where, scope)
            mask = ex.predicate_mask(predicate.eval(frame, table.row_count))
            removed = table.delete_where(mask)
        self._invalidate_for(table)
        self.oplog.record("dml", f"delete from {table.name}", rows=removed)
        return f"{removed} rows deleted from {table.name}"

    def _update(self, stmt: ast.UpdateStmt) -> str:
        from repro.db.plan.logical import Binder

        table = self.catalog.table(stmt.table)
        scope, frame = self._table_scope_frame(table)
        binder = Binder(self.catalog)
        if stmt.where is None:
            mask = np.ones(table.row_count, dtype=bool)
        else:
            predicate = binder.bind_expr(stmt.where, scope)
            mask = ex.predicate_mask(predicate.eval(frame, table.row_count))
        assignments: dict[str, Column] = {}
        for name, expr in stmt.assignments:
            spec = table.schema.spec(name.lower())
            bound = binder.bind_expr(expr, scope)
            value_col = bound.eval(frame, table.row_count)
            if value_col.dtype != spec.dtype:
                from repro.db.expr import cast_column

                value_col = cast_column(value_col, spec.dtype)
            assignments[name.lower()] = value_col
        touched = table.update_rows(mask, assignments)
        self._invalidate_for(table)
        self.oplog.record("dml", f"update {table.name}", rows=touched)
        return f"{touched} rows updated in {table.name}"

    # -- maintenance -----------------------------------------------------------------

    def _invalidate_for(self, table: Table) -> None:
        # Signatures embed table versions, so stale entries can never be
        # hit again; drop them eagerly to release cache budget.
        if self.recycler is not None:
            self.recycler.invalidate_matching(f"scan({table.name}@")

    def table(self, name: str) -> Table:
        """Convenience: fetch a table by dotted name."""
        return self.catalog.table(tuple(name.split(".")))

    def register_lazy_table(self, name: str, binding: LazyTableBinding) -> None:
        """Register an ETL binding making ``name`` a virtual, lazy table."""
        self.catalog.bind_lazy(tuple(name.split(".")), binding)
        self.oplog.record("etl", f"lazy binding registered for {name}",
                          keys=",".join(binding.key_columns))

    def warehouse_bytes(self) -> int:
        """Total resident bytes across all base tables (experiment E4)."""
        return sum(t.memory_bytes() for t in self.catalog.tables())

    # -- persistent storage ----------------------------------------------------------

    def attach(self, storage, *, bufferpool_bytes: int = 64 * 1024 * 1024):
        """Attach a persistent table store (path or open TableStore).

        Persisted tables become queryable immediately; their columns are
        read from disk lazily, page by page, when scans need them.
        """
        store = self.catalog.attach(storage,
                                    bufferpool_bytes=bufferpool_bytes)
        self.oplog.record("storage", f"attached store at {store.root}",
                          tables=len(store.table_names()))
        return store

    def checkpoint(self) -> list[str]:
        """Persist mutated tables to the attached store (atomic commit)."""
        written = self.catalog.checkpoint()
        self.oplog.record("storage", "checkpoint",
                          tables_written=len(written))
        return written
