"""The Database facade: parse → bind → optimise → execute.

This is the MonetDB stand-in the demo drives.  Besides running SQL it
exposes the introspection surface the demo scenario needs:

* :meth:`Database.explain` — compile-time plans before/after optimisation
  plus the physical plan (demo items 4 and 6),
* :attr:`Database.last_trace` — the operators injected at run time by the
  rewriting operator (demo item 5),
* :attr:`Database.recycler` — cache contents and update behaviour (7),
* :attr:`Database.oplog` — the ordered operation log (8).

Query compilation is **plan-cached**: compiled SELECT plans are kept in a
size-bounded LRU keyed by (normalised SQL text, catalog schema
epoch), so re-running the same — or the same *parameterised* — statement
skips parsing, binding and optimisation entirely.  DDL bumps the schema
epoch (every cached plan becomes unreachable); DML evicts the plans that
scan the mutated table through the same :meth:`Database._invalidate_for`
path that already drops recycler intermediates.

Execution comes in two shapes: the classic materialised
:class:`~repro.db.exec.result.Result`, and :class:`StreamingQuery` — the
cursor path — which pulls the final projection in row batches so
consumption can start before the full result (or, behind a LIMIT, even
the full extraction) exists.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.db import expr as ex
from repro.db.catalog import Catalog, LazyTableBinding
from repro.db.column import Column
from repro.db.exec.recycler import Recycler
from repro.db.exec.result import Result
from repro.db.plan import explain as explain_mod
from repro.db.plan.logical import LogicalNode, bind_select
from repro.db.plan.optimizer import optimize
from repro.db.plan.physical import (
    DEFAULT_BATCH_ROWS,
    ExecutionContext,
    PhysicalNode,
    build_physical,
)
from repro.db.sql import ast
from repro.db.sql.parameters import (
    ParamSpec,
    collect_bound_params,
    resolve_param_values,
    substitute_ast_params,
)
from repro.db.sql.parser import parse_prepared, parse_statement
from repro.db.table import ColumnSpec, ForeignKeySpec, Table, TableSchema
from repro.db.types import DataType, type_from_name
from repro.errors import BindError, ExecutionError, SQLError
from repro.obs import journal as journal_mod
from repro.obs.journal import QueryJournal
from repro.obs.tracing import QueryProfile, span_tree
from repro.util.oplog import OperationLog

logger = logging.getLogger("repro.db.engine")

ParamValues = "Sequence | Mapping | None"


@dataclass
class QueryReport:
    """Timings and counters for the most recent query."""

    sql: str = ""
    parse_s: float = 0.0
    bind_s: float = 0.0
    optimize_s: float = 0.0
    execute_s: float = 0.0
    rows_out: int = 0
    rows_extracted: int = 0
    operators_run: int = 0
    # Whether compilation was satisfied from the plan cache (parse/bind/
    # optimize were skipped; parse_s then only covers lexing the key).
    plan_cache_hit: bool = False
    # Disk-backed scan I/O (storage engine): pages fetched vs pages of
    # columns the query never touched.
    pages_read: int = 0
    pages_skipped: int = 0
    # Pages of projected columns a zone map proved dead for the scan's
    # pushed-down conjuncts (skipped before decode).
    pages_skipped_zone: int = 0
    # Concurrent serving: rows this query's session extracted itself vs
    # rows it obtained by waiting on another session's in-flight
    # extraction (single-flight coalescing).
    rows_extracted_here: int = 0
    rows_coalesced: int = 0
    # Adaptive promotion: rows served from eagerly materialized
    # (promoted) segments instead of extraction, and how many promoted
    # units this query read.
    rows_served_eager: int = 0
    promotions: int = 0
    # sys.queries correlation: the journal entry id this execution wrote
    # (0 until journaled) and a short stable hash of its bound parameter
    # values ("" for parameterless runs).  Slow-log lines and bench JSON
    # carry both, so any log record joins back to the query journal.
    journal_id: int = 0
    params_hash: str = ""
    # The query's span tree (repro.obs.tracing.span_tree), filled when
    # the engine ran with trace_spans on or under EXPLAIN ANALYZE.
    # Excluded from equality: two runs with identical counters are the
    # same report even though their span timings always differ.
    spans: Optional[dict] = field(default=None, repr=False, compare=False)

    @property
    def plan_s(self) -> float:
        """Compile-side cost: parse + bind + optimise."""
        return self.parse_s + self.bind_s + self.optimize_s

    @property
    def total_s(self) -> float:
        return self.parse_s + self.bind_s + self.optimize_s + self.execute_s

    def to_dict(self, *, include_spans: bool = False) -> dict:
        """Every timing and counter as plain data.

        Field-driven on purpose: counters added to the dataclass in
        later PRs land in bench JSON artifacts and service logs without
        anyone re-listing them.
        """
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self) if f.name != "spans"
        }
        data["plan_s"] = self.plan_s
        data["total_s"] = self.total_s
        if include_spans and self.spans is not None:
            data["spans"] = self.spans
        return data


@dataclass
class _CachedPlan:
    """One compiled SELECT, shareable across executions and threads.

    Physical operators are stateless at execution time (all run-time
    state lives in the per-execution :class:`ExecutionContext`, and
    parameter values travel through a context variable), so one compiled
    plan safely serves concurrent sessions.
    """

    stmt: ast.SelectStmt
    naive: LogicalNode
    optimized: LogicalNode
    physical: PhysicalNode
    spec: ParamSpec
    bound_params: list = field(default_factory=list)
    tables: frozenset = frozenset()
    # When a shard router wrapped ``physical`` in a scatter-gather node,
    # the original single-process plan is preserved here so the rowpath
    # oracle (and anything that needs an in-process plan) still has one.
    physical_local: Optional[PhysicalNode] = None


@dataclass
class _CachedStatement:
    """A parsed non-SELECT statement (no plan to cache, but repeat
    executions — ``executemany`` DML batches especially — skip lexing
    and parsing).  Safe to share: execution resolves table names against
    the live catalog and parameter substitution never mutates the AST.
    """

    stmt: ast.Statement
    spec: ParamSpec
    # Non-SELECT statements resolve table names at execution time, so
    # DML never invalidates them; present for uniform cache handling.
    tables: frozenset = frozenset()


def _fold_trace_counters(report: QueryReport, trace: list[dict]) -> None:
    """Accumulate per-operator trace entries into the query report.

    Shared by the materialised and streaming execution paths so the
    extraction/coalescing/promotion counters can never drift apart.
    """
    for entry in trace:
        op = entry.get("op")
        if op == "extract":
            report.rows_extracted_here += entry.get("rows", 0)
        elif op == "extract_wait":
            report.rows_coalesced += entry.get("rows", 0)
        elif op == "promoted_fetch":
            report.rows_served_eager += entry.get("rows", 0)
            report.promotions += entry.get("records", 0)
            # Promoted reads are disk-backed page I/O like PDiskScan's.
            report.pages_read += entry.get("pages_read", 0)
        elif op == "shard_partial":
            # Work a shard worker did on the parent's behalf counts in
            # the parent's report just as if it had run in-process.
            report.rows_extracted_here += entry.get("rows_extracted_here", 0)
            report.rows_coalesced += entry.get("rows_coalesced", 0)
            report.rows_served_eager += entry.get("rows_served_eager", 0)


def _fill_ctx_counters(report: QueryReport, ctx: ExecutionContext) -> None:
    """Copy execution-context counters into the report (all paths)."""
    report.rows_extracted = ctx.rows_extracted
    report.operators_run = ctx.operators_run
    report.pages_read = ctx.pages_read
    report.pages_skipped = ctx.pages_skipped
    report.pages_skipped_zone = ctx.pages_skipped_zone
    _fold_trace_counters(report, ctx.trace)


def _plan_tables(node: LogicalNode) -> set[str]:
    """Qualified names of every base/lazy table a plan touches."""
    from repro.db.plan import logical as lg

    names: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, lg.LScan):
            names.add(current.qualified_name)
        elif isinstance(current, (lg.LScanAll, lg.LLazyFetch)):
            names.add(current.table_name)
        stack.extend(current.children())
    return names


class CompletedQuery:
    """An already-materialised execution behind the cursor protocol.

    DDL/DML statements, EXPLAIN, and queries served remotely by a
    :class:`~repro.service.service.WarehouseService` finish before the
    cursor sees them; this adapter gives them the same ``names`` /
    ``dtypes`` / ``batches()`` surface a :class:`StreamingQuery` has.
    """

    def __init__(self, result: Result, report: "QueryReport",
                 trace: list[dict], *, is_rowset: bool = True,
                 rowcount: Optional[int] = None) -> None:
        self.result = result
        self.report = report
        self.trace = trace
        self.is_rowset = is_rowset
        self.rowcount = (rowcount if rowcount is not None
                         else result.row_count if is_rowset else -1)

    @property
    def names(self) -> list[str]:
        return self.result.names

    @property
    def dtypes(self) -> list[DataType]:
        return self.result.dtypes

    def batches(self):
        if self.is_rowset and self.result.row_count:
            yield self.result

    def close(self) -> None:  # protocol symmetry with StreamingQuery
        pass


class StreamingQuery:
    """One SELECT being pulled in row batches (the cursor fast path).

    The final projection streams out of :meth:`PhysicalNode.
    execute_batches`: fully streamable plans (scan → filter → project
    [→ limit]) yield their first rows before the scan's full output is
    ever materialised, and a LIMIT stops upstream work early.  Plans
    with pipeline breakers (aggregate, sort, join) materialise at the
    breaker and stream the tail above it.

    The per-query :class:`QueryReport` fills progressively;
    counters and the oplog "done" record land when the stream is
    exhausted or :meth:`close` is called.
    """

    def __init__(self, db: "Database", entry: _CachedPlan, sql: str,
                 values: Optional[dict], report: "QueryReport",
                 batch_rows: int) -> None:
        self.db = db
        self.entry = entry
        self.sql = sql
        self.report = report
        self.is_rowset = True
        self.names = [c.name for c in entry.optimized.output]
        self.dtypes = [c.dtype for c in entry.optimized.output]
        self.rowcount = -1  # unknown until the stream is exhausted
        self._values = values
        report.params_hash = journal_mod.params_hash(values)
        self._ctx = ExecutionContext(oplog=db.oplog, recycler=db.recycler)
        self.trace = self._ctx.trace
        self._finished = False
        db.last_plan_logical = entry.naive
        db.last_plan_optimized = entry.optimized
        db.last_plan_physical = entry.physical
        db.oplog.record("query", "execute (streaming)",
                        sql=sql[:120].replace("\n", " "))
        self._gen = entry.physical.execute_batches(self._ctx, batch_rows)

    def batches(self):
        """Yield one :class:`Result` per row batch of the projection."""
        out_cols = self.entry.optimized.output
        while not self._finished:
            started = time.perf_counter()
            try:
                # Parameter values are (re)installed around every pull:
                # interleaved cursors on one thread must each see their
                # own bindings.
                with ex.active_params(self._values):
                    chunk = next(self._gen)
            except StopIteration:
                self.report.execute_s += time.perf_counter() - started
                self._finalize()
                return
            except Exception as exc:
                self.report.execute_s += time.perf_counter() - started
                self._finalize(status="error", error=str(exc))
                raise
            self.report.execute_s += time.perf_counter() - started
            self.report.rows_out += chunk.length
            yield Result(self.names,
                         [chunk.columns[c.cid] for c in out_cols])

    def close(self) -> None:
        """Abandon the stream (partial consumption still reports)."""
        if not self._finished:
            self._gen.close()
            self._finalize()

    def _finalize(self, *, status: str = "ok", error: str = "") -> None:
        if self._finished:
            return
        self._finished = True
        ctx, report = self._ctx, self.report
        _fill_ctx_counters(report, ctx)
        # A closed-early stream journals as "ok": partial consumption
        # (e.g. a satisfied LIMIT at the cursor) is a finished query.
        report.journal_id = self.db.journal.record_report(
            report, status=status, error=error)
        if self.db.trace_spans:
            # Streaming pulls through execute_batches, which bypasses the
            # profiled execute path: query-level phases are exact, and
            # trace events become the execute span's children.
            report.spans = span_tree(self.sql, report, None, ctx.trace)
        self.rowcount = report.rows_out
        self.db.last_trace = ctx.trace
        self.db.last_report = report
        self.db.oplog.record(
            "query", "done",
            rows=report.rows_out,
            seconds=round(report.execute_s, 4),
            extracted=ctx.rows_extracted,
        )


class Database:
    """An in-process analytical database with Lazy-ETL hooks."""

    def __init__(
        self,
        *,
        oplog: Optional[OperationLog] = None,
        recycler_budget_bytes: int = 64 * 1024 * 1024,
        recycler_policy: str = "lru",
        enable_recycler: bool = True,
        enable_lazy_rewrite: bool = True,
        enable_pruning: bool = True,
        plan_cache_size: int = 128,
        trace_spans: bool = False,
        journal: Optional[QueryJournal] = None,
        journal_capacity: int = journal_mod.DEFAULT_JOURNAL_CAPACITY,
    ) -> None:
        self.catalog = Catalog()
        # Every finished SELECT (materialised, streaming or rowpath;
        # success or failure) lands in the journal, queryable as
        # sys.queries / sys.sessions on any connection.
        self.journal = journal if journal is not None \
            else QueryJournal(journal_capacity)
        # Imported here, not at module top: systables needs the table
        # layer, whose package init imports this engine module.
        from repro.obs.systables import install_engine_system_tables

        install_engine_system_tables(self)
        # Explicit None check: an empty OperationLog is falsy (len == 0).
        self.oplog = oplog if oplog is not None else OperationLog()
        self.recycler: Optional[Recycler] = (
            Recycler(recycler_budget_bytes, recycler_policy)
            if enable_recycler else None
        )
        self.enable_lazy_rewrite = enable_lazy_rewrite
        self.enable_pruning = enable_pruning
        # When on, every query carries a span tree in ``report.spans``
        # (operator frames on the materialised path; trace-event spans on
        # the streaming path, whose operator overrides bypass profiling).
        self.trace_spans = trace_spans
        self.plan_cache_size = plan_cache_size
        self._plan_cache: \
            "OrderedDict[tuple, _CachedPlan | _CachedStatement]" = \
            OrderedDict()
        # Service worker threads compile and invalidate concurrently.
        self._plan_lock = threading.RLock()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.last_trace: list[dict] = []
        self.last_plan_logical: Optional[LogicalNode] = None
        self.last_plan_optimized: Optional[LogicalNode] = None
        self.last_plan_physical: Optional[PhysicalNode] = None
        self.last_report = QueryReport()
        # Sharded scatter-gather hook: when a warehouse enables sharding
        # it installs a repro.shard.gather.ShardRouter here; every plan-
        # cache miss is offered to it.  None (the default) leaves the
        # compile path byte-identical to the single-process engine.
        self.shard_router = None

    # -- public API -----------------------------------------------------------

    def execute(self, sql: str, params: ParamValues = None) -> Result:
        """Run any statement; DDL/DML return a one-cell status result."""
        kind, payload, report = self._compile_sql(sql)
        if kind == "select":
            result, _report, _trace = self._execute_entry(
                payload, sql, params, report)
            return result
        result, _rowcount = self._execute_other(payload, params)
        return result

    def query(self, sql: str, params: ParamValues = None) -> Result:
        """Run a SELECT (raises on anything else)."""
        kind, payload, report = self._compile_sql(sql)
        if kind != "select":
            raise SQLError("query() requires a SELECT statement")
        result, _report, _trace = self._execute_entry(
            payload, sql, params, report)
        return result

    def query_with_report(self, sql: str, params: ParamValues = None
                          ) -> tuple[Result, QueryReport, list[dict]]:
        """Run a SELECT and return its private report and trace.

        This is the concurrency-safe entry point the query service uses:
        each call gets its own :class:`QueryReport` and trace list, so
        parallel sessions never read each other's ``last_report``.  (The
        ``last_*`` introspection attributes are still updated — they are
        last-writer-wins under concurrency, by design.)

        .. deprecated:: prefer a cursor (``repro.api``), whose
           ``report`` / ``trace`` attributes carry the same data without
           tuple juggling.
        """
        kind, payload, report = self._compile_sql(sql)
        if kind != "select":
            raise SQLError("query_with_report() requires a SELECT statement")
        return self._execute_entry(payload, sql, params, report)

    def query_rowpath(self, sql: str, params: ParamValues = None
                      ) -> tuple[Result, QueryReport, list]:
        """Execute a SELECT through the row-at-a-time reference interpreter.

        Same compilation pipeline (and plan cache) as :meth:`query`, but
        the physical plan is walked tuple-at-a-time by
        :mod:`repro.db.exec.rowpath` instead of the vectorised operators.
        This is the oracle half of the differential tests and the
        baseline engine for bench E15; it never consults the recycler, so
        repeated runs measure honest row-at-a-time cost.
        """
        from repro.db.exec import rowpath

        kind, entry, report = self._compile_sql(sql)
        if kind != "select":
            raise SQLError("query_rowpath() requires a SELECT statement")
        values = resolve_param_values(entry.spec, entry.bound_params, params)
        report.params_hash = journal_mod.params_hash(values)
        ctx = ExecutionContext(oplog=self.oplog, recycler=None,
                               zone_pruning=False)
        self.oplog.record("query", "execute (rowpath)",
                          sql=sql[:120].replace("\n", " "))
        started = time.perf_counter()
        with ex.active_params(values):
            columns, n_rows = rowpath.execute_rowpath(
                entry.physical_local or entry.physical,
                entry.optimized.output, ctx)
        report.execute_s = time.perf_counter() - started
        report.rows_out = n_rows
        _fill_ctx_counters(report, ctx)
        report.journal_id = self.journal.record_report(report)
        self.oplog.record(
            "query", "done (rowpath)",
            rows=n_rows,
            seconds=round(report.execute_s, 4),
            extracted=ctx.rows_extracted,
        )
        names = [c.name for c in entry.optimized.output]
        result = Result(names, [columns[c.cid]
                                for c in entry.optimized.output])
        return result, report, ctx.trace

    def open_query(self, sql: str, params: ParamValues = None,
                   *, batch_rows: Optional[int] = None
                   ) -> "StreamingQuery | CompletedQuery":
        """Start a statement for cursor-style batched consumption.

        SELECTs return a :class:`StreamingQuery` whose batches are pulled
        on demand; everything else executes immediately and comes back as
        a :class:`CompletedQuery`.
        """
        kind, payload, report = self._compile_sql(sql)
        if kind == "select":
            values = resolve_param_values(
                payload.spec, payload.bound_params, params)
            return StreamingQuery(self, payload, sql, values, report,
                                  batch_rows or DEFAULT_BATCH_ROWS)
        stmt, _spec = payload
        result, rowcount = self._execute_other(payload, params)
        is_rowset = isinstance(stmt, ast.ExplainStmt)
        return CompletedQuery(result, report, [], is_rowset=is_rowset,
                              rowcount=None if is_rowset else rowcount)

    def explain(self, sql: str) -> str:
        """Compile-time plan report for a SELECT."""
        stmt = parse_statement(sql)
        if isinstance(stmt, ast.ExplainStmt):
            stmt = stmt.select
        if not isinstance(stmt, ast.SelectStmt):
            raise SQLError("explain() requires a SELECT statement")
        return self._explain_select(stmt)

    def explain_analyze(self, sql: str, params: ParamValues = None) -> str:
        """Execute a SELECT and render the plan with measured actuals.

        Unlike :meth:`explain` this *runs* the query: each operator line
        carries wall time (total/self), rows out and page I/O, with the
        run-time extraction events nested beneath the operator that
        triggered them.  Equivalent SQL surface: ``EXPLAIN ANALYZE
        SELECT ...``.
        """
        stmt, spec = parse_prepared(sql)
        if isinstance(stmt, ast.ExplainStmt):
            stmt = stmt.select
        if not isinstance(stmt, ast.SelectStmt):
            raise SQLError("explain_analyze() requires a SELECT statement")
        return self._explain_analyze(stmt, spec, sql, params)

    # -- compilation & the plan cache ------------------------------------------

    def _compile(self, stmt: ast.SelectStmt) -> tuple[LogicalNode, LogicalNode,
                                                      PhysicalNode]:
        naive = bind_select(self.catalog, stmt)
        # Bind twice: optimisation mutates nodes, and we keep the pre-
        # optimisation plan for EXPLAIN/demo display.
        bound = bind_select(self.catalog, stmt)
        optimized = optimize(
            bound,
            enable_lazy_rewrite=self.enable_lazy_rewrite,
            enable_pruning=self.enable_pruning,
        )
        physical = build_physical(optimized, self.recycler)
        return naive, optimized, physical

    def _compile_sql(self, sql: str):
        """Lex, consult the plan cache, and (on a miss) parse/bind/optimise.

        Returns ``(kind, payload, report)`` where ``kind`` is ``'select'``
        (payload: :class:`_CachedPlan`) or ``'other'`` (payload:
        ``(statement, ParamSpec)``); ``report`` is a fresh
        :class:`QueryReport` carrying the compile timings.
        """
        report = QueryReport(sql=sql)
        started = time.perf_counter()
        # The key is the normalised (stripped) statement text: an exact
        # string hash keeps cache hits O(len(sql)) with no lexing, which
        # is what makes prepared re-execution essentially free.  Textual
        # variants of one query simply compile into separate entries.
        key = (sql.strip(), self.catalog.epoch)
        with self._plan_lock:
            entry = self._plan_cache.get(key)
            if entry is not None:
                self._plan_cache.move_to_end(key)
                self.plan_cache_hits += 1
        if entry is not None:
            report.parse_s = time.perf_counter() - started
            report.plan_cache_hit = True
            if isinstance(entry, _CachedPlan):
                return "select", entry, report
            return "other", (entry.stmt, entry.spec), report

        try:
            stmt, spec = parse_prepared(sql)
            report.parse_s = time.perf_counter() - started
            if not isinstance(stmt, ast.SelectStmt):
                self._store_cache_entry(key, _CachedStatement(stmt, spec))
                return "other", (stmt, spec), report

            started = time.perf_counter()
            naive = bind_select(self.catalog, stmt)
            bound = bind_select(self.catalog, stmt)
            report.bind_s = time.perf_counter() - started
            started = time.perf_counter()
            optimized = optimize(
                bound,
                enable_lazy_rewrite=self.enable_lazy_rewrite,
                enable_pruning=self.enable_pruning,
            )
            physical = build_physical(optimized, self.recycler)
            report.optimize_s = time.perf_counter() - started
        except Exception as exc:
            # Statements that never reach execution (parse/bind errors)
            # still journal: sys.queries is the full failure record.
            report.journal_id = self.journal.record_report(
                report, status="error", error=str(exc))
            raise
        entry = _CachedPlan(
            stmt=stmt, naive=naive, optimized=optimized, physical=physical,
            spec=spec, bound_params=collect_bound_params(optimized),
            tables=frozenset(_plan_tables(optimized)),
        )
        if self.shard_router is not None:
            entry = self.shard_router.maybe_shard(self, entry)
        self._store_cache_entry(key, entry)
        return "select", entry, report

    def _store_cache_entry(self, key: tuple, entry) -> None:
        if self.plan_cache_size <= 0:
            return
        with self._plan_lock:
            self.plan_cache_misses += 1
            self._plan_cache[key] = entry
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)

    def plan_cache_len(self) -> int:
        with self._plan_lock:
            return len(self._plan_cache)

    def clear_plan_cache(self) -> None:
        with self._plan_lock:
            self._plan_cache.clear()

    # -- SELECT execution -------------------------------------------------------

    def _execute_entry(self, entry: _CachedPlan, sql: str,
                       params: ParamValues, report: QueryReport
                       ) -> tuple[Result, QueryReport, list[dict]]:
        values = resolve_param_values(entry.spec, entry.bound_params, params)
        report.params_hash = journal_mod.params_hash(values)

        self.last_plan_logical = entry.naive
        self.last_plan_optimized = entry.optimized
        self.last_plan_physical = entry.physical

        ctx = ExecutionContext(
            oplog=self.oplog, recycler=self.recycler,
            profile=QueryProfile() if self.trace_spans else None)
        self.oplog.record("query", "execute",
                          sql=sql[:120].replace("\n", " "))
        started = time.perf_counter()
        try:
            with ex.active_params(values):
                chunk = entry.physical.execute(ctx)
        except Exception as exc:
            report.execute_s = time.perf_counter() - started
            _fill_ctx_counters(report, ctx)
            report.journal_id = self.journal.record_report(
                report, status="error", error=str(exc))
            raise
        report.execute_s = time.perf_counter() - started
        report.rows_out = chunk.length
        _fill_ctx_counters(report, ctx)
        report.journal_id = self.journal.record_report(report)
        if ctx.profile is not None:
            report.spans = span_tree(sql, report, ctx.profile, ctx.trace)
        self.last_trace = ctx.trace
        self.last_report = report
        self.oplog.record(
            "query", "done",
            rows=chunk.length,
            seconds=round(report.execute_s, 4),
            extracted=ctx.rows_extracted,
        )
        names = [c.name for c in entry.optimized.output]
        columns = [chunk.columns[c.cid] for c in entry.optimized.output]
        return Result(names, columns), report, ctx.trace

    # -- non-SELECT execution ---------------------------------------------------

    def _execute_other(self, payload, params: ParamValues
                       ) -> tuple[Result, int]:
        """Run a non-SELECT; returns its status Result and the affected-
        row count (-1 for DDL/EXPLAIN)."""
        stmt, spec = payload
        if isinstance(stmt, ast.ExplainStmt):
            if stmt.analyze:
                text = self._explain_analyze(stmt.select, spec,
                                             stmt.sql_text, params)
            else:
                # Plain EXPLAIN never executes: parameter values (if any)
                # are irrelevant and placeholders appear in the plan.
                text = self._explain_select(stmt.select)
            return Result(["plan"],
                          [Column.from_values(DataType.VARCHAR, [text])]), -1
        values = resolve_param_values(spec, [], params)
        if values is not None:
            stmt = substitute_ast_params(stmt, values)
        handler = {
            ast.CreateTableStmt: self._create_table,
            ast.CreateViewStmt: self._create_view,
            ast.CreateSchemaStmt: self._create_schema,
            ast.DropStmt: self._drop,
            ast.InsertStmt: self._insert,
            ast.DeleteStmt: self._delete,
            ast.UpdateStmt: self._update,
        }.get(type(stmt))
        if handler is None:
            raise SQLError(f"unsupported statement {type(stmt).__name__}")
        message, rowcount = handler(stmt)  # type: ignore[arg-type]
        if isinstance(stmt, (ast.CreateTableStmt, ast.CreateViewStmt,
                             ast.CreateSchemaStmt, ast.DropStmt)):
            # The epoch bump already made cached plans unreachable; drop
            # them promptly instead of waiting for LRU pressure.
            self.clear_plan_cache()
        return Result(["status"],
                      [Column.from_values(DataType.VARCHAR, [message])]), \
            rowcount

    def _explain_select(self, stmt: ast.SelectStmt) -> str:
        naive, optimized, physical = self._compile(stmt)
        sections = [
            "== logical plan (as bound) ==",
            explain_mod.render_logical(naive),
            "",
            "== logical plan (optimised: metadata first, lazy rewrite points) ==",
            explain_mod.render_logical(optimized),
            "",
            "== physical plan ==",
            explain_mod.render_physical(physical),
        ]
        if self.shard_router is not None:
            extra = self.shard_router.explain_section(self, stmt)
            if extra:
                sections.extend(["", extra])
        return "\n".join(sections)

    def _explain_analyze(self, stmt: ast.SelectStmt, spec: ParamSpec,
                         sql: str, params: ParamValues) -> str:
        """Compile, execute under a profile, and render the actuals.

        Compiles outside the plan cache on purpose: the rendered tree
        must describe exactly the plan this execution ran, and the timed
        bind/optimize phases are part of what ANALYZE reports.
        """
        report = QueryReport(sql=sql)
        started = time.perf_counter()
        naive = bind_select(self.catalog, stmt)
        bound = bind_select(self.catalog, stmt)
        report.bind_s = time.perf_counter() - started
        started = time.perf_counter()
        optimized = optimize(
            bound,
            enable_lazy_rewrite=self.enable_lazy_rewrite,
            enable_pruning=self.enable_pruning,
        )
        physical = build_physical(optimized, self.recycler)
        report.optimize_s = time.perf_counter() - started
        values = resolve_param_values(
            spec, collect_bound_params(optimized), params)
        profile = QueryProfile()
        ctx = ExecutionContext(oplog=self.oplog, recycler=self.recycler,
                               profile=profile)
        self.oplog.record("query", "execute (analyze)",
                          sql=sql[:120].replace("\n", " "))
        started = time.perf_counter()
        with ex.active_params(values):
            chunk = physical.execute(ctx)
        report.execute_s = time.perf_counter() - started
        report.rows_out = chunk.length
        report.rows_extracted = ctx.rows_extracted
        report.operators_run = ctx.operators_run
        report.pages_read = ctx.pages_read
        report.pages_skipped = ctx.pages_skipped
        report.pages_skipped_zone = ctx.pages_skipped_zone
        _fold_trace_counters(report, ctx.trace)
        report.spans = span_tree(sql, report, profile, ctx.trace)
        self.last_plan_logical = naive
        self.last_plan_optimized = optimized
        self.last_plan_physical = physical
        self.last_trace = ctx.trace
        self.last_report = report
        summary = (
            f"rows_out={report.rows_out}"
            f"  rows_extracted={report.rows_extracted}"
            f"  pages_read={report.pages_read}"
            f"  pages_skipped={report.pages_skipped}\n"
            f"bind={explain_mod._fmt_s(report.bind_s)}"
            f"  optimize={explain_mod._fmt_s(report.optimize_s)}"
            f"  execute={explain_mod._fmt_s(report.execute_s)}"
            f"  operators={explain_mod._fmt_s(profile.total_operator_s())}"
        )
        sections = [
            "== logical plan (optimised) ==",
            explain_mod.render_logical(optimized),
            "",
            "== executed plan (actual) ==",
            explain_mod.render_analyzed(profile, ctx.trace),
            "",
            "== execution summary ==",
            summary,
        ]
        return "\n".join(sections)

    def render_last_trace(self) -> str:
        """The operators injected at run time by the last query (demo 5/6)."""
        return explain_mod.render_trace(self.last_trace)

    # -- DDL -----------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTableStmt) -> tuple[str, int]:
        specs = [
            ColumnSpec(name=c.name.lower(), dtype=type_from_name(c.type_name),
                       not_null=c.not_null)
            for c in stmt.columns
        ]
        fks = []
        for fk in stmt.foreign_keys:
            schema_name, table_name = self.catalog.split_name(fk.ref_table)
            fks.append(
                ForeignKeySpec(
                    columns=tuple(c.lower() for c in fk.columns),
                    ref_table=f"{schema_name}.{table_name}",
                    ref_columns=tuple(c.lower() for c in fk.ref_columns),
                )
            )
        schema = TableSchema(
            columns=specs,
            primary_key=tuple(c.lower() for c in stmt.primary_key),
            foreign_keys=fks,
        )
        self.catalog.create_table(stmt.name, schema,
                                  if_not_exists=stmt.if_not_exists)
        self.oplog.record("ddl", f"create table {'.'.join(stmt.name)}",
                          columns=len(specs))
        return f"table {'.'.join(stmt.name)} created", -1

    def _create_view(self, stmt: ast.CreateViewStmt) -> tuple[str, int]:
        # Validate the view body by binding it now (against current catalog).
        bind_select(self.catalog, stmt.select)
        self.catalog.create_view(stmt.name, stmt.select, stmt.sql_text)
        self.oplog.record("ddl", f"create view {'.'.join(stmt.name)}")
        return f"view {'.'.join(stmt.name)} created", -1

    def _create_schema(self, stmt: ast.CreateSchemaStmt) -> tuple[str, int]:
        self.catalog.create_schema(stmt.name, if_not_exists=stmt.if_not_exists)
        self.oplog.record("ddl", f"create schema {stmt.name}")
        return f"schema {stmt.name} created", -1

    def _drop(self, stmt: ast.DropStmt) -> tuple[str, int]:
        if stmt.kind == "table":
            self.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
        elif stmt.kind == "view":
            self.catalog.drop_view(stmt.name, if_exists=stmt.if_exists)
        else:
            self.catalog.drop_schema(stmt.name[0], if_exists=stmt.if_exists)
        self.oplog.record("ddl", f"drop {stmt.kind} {'.'.join(stmt.name)}")
        return f"{stmt.kind} {'.'.join(stmt.name)} dropped", -1

    # -- DML -----------------------------------------------------------------------

    def _eval_literal_row(self, exprs: Sequence[ex.Expr]) -> list:
        from repro.db.plan.logical import Binder, _Scope

        binder = Binder(self.catalog)
        scope = _Scope([])
        values = []
        for expr in exprs:
            bound = binder.bind_expr(expr, scope)
            col = bound.eval({}, 1)
            values.append(col.value_at(0))
        return values

    def _insert(self, stmt: ast.InsertStmt) -> tuple[str, int]:
        table = self.catalog.table(stmt.table)
        target_cols = (
            [c.lower() for c in stmt.columns]
            if stmt.columns is not None
            else table.schema.names
        )
        unknown = set(target_cols) - set(table.schema.names)
        if unknown:
            raise BindError(f"unknown insert columns {sorted(unknown)}")
        rows = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(target_cols):
                raise ExecutionError("INSERT arity mismatch")
            rows.append(self._eval_literal_row(row_exprs))
        data: dict[str, list] = {name: [] for name in table.schema.names}
        position = {name: i for i, name in enumerate(target_cols)}
        for row in rows:
            for name in table.schema.names:
                if name in position:
                    value = row[position[name]]
                    spec = table.schema.spec(name)
                    if value is not None:
                        from repro.db.types import coerce_literal

                        value = coerce_literal(value, spec.dtype)
                    data[name].append(value)
                else:
                    data[name].append(None)
        count = table.append_pydict(data)
        self._invalidate_for(table)
        self.oplog.record("dml", f"insert into {table.name}", rows=count)
        return f"{count} rows inserted into {table.name}", count

    def bulk_insert(self, parts: tuple[str, ...],
                    data: Mapping[str, "np.ndarray | Column | list"],
                    *, enforce_keys: bool = False) -> int:
        """Bulk load aligned columns (the eager ETL load path)."""
        table = self.catalog.table(parts)
        batch: dict[str, Column] = {}
        for spec in table.schema.columns:
            if spec.name not in data:
                raise ExecutionError(f"bulk insert missing column {spec.name!r}")
            value = data[spec.name]
            if isinstance(value, Column):
                batch[spec.name] = value
            elif isinstance(value, np.ndarray):
                batch[spec.name] = Column.from_numpy(spec.dtype, value)
            else:
                batch[spec.name] = Column.from_values(spec.dtype, value)
        count = table.append_batch(batch, enforce_keys=enforce_keys)
        self._invalidate_for(table)
        self.oplog.record("load", f"bulk load {table.name}", rows=count)
        return count

    def _table_scope_frame(self, table: Table):
        from repro.db.plan.logical import FromEntry, _Scope
        from repro.db.plan.logical import OutCol

        cols = []
        frame = {}
        for index, spec in enumerate(table.schema.columns, start=1):
            cols.append(OutCol(cid=index, name=spec.name, dtype=spec.dtype))
            frame[index] = table.column(spec.name)
        scope = _Scope([FromEntry(alias=table.name.split(".")[-1], columns=cols)])
        return scope, frame

    def _delete(self, stmt: ast.DeleteStmt) -> tuple[str, int]:
        from repro.db.plan.logical import Binder

        table = self.catalog.table(stmt.table)
        if stmt.where is None:
            removed = table.row_count
            table.truncate()
        else:
            scope, frame = self._table_scope_frame(table)
            predicate = Binder(self.catalog).bind_expr(stmt.where, scope)
            mask = ex.predicate_mask(predicate.eval(frame, table.row_count))
            removed = table.delete_where(mask)
        self._invalidate_for(table)
        self.oplog.record("dml", f"delete from {table.name}", rows=removed)
        return f"{removed} rows deleted from {table.name}", removed

    def _update(self, stmt: ast.UpdateStmt) -> tuple[str, int]:
        from repro.db.plan.logical import Binder

        table = self.catalog.table(stmt.table)
        scope, frame = self._table_scope_frame(table)
        binder = Binder(self.catalog)
        if stmt.where is None:
            mask = np.ones(table.row_count, dtype=bool)
        else:
            predicate = binder.bind_expr(stmt.where, scope)
            mask = ex.predicate_mask(predicate.eval(frame, table.row_count))
        assignments: dict[str, Column] = {}
        for name, expr in stmt.assignments:
            spec = table.schema.spec(name.lower())
            bound = binder.bind_expr(expr, scope)
            value_col = bound.eval(frame, table.row_count)
            if value_col.dtype != spec.dtype:
                from repro.db.expr import cast_column

                value_col = cast_column(value_col, spec.dtype)
            assignments[name.lower()] = value_col
        touched = table.update_rows(mask, assignments)
        self._invalidate_for(table)
        self.oplog.record("dml", f"update {table.name}", rows=touched)
        return f"{touched} rows updated in {table.name}", touched

    # -- maintenance -----------------------------------------------------------------

    def _invalidate_for(self, table: Table) -> None:
        # Signatures embed table versions, so stale entries can never be
        # hit again; drop them eagerly to release cache budget.
        if self.recycler is not None:
            self.recycler.invalidate_matching(f"scan({table.name}@")
        # Cached plans scanning this table carry recycler signatures and
        # storage choices (disk-backed vs resident) baked at compile time;
        # recompiling after DML keeps both exactly current.
        with self._plan_lock:
            doomed = [key for key, entry in self._plan_cache.items()
                      if table.name in entry.tables]
            for key in doomed:
                del self._plan_cache[key]

    def table(self, name: str) -> Table:
        """Convenience: fetch a table by dotted name."""
        return self.catalog.table(tuple(name.split(".")))

    def register_lazy_table(self, name: str, binding: LazyTableBinding) -> None:
        """Register an ETL binding making ``name`` a virtual, lazy table."""
        self.catalog.bind_lazy(tuple(name.split(".")), binding)
        self.oplog.record("etl", f"lazy binding registered for {name}",
                          keys=",".join(binding.key_columns))

    def warehouse_bytes(self) -> int:
        """Total resident bytes across all base tables (experiment E4)."""
        return sum(t.memory_bytes() for t in self.catalog.tables())

    # -- persistent storage ----------------------------------------------------------

    def attach(self, storage, *, bufferpool_bytes: int = 64 * 1024 * 1024):
        """Attach a persistent table store (path or open TableStore).

        Persisted tables become queryable immediately; their columns are
        read from disk lazily, page by page, when scans need them.
        """
        store = self.catalog.attach(storage,
                                    bufferpool_bytes=bufferpool_bytes)
        self.oplog.record("storage", f"attached store at {store.root}",
                          tables=len(store.table_names()))
        return store

    def checkpoint(self) -> list[str]:
        """Persist mutated tables to the attached store (atomic commit)."""
        written = self.catalog.checkpoint()
        self.oplog.record("storage", "checkpoint",
                          tables_written=len(written))
        return written
