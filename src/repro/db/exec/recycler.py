"""Intermediate-result recycling — the paper's lazy-loading substrate.

Reimplementation of the mechanism of Ivanova et al. (SIGMOD'09) that the
paper reuses: expensive intermediates (aggregates, lazy-fetch outputs,
i.e. "the result of a view definition") are cached under a *semantic
signature* of the plan fragment that produced them, with

* an **LRU policy** (the paper's stated choice; FIFO and cost-aware
  variants ship for the DESIGN.md §5 eviction ablation),
* a **byte budget** ("we adjust the cache size ... not larger than the
  size of system's main memory"),
* **version-aware signatures**: a signature embeds every base table's
  version counter and every lazy binding's cache epoch, so any update to
  the warehouse or the file repository invalidates dependent entries
  automatically — the engine-side half of lazy refresh (§3.3).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.db import expr as ex
from repro.db.column import Column
from repro.db.plan import logical as lg
from repro.errors import ExecutionError

POLICIES = ("lru", "fifo", "cost")


@dataclass
class RecyclerEntry:
    columns: list[Column]
    length: int
    nbytes: int
    admitted_at: float
    cost_estimate: float = 1.0
    hits: int = 0
    # Repository files the cached result was derived from, as
    # ``uri -> (repository, mtime_ns at admission)``.  Validated on every
    # lookup: a signature's cache epoch can only reflect changes the
    # extraction cache has *noticed*, so results admitted by pure
    # cache-hit queries additionally pin the source files' mtimes.
    depends: Optional[dict] = None


@dataclass
class RecyclerStats:
    lookups: int = 0
    hits: int = 0
    admissions: int = 0
    evictions: int = 0
    rejected: int = 0
    stale_drops: int = 0  # entries dropped by source-file validation

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class Recycler:
    """Bounded cache of materialised intermediates."""

    def __init__(self, budget_bytes: int = 64 * 1024 * 1024,
                 policy: str = "lru") -> None:
        if policy not in POLICIES:
            raise ExecutionError(f"unknown recycler policy {policy!r}")
        self.budget_bytes = budget_bytes
        self.policy = policy
        self._entries: "OrderedDict[str, RecyclerEntry]" = OrderedDict()
        self._bytes = 0
        # Shared by every session of a concurrent query service; columns
        # are immutable once admitted, so a lock around the map suffices.
        self._lock = threading.RLock()
        self.stats = RecyclerStats()

    # -- core ------------------------------------------------------------------

    def lookup(self, signature: str) -> Optional[tuple[list[Column], int]]:
        full = self.lookup_validated(signature)
        return None if full is None else (full[0], full[1])

    def lookup_validated(self, signature: str
                         ) -> Optional[tuple[list[Column], int, dict]]:
        """Lookup plus source-file freshness validation.

        Lazy-fetch-derived entries record the (uri, mtime) of every
        repository file they were computed from; a hit re-stats those
        files (microseconds, proportional to the query's file set) and a
        mismatch — or a vanished file — drops the entry and reports a
        miss, forcing re-extraction through the staleness-aware path.
        """
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(signature)
            if entry is None:
                return None
            depends = dict(entry.depends) if entry.depends else None
        # Stat the source files OUTSIDE the lock: one slow stat must not
        # stall every other session's recycler traffic.
        if not self._depends_fresh(depends):
            with self._lock:
                if self._entries.get(signature) is entry:
                    self._entries.pop(signature)
                    self._bytes -= entry.nbytes
                    self.stats.stale_drops += 1
            return None
        with self._lock:
            if self._entries.get(signature) is not entry:
                return None  # replaced/evicted while validating: miss
            self.stats.hits += 1
            entry.hits += 1
            if self.policy == "lru":
                self._entries.move_to_end(signature)
            return entry.columns, entry.length, entry.depends or {}

    @staticmethod
    def _depends_fresh(depends: Optional[dict]) -> bool:
        if not depends:
            return True
        for uri, (repo, mtime_ns) in depends.items():
            try:
                if repo.stat(uri).mtime_ns != mtime_ns:
                    return False
            except Exception:
                return False  # vanished / unreadable: treat as changed
        return True

    def admit(self, signature: str, columns: list[Column], length: int,
              *, cost_estimate: float = 1.0,
              depends: Optional[dict] = None) -> bool:
        nbytes = sum(col.memory_bytes() for col in columns)
        with self._lock:
            if nbytes > self.budget_bytes:
                self.stats.rejected += 1
                return False
            if signature in self._entries:
                old = self._entries.pop(signature)
                self._bytes -= old.nbytes
            self._entries[signature] = RecyclerEntry(
                columns=columns, length=length, nbytes=nbytes,
                admitted_at=time.time(), cost_estimate=cost_estimate,
                depends=depends,
            )
            self._bytes += nbytes
            self.stats.admissions += 1
            self._evict_to_budget()
            return True

    def _evict_to_budget(self) -> None:
        while self._bytes > self.budget_bytes and self._entries:
            victim = self._pick_victim()
            entry = self._entries.pop(victim)
            self._bytes -= entry.nbytes
            self.stats.evictions += 1

    def _pick_victim(self) -> str:
        if self.policy in ("lru", "fifo"):
            # OrderedDict front = least recently used (lru moves hits to the
            # end) or oldest admission (fifo never reorders).
            return next(iter(self._entries))
        # cost policy: evict the cheapest-to-recompute per byte.
        return min(
            self._entries,
            key=lambda sig: (
                self._entries[sig].cost_estimate
                / max(self._entries[sig].nbytes, 1)
            ),
        )

    # -- maintenance ---------------------------------------------------------------

    def invalidate_all(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def invalidate_matching(self, fragment: str) -> int:
        """Drop entries whose signature mentions ``fragment``."""
        with self._lock:
            doomed = [sig for sig in self._entries if fragment in sig]
            for sig in doomed:
                entry = self._entries.pop(sig)
                self._bytes -= entry.nbytes
            return len(doomed)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def contents(self) -> list[tuple[str, int, int]]:
        """(signature, rows, bytes) per entry — demo capability (7)."""
        with self._lock:
            return [
                (sig, entry.length, entry.nbytes)
                for sig, entry in self._entries.items()
            ]


# ---------------------------------------------------------------------------
# Plan-fragment signatures
# ---------------------------------------------------------------------------


def signature_of(node: lg.LogicalNode) -> str:
    """A stable, cid-independent signature of a logical subtree.

    Column ids are compile-specific, so two compilations of the same SQL
    produce different cids; signatures therefore rename every cid to a
    positional token rooted at the scans (``s0.station``), projections and
    aggregates.  Base-table versions and lazy-binding cache epochs are
    embedded so data changes invalidate dependants.
    """
    env: dict[int, str] = {}
    counter = {"scan": 0, "proj": 0, "agg": 0, "fetch": 0}

    def render_expr(expr: ex.Expr) -> str:
        if isinstance(expr, ex.BoundRef):
            return env.get(expr.cid, f"?{expr.cid}")
        if isinstance(expr, ex.Literal):
            return f"lit({expr.value!r}:{expr.dtype})"
        if isinstance(expr, ex.Param):
            # Signatures are rendered per execution, when the binding's
            # values are active: embed the value so equal re-executions
            # recycle and different bindings never share an entry.  The
            # unbound form only appears outside execution (EXPLAIN) and
            # is never used for admission or lookup.
            values = ex.current_param_values()
            if values is None or expr.slot not in values:
                return f"param({expr.slot}:<unbound>)"
            return f"param({expr.slot}={values[expr.slot]!r}:{expr.dtype})"
        if isinstance(expr, ex.BinOp):
            return f"({render_expr(expr.left)}{expr.op}{render_expr(expr.right)})"
        if isinstance(expr, ex.UnOp):
            return f"{expr.op}({render_expr(expr.operand)})"
        if isinstance(expr, ex.FuncCall):
            args = ",".join(render_expr(a) for a in expr.args)
            return f"{expr.name}({args})"
        if isinstance(expr, ex.AggCall):
            inner = "*" if expr.arg is None else render_expr(expr.arg)
            distinct = "distinct " if expr.distinct else ""
            return f"{expr.name}({distinct}{inner})"
        if isinstance(expr, ex.Between):
            return (
                f"between({render_expr(expr.operand)},{render_expr(expr.low)},"
                f"{render_expr(expr.high)},{expr.negated})"
            )
        if isinstance(expr, ex.InList):
            items = ",".join(render_expr(i) for i in expr.items)
            return f"in({render_expr(expr.operand)},[{items}],{expr.negated})"
        if isinstance(expr, ex.IsNull):
            return f"isnull({render_expr(expr.operand)},{expr.negated})"
        if isinstance(expr, ex.Like):
            return f"like({render_expr(expr.operand)},{expr.pattern!r},{expr.negated})"
        if isinstance(expr, ex.Cast):
            return f"cast({render_expr(expr.operand)},{expr.target})"
        if isinstance(expr, ex.Case):
            whens = ";".join(
                f"{render_expr(c)}->{render_expr(v)}" for c, v in expr.whens
            )
            default = "" if expr.default is None else render_expr(expr.default)
            return f"case({whens}|{default})"
        return repr(expr)

    def walk(node: lg.LogicalNode) -> str:
        if isinstance(node, lg.LScan):
            tag = f"s{counter['scan']}"
            counter["scan"] += 1
            for col in node.output:
                env[col.cid] = f"{tag}.{col.name}"
            cols = ",".join(c.name for c in node.output)
            return f"scan({node.qualified_name}@v{node.table.version}:[{cols}])"
        if isinstance(node, lg.LScanAll):
            tag = f"x{counter['fetch']}"
            counter["fetch"] += 1
            for col in node.output:
                env[col.cid] = f"{tag}.{col.name}"
            cols = ",".join(c.name for c in node.output)
            epoch = getattr(node.binding, "cache_epoch", 0)
            return f"scanall({node.table_name}@e{epoch}:[{cols}])"
        if isinstance(node, lg.LFilter):
            child = walk(node.child)
            return f"filter({render_expr(node.predicate)},{child})"
        if isinstance(node, lg.LProject):
            child = walk(node.child)
            tag = f"p{counter['proj']}"
            counter["proj"] += 1
            rendered = []
            for out, expr in zip(node.output, node.exprs):
                rendered.append(render_expr(expr))
                env[out.cid] = f"{tag}.{out.name}"
            return f"project([{','.join(rendered)}],{child})"
        if isinstance(node, lg.LJoin):
            left = walk(node.left)
            right = walk(node.right)
            keys = ",".join(
                f"{env.get(l, l)}={env.get(r, r)}"
                for l, r in zip(node.left_keys, node.right_keys)
            )
            residual = "" if node.residual is None else render_expr(node.residual)
            return f"join({node.kind},[{keys}],{residual},{left},{right})"
        if isinstance(node, lg.LAggregate):
            child = walk(node.child)
            groups = ",".join(render_expr(g) for g in node.group_exprs)
            aggs = ",".join(render_expr(a) for a in node.aggregates)
            tag = f"a{counter['agg']}"
            counter["agg"] += 1
            for out in node.output:
                env[out.cid] = f"{tag}.{out.name}"
            return f"agg([{groups}],[{aggs}],{child})"
        if isinstance(node, lg.LSort):
            child = walk(node.child)
            keys = ",".join(
                f"{render_expr(k)}:{'a' if asc else 'd'}" for k, asc in node.keys
            )
            return f"sort([{keys}],{child})"
        if isinstance(node, lg.LLimit):
            return f"limit({node.limit},{node.offset},{walk(node.child)})"
        if isinstance(node, lg.LDistinct):
            return f"distinct({walk(node.child)})"
        if isinstance(node, lg.LLazyFetch):
            meta = walk(node.meta)
            tag = f"z{counter['fetch']}"
            counter["fetch"] += 1
            for col in node.lazy_output:
                env[col.cid] = f"{tag}.{col.name}"
            keys = ",".join(env.get(c, str(c)) for c in node.meta_key_cids)
            residuals = ";".join(render_expr(r) for r in node.residuals)
            epoch = getattr(node.binding, "cache_epoch", 0)
            return (
                f"lazyfetch({node.table_name}@e{epoch},keys=[{keys}],"
                f"need=[{','.join(node.needed)}],res=[{residuals}],"
                f"bounds={node.time_bounds},{meta})"
            )
        raise ExecutionError(f"cannot sign {type(node).__name__}")

    return walk(node)
