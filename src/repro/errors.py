"""Exception hierarchy for the Lazy ETL reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems have their own branches:
file-format errors (``MSeedError``), database errors (``DatabaseError``
with SQL parse/bind/execution refinements) and ETL errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# mSEED / file-format errors
# ---------------------------------------------------------------------------


class MSeedError(ReproError):
    """Base class for mSEED format errors."""


class CorruptRecordError(MSeedError):
    """A record's header or payload violates the format specification."""


class UnsupportedEncodingError(MSeedError):
    """The record uses a data encoding this reader does not implement."""


class SteimError(MSeedError):
    """Steim frame compression or decompression failed."""


# ---------------------------------------------------------------------------
# Repository errors
# ---------------------------------------------------------------------------


class RepositoryError(ReproError):
    """Base class for repository access errors."""


class FileMissingError(RepositoryError):
    """A file referenced by metadata no longer exists in the repository."""


# ---------------------------------------------------------------------------
# Database errors
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for warehouse-engine errors."""


class SQLError(DatabaseError):
    """Base class for SQL front-end errors."""


class LexerError(SQLError):
    """The SQL text contains a token the lexer cannot recognise."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The SQL text is not grammatical."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BindError(SQLError):
    """Name resolution or type checking failed (unknown table/column, ...)."""


class CatalogError(DatabaseError):
    """Catalog manipulation failed (duplicate/unknown schema object, ...)."""


class ConstraintError(DatabaseError):
    """A primary-key or foreign-key constraint was violated."""


class ExecutionError(DatabaseError):
    """A physical operator failed at run time."""


class TypeMismatchError(BindError):
    """Two expressions with incompatible types were combined."""


class ParameterError(BindError):
    """Prepared-statement parameter binding failed (missing/extra values,
    uninferable placeholder type, or a value that cannot coerce)."""


# ---------------------------------------------------------------------------
# Persistent storage errors
# ---------------------------------------------------------------------------


class StorageError(DatabaseError):
    """Base class for persistent-storage (segment/manifest) errors."""


class CorruptSegmentError(StorageError):
    """A segment page or footer failed checksum or structural validation."""


# ---------------------------------------------------------------------------
# ETL errors
# ---------------------------------------------------------------------------


class ETLError(ReproError):
    """Base class for extract/transform/load errors."""


class CacheInvariantError(ETLError):
    """The extraction cache's internal bookkeeping is inconsistent."""


class ExtractionError(ETLError):
    """Extraction from a source file failed."""


class TransformError(ETLError):
    """A transformation rejected its input."""


class StalenessError(ETLError):
    """Cache refresh could not reconcile an updated source."""


# ---------------------------------------------------------------------------
# Query-service errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for concurrent query-service errors."""


class AdmissionError(ServiceError):
    """The service's bounded admission queue rejected a query."""


class ServiceClosedError(ServiceError):
    """A query was submitted to a service that has been shut down."""


# ---------------------------------------------------------------------------
# Sharded multi-process execution errors
# ---------------------------------------------------------------------------


class ShardError(ServiceError):
    """Base class for sharded scatter-gather execution errors."""


class ShardConfigError(ShardError):
    """Invalid sharding configuration (shard count, mode, partitioner)."""


class ShardWorkerError(ShardError):
    """A shard worker process died or misbehaved mid-request.

    Carries :attr:`shard_id` so callers can tell which shard failed;
    the executor respawns the worker lazily on its next use.
    """

    def __init__(self, message: str, shard_id: int = -1) -> None:
        super().__init__(message)
        self.shard_id = shard_id


# ---------------------------------------------------------------------------
# Wire-protocol errors (remote serving)
# ---------------------------------------------------------------------------


class WireError(ServiceError):
    """Base class for TCP wire-protocol errors (client and server side)."""


class WireProtocolError(WireError):
    """A frame violated the wire format: torn, oversized, unknown type,
    or a payload that does not decode.  The connection is closed after
    the peer is sent a typed error frame."""


class WireAuthError(WireError):
    """The session handshake failed authentication."""


class WireShutdownError(WireError):
    """The server aborted the session because it is draining/shutting
    down past its drain deadline."""


class RemoteQueryError(DatabaseError):
    """A query failed on the remote server; carries the remote exception
    class name in :attr:`remote_type`."""

    def __init__(self, message: str, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type


# ---------------------------------------------------------------------------
# Observability errors
# ---------------------------------------------------------------------------


class MetricsError(ReproError):
    """Metric misuse: name/type/label mismatch or malformed exposition."""
