"""Rendering unbound expression ASTs back to SQL text.

The plan decomposer (:mod:`repro.shard.decompose`) works on the parsed
statement, not the bound plan: per-shard partial queries and the
parent-side combine query are generated as SQL *text* and re-parsed —
by the workers against their shard catalogs, by the parent against a
scratch gather catalog.  Round-tripping through text keeps the seam
honest: whatever the decomposer emits must mean the same thing to a
stock parser/binder, so there is no second, subtly different plan IR.

``render_expr`` takes an optional ``transform`` hook, called on every
node before default rendering: returning a string replaces that whole
subtree.  The decomposer uses it to swap aggregate calls for combine
fragments and group-by expressions for gather-column references.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.db import expr as ex
from repro.db.sql import ast
from repro.errors import ShardError


class RenderError(ShardError):
    """The expression contains a node SQL rendering does not cover.

    Internal to the decomposer: callers treat it as "this statement does
    not decompose" and fall back to the single-plan path.
    """


Transform = Optional[Callable[[ex.Expr], Optional[str]]]


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        return repr(value)  # round-trips the exact double
    if isinstance(value, int):
        return repr(value)
    raise RenderError(f"cannot render literal {value!r}")


def render_expr(expr: ex.Expr, transform: Transform = None) -> str:
    if transform is not None:
        replaced = transform(expr)
        if replaced is not None:
            return replaced

    def sub(child: ex.Expr) -> str:
        return render_expr(child, transform)

    if isinstance(expr, ex.ColumnRef):
        return ".".join(expr.parts)
    if isinstance(expr, ex.Literal):
        return render_literal(expr.value)
    if isinstance(expr, ex.Param):
        return f":s{expr.slot}"
    if isinstance(expr, ex.BinOp):
        return f"({sub(expr.left)} {expr.op.upper()} {sub(expr.right)})"
    if isinstance(expr, ex.UnOp):
        if expr.op == "not":
            return f"(NOT {sub(expr.operand)})"
        return f"({expr.op}{sub(expr.operand)})"
    if isinstance(expr, ex.AggCall):
        inner = "*" if expr.arg is None else sub(expr.arg)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({prefix}{inner})"
    if isinstance(expr, ex.FuncCall):
        args = ", ".join(sub(a) for a in expr.args)
        return f"{expr.name.upper()}({args})"
    if isinstance(expr, ex.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({sub(expr.operand)} {word} {sub(expr.low)} "
                f"AND {sub(expr.high)})")
    if isinstance(expr, ex.InList):
        word = "NOT IN" if expr.negated else "IN"
        items = ", ".join(sub(item) for item in expr.items)
        return f"({sub(expr.operand)} {word} ({items}))"
    if isinstance(expr, ex.IsNull):
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({sub(expr.operand)} {word})"
    if isinstance(expr, ex.Like):
        word = "NOT LIKE" if expr.negated else "LIKE"
        return (f"({sub(expr.operand)} {word} "
                f"{render_literal(expr.pattern)})")
    if isinstance(expr, ex.Case):
        parts = ["CASE"]
        for when, then in expr.whens:
            parts.append(f"WHEN {sub(when)} THEN {sub(then)}")
        if expr.default is not None:
            parts.append(f"ELSE {sub(expr.default)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ex.Cast):
        return f"CAST({sub(expr.operand)} AS {expr.target.value.upper()})"
    raise RenderError(f"cannot render {type(expr).__name__} to SQL")


def render_table(ref: ast.TableExpr) -> str:
    if not isinstance(ref, ast.TableRef):
        raise RenderError(
            f"cannot render {type(ref).__name__} FROM item to SQL")
    name = ".".join(ref.parts)
    return f"{name} AS {ref.alias}" if ref.alias else name
