"""Parent-side management of the shard worker pool.

:class:`ShardedExtractor` owns N warm worker processes (spawn context —
no inherited locks or file descriptors, identical behaviour on every
platform), one per shard.  It exposes exactly the two operations the
execution stack scatters:

* :meth:`query_all` — run one partial SELECT on every shard
  concurrently (the scatter half of :class:`~repro.shard.gather.
  PShardGather`);
* :meth:`extract` — decode specific records of one file on its owning
  shard (the remote half of ``LazyDataBinding._extract_direct``).

Failure model: every request waits on *both* the reply pipe and the
worker's process sentinel, so a worker killed mid-request surfaces as a
typed :class:`~repro.errors.ShardWorkerError` immediately — never a
hang.  A dead worker is respawned lazily on its next use (counted in
``restarts``); in-flight requests on other shards are unaffected.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Optional

from repro.errors import ShardError, ShardWorkerError
from repro.etl.framework import ExtractedRecords
from repro.etl.metadata import Granularity
from repro.shard.partition import ShardMap
from repro.shard.transport import open_blob, decode_pieces

logger = logging.getLogger("repro.shard")


@dataclass
class ShardStats:
    """Parent-side counters for one shard (no pipe traffic to read)."""

    shard_id: int
    files: int = 0
    queries: int = 0
    extracts: int = 0
    rows_extracted: int = 0
    errors: int = 0
    restarts: int = 0


@dataclass
class _WorkerHandle:
    shard_id: int
    proc: "multiprocessing.process.BaseProcess | None" = None
    conn: object = None
    lock: threading.RLock = field(default_factory=threading.RLock)
    alive: bool = False


class ShardedExtractor:
    """A warm pool of shard worker processes plus their control pipes."""

    def __init__(
        self,
        root: str,
        shard_map: ShardMap,
        *,
        schema: str = "mseed",
        granularity: Granularity = Granularity.RECORD,
        extension: str = ".mseed",
        cache_budget_bytes: int = 256 * 1024 * 1024,
        spawn_timeout_s: float = 120.0,
    ) -> None:
        self.root = str(root)
        self.shard_map = shard_map
        self.schema = schema
        self.granularity = granularity
        self.extension = extension
        self.cache_budget_bytes = cache_budget_bytes
        self.spawn_timeout_s = spawn_timeout_s
        self.n_shards = shard_map.n_shards
        self._ctx = multiprocessing.get_context("spawn")
        self._handles = [_WorkerHandle(shard_id=i)
                         for i in range(self.n_shards)]
        self.stats = [ShardStats(shard_id=i, files=count)
                      for i, count in enumerate(shard_map.counts())]
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._close_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and wait until each shard warehouse is up."""
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=self.n_shards,
            thread_name_prefix="repro-shard-scatter")
        for handle in self._handles:
            self._spawn(handle)

    def _worker_spec(self, shard_id: int) -> dict:
        return {
            "shard_id": shard_id,
            "root": self.root,
            "uris": self.shard_map.uris_of(shard_id),
            "schema": self.schema,
            "granularity": self.granularity.value,
            "extension": self.extension,
            "cache_budget_bytes": self.cache_budget_bytes,
        }

    def _spawn(self, handle: _WorkerHandle) -> None:
        from repro.shard.worker import worker_main

        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._worker_spec(handle.shard_id)),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.alive = True
        ready = self._recv(handle, self.spawn_timeout_s, "startup")
        if not ready.get("ok") or ready.get("event") != "ready":
            self._mark_dead(handle)
            raise ShardWorkerError(
                f"shard {handle.shard_id} worker failed to start: {ready}",
                shard_id=handle.shard_id)
        logger.info("shard %d worker ready: pid %d, %d files",
                    handle.shard_id, ready["pid"], ready["files"])

    def _respawn(self, handle: _WorkerHandle) -> None:
        self.stats[handle.shard_id].restarts += 1
        logger.warning("respawning dead shard %d worker", handle.shard_id)
        self._spawn(handle)

    def close(self) -> None:
        """Drain and join every worker.  Idempotent and unordered-safe:
        callers run this before any storage teardown."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._handles:
            with handle.lock:
                proc, conn = handle.proc, handle.conn
                if conn is not None and handle.alive and \
                        proc is not None and proc.is_alive():
                    try:
                        conn.send({"cmd": "close"})
                        mp_connection.wait([conn, proc.sentinel], 10.0)
                    except (OSError, BrokenPipeError, EOFError):
                        pass
                if proc is not None:
                    proc.join(timeout=10.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5.0)
                if conn is not None:
                    conn.close()
                handle.alive = False
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=True)
            self._scatter_pool = None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- request plumbing ----------------------------------------------------

    def _recv(self, handle: _WorkerHandle, timeout: "float | None",
              what: str) -> dict:
        """One reply, or a typed error if the worker died instead."""
        conn, proc = handle.conn, handle.proc
        ready = mp_connection.wait([conn, proc.sentinel], timeout)
        if conn in ready:
            try:
                return conn.recv()
            except (EOFError, OSError):
                pass  # died mid-send
        elif ready:
            # Sentinel fired: the worker exited.  It may have managed to
            # flush a reply first — drain the pipe before concluding.
            try:
                if conn.poll(0.2):
                    return conn.recv()
            except (EOFError, OSError):
                pass
        else:
            self._mark_dead(handle, kill=True)
            raise ShardWorkerError(
                f"shard {handle.shard_id} worker timed out during {what} "
                f"(waited {timeout:.0f}s); worker killed",
                shard_id=handle.shard_id)
        pid = proc.pid if proc is not None else -1
        self._mark_dead(handle)
        raise ShardWorkerError(
            f"shard {handle.shard_id} worker (pid {pid}) died during "
            f"{what}; it will be respawned on next use",
            shard_id=handle.shard_id)

    def _mark_dead(self, handle: _WorkerHandle, *, kill: bool = False) -> None:
        handle.alive = False
        self.stats[handle.shard_id].errors += 1
        if handle.proc is not None:
            if kill and handle.proc.is_alive():
                handle.proc.terminate()
            handle.proc.join(timeout=5.0)
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None

    def _roundtrip(self, shard_id: int, message: dict,
                   timeout: "float | None" = None) -> dict:
        if self._closed:
            raise ShardError("sharded executor is closed")
        handle = self._handles[shard_id]
        with handle.lock:
            if not handle.alive or handle.proc is None \
                    or not handle.proc.is_alive():
                if handle.alive:
                    # Found dead without a request in flight (e.g. killed
                    # between queries): account it before respawning.
                    self._mark_dead(handle)
                self._respawn(handle)
            try:
                handle.conn.send(message)
            except (OSError, BrokenPipeError) as exc:
                self._mark_dead(handle)
                raise ShardWorkerError(
                    f"shard {shard_id} worker pipe broke sending "
                    f"{message.get('cmd')!r}: {exc}",
                    shard_id=shard_id) from exc
            reply = self._recv(handle, timeout, repr(message.get("cmd")))
            blob = reply.get("blob")
            if reply.get("ok") and isinstance(blob, dict):
                reply["data"] = open_blob(blob)
                if blob.get("kind") == "shm":
                    handle.conn.send({"cmd": "release",
                                      "names": [blob["name"]]})
                    self._recv(handle, timeout, "'release'")
            return reply

    @staticmethod
    def _check(reply: dict, shard_id: int, what: str) -> dict:
        if not reply.get("ok"):
            raise ShardError(
                f"shard {shard_id} {what} failed: "
                f"{reply.get('error')}: {reply.get('message')}")
        return reply

    # -- scatter operations --------------------------------------------------

    def query_all(self, sql: str, params: "dict | None"
                  ) -> "list[tuple]":
        """Run one partial SELECT on every shard; returns per-shard
        ``(Result, report_dict)`` in shard order."""
        if self._scatter_pool is None:
            raise ShardError("sharded executor not started")
        futures = [
            self._scatter_pool.submit(self._query_shard, i, sql, params)
            for i in range(self.n_shards)
        ]
        results, errors = [], []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    def _query_shard(self, shard_id: int, sql: str,
                     params: "dict | None") -> tuple:
        from repro.net.frames import decode_result_batch

        reply = self._check(
            self._roundtrip(shard_id, {"cmd": "query", "sql": sql,
                                       "params": params}),
            shard_id, "partial query")
        _cursor, result = decode_result_batch(reply["data"], reply["names"])
        stats = self.stats[shard_id]
        stats.queries += 1
        stats.rows_extracted += reply["report"].get("rows_extracted", 0)
        return result, reply["report"]

    def extract(self, uri: str, seq_nos: "list[int]",
                data_cols: "list[str]") -> ExtractedRecords:
        """Remote-extract records of ``uri`` on its owning shard."""
        shard_id = self.shard_map.shard_of(uri)
        reply = self._check(
            self._roundtrip(shard_id, {
                "cmd": "extract", "uri": uri,
                "seqs": [int(seq) for seq in seq_nos],
                "data_cols": list(data_cols),
            }),
            shard_id, f"extract of {uri}")
        pieces = decode_pieces(reply["data"])
        stats = self.stats[shard_id]
        stats.extracts += 1
        stats.rows_extracted += reply.get("rows", 0)
        return ExtractedRecords(
            uri=uri,
            seq_nos=[seq for seq, _columns in pieces],
            per_record=[columns for _seq, columns in pieces],
        )

    # -- introspection -------------------------------------------------------

    def worker_stats(self) -> "list[dict]":
        """Live per-worker stats over the pipe (tests/diagnostics)."""
        out = []
        for i in range(self.n_shards):
            reply = self._check(self._roundtrip(i, {"cmd": "stats"}),
                                i, "stats")
            out.append(reply)
        return out

    def clear_caches(self) -> None:
        """Drop every shard's extraction + plan caches (cold benches)."""
        for i in range(self.n_shards):
            self._check(self._roundtrip(i, {"cmd": "clear_cache"}),
                        i, "clear_cache")

    def describe(self) -> "list[dict]":
        """Parent-side snapshot for ``sys.shards`` (no pipe traffic)."""
        rows = []
        for handle, stats in zip(self._handles, self.stats):
            proc = handle.proc
            rows.append({
                "shard_id": handle.shard_id,
                "pid": proc.pid if proc is not None else 0,
                "alive": bool(handle.alive and proc is not None
                              and proc.is_alive()),
                "files": stats.files,
                "queries": stats.queries,
                "extracts": stats.extracts,
                "rows_extracted": stats.rows_extracted,
                "errors": stats.errors,
                "restarts": stats.restarts,
            })
        return rows
