"""Sharded multi-process scatter-gather execution.

Splits the mseed corpus into N shards, each owned by a warm worker
process running a full lazy warehouse over its slice of the files.
Queries either decompose into per-shard partial aggregates plus a
parent-side combine (:mod:`repro.shard.decompose`,
:class:`~repro.shard.gather.PShardGather`) or run the parent's own plan
with only *extraction* scattered to the owning shards
(``LazyDataBinding.remote_extractor``).  Both paths reproduce the
single-process result bit for bit; `shards=1` bypasses all of it.
"""

from repro.shard.decompose import ShardPlan, decompose_select
from repro.shard.executor import ShardedExtractor, ShardStats
from repro.shard.gather import PShardGather, ShardRouter
from repro.shard.partition import ShardMap, ShardRepositoryView

__all__ = [
    "PShardGather",
    "ShardMap",
    "ShardPlan",
    "ShardRepositoryView",
    "ShardRouter",
    "ShardStats",
    "ShardedExtractor",
    "decompose_select",
]
