"""The scatter-gather physical node and the engine-side router.

:class:`PShardGather` replaces a decomposed plan's physical root: at
execution time it runs the partial SQL on every shard worker
(concurrently), concatenates the partial rows into an in-memory gather
table, and runs the combine SQL over it — producing the exact chunk the
local plan would have.

Correctness notes:

* ``signature_source`` stays ``None``, so the recycler never caches a
  gathered result in the parent.  The parent does not observe worker-
  side file rewrites for decomposed queries (each worker runs its own
  staleness checks on every execution), so parent-side caching could
  serve stale data.  Workers have their own plan and extraction caches,
  which is where repeat-query economics live.
* The combine runs in a **fresh scratch Database per execution**: one
  cached plan serves concurrent sessions, so a shared mutable gather
  table would race.
* The inner (single-process) plan is kept as the node's child — EXPLAIN
  shows the full scattered plan beneath the gather — and as the cached
  entry's ``physical_local``, which keeps ``query_rowpath`` an
  independent single-process oracle even on a sharded warehouse.

:class:`ShardRouter` hooks :meth:`Database._compile_sql`: on every plan-
cache miss it decides whether the fresh entry decomposes, validates the
generated SQL by *binding it* (partial against the parent catalog,
combine against a scratch gather catalog, output dtypes against the
local plan), and wraps the entry if — and only if — everything lines up.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Optional

from repro.db import expr as ex
from repro.db.column import Column
from repro.db.plan.logical import bind_select
from repro.db.plan.physical import Chunk, ExecutionContext, PhysicalNode
from repro.db.sql.parser import parse_statement
from repro.db.table import ColumnSpec, TableSchema
from repro.db.types import DataType
from repro.shard.decompose import (
    GATHER_TABLE,
    ShardPlan,
    decompose_select,
    exact_sum_columns,
)
from repro.shard.executor import ShardedExtractor

logger = logging.getLogger("repro.shard")


def _fresh_combine_db():
    """A scratch engine holding only the gather table's schema."""
    from repro.db.exec.engine import Database

    db = Database(enable_recycler=False, plan_cache_size=0)
    return db


def _create_gather_table(db, gather_columns) -> None:
    db.catalog.create_schema(GATHER_TABLE[0], if_not_exists=True)
    db.catalog.create_table(
        GATHER_TABLE,
        TableSchema(columns=[ColumnSpec(name=name, dtype=dtype)
                             for name, dtype in gather_columns]),
    )


class PShardGather(PhysicalNode):
    """Scatter partial SQL to every shard, gather, combine, return."""

    def __init__(self, schema, inner: PhysicalNode, plan: ShardPlan,
                 gather_columns: "list[tuple[str, DataType]]",
                 executor: ShardedExtractor) -> None:
        super().__init__(schema)
        self.inner = inner
        self.plan = plan
        self.gather_columns = gather_columns
        self.executor = executor

    def children(self) -> "list[PhysicalNode]":
        return [self.inner]

    def describe(self) -> str:
        return (f"ShardGather shards={self.executor.n_shards} "
                f"gather_cols={len(self.gather_columns)}")

    def _params(self) -> "tuple[dict | None, dict | None]":
        values = ex.current_param_values() or {}
        remap = {f"s{slot}": value for slot, value in values.items()}
        partial = ({name: remap[name]
                    for name in self.plan.partial_param_names}
                   if self.plan.partial_param_names else None)
        combine = ({name: remap[name]
                    for name in self.plan.combine_param_names}
                   if self.plan.combine_param_names else None)
        return partial, combine

    def _run(self, ctx: ExecutionContext) -> Chunk:
        partial_params, combine_params = self._params()
        shard_results = self.executor.query_all(self.plan.partial_sql,
                                                partial_params)
        for shard_id, (result, report) in enumerate(shard_results):
            # Fold worker-side counters into this execution's context so
            # the session report covers work done anywhere.
            ctx.rows_extracted += report.get("rows_extracted", 0)
            ctx.pages_read += report.get("pages_read", 0)
            ctx.pages_skipped += report.get("pages_skipped", 0)
            ctx.pages_skipped_zone += report.get("pages_skipped_zone", 0)
            ctx.trace.append({
                "op": "shard_partial",
                "shard": shard_id,
                "rows": result.row_count,
                "rows_extracted": report.get("rows_extracted", 0),
                "rows_extracted_here": report.get("rows_extracted_here", 0),
                "rows_coalesced": report.get("rows_coalesced", 0),
                "rows_served_eager": report.get("rows_served_eager", 0),
                "seconds": round(report.get("execute_s", 0.0), 4),
            })

        gathered: dict[str, Column] = {}
        for index, (name, _dtype) in enumerate(self.gather_columns):
            gathered[name] = Column.concat(
                [result.columns[index] for result, _report in shard_results])

        combine_db = _fresh_combine_db()
        _create_gather_table(combine_db, self.gather_columns)
        combine_db.bulk_insert(GATHER_TABLE, gathered)
        combined = combine_db.query(self.plan.combine_sql, combine_params)
        ctx.trace.append({"op": "shard_combine",
                          "partial_rows": sum(r.row_count
                                              for r, _rep in shard_results),
                          "rows": combined.row_count})
        return Chunk(
            columns={out.cid: combined.columns[i]
                     for i, out in enumerate(self.schema)},
            length=combined.row_count,
        )


class ShardRouter:
    """Decides, per compiled statement, scatter-gather vs local plan."""

    def __init__(self, executor: ShardedExtractor, *, lazy_table: str,
                 allowed_tables: "frozenset[str]") -> None:
        self.executor = executor
        self.lazy_table = lazy_table
        self.allowed_tables = frozenset(allowed_tables)
        self.decomposed = 0
        self.fallbacks = 0

    def _eligible(self, entry) -> bool:
        # Only plans that touch the lazy data table (and nothing outside
        # the sharded schema) scatter; metadata-only and sys.* queries
        # stay parent-local — the parent holds full metadata.
        return (self.lazy_table in entry.tables
                and entry.tables <= self.allowed_tables)

    def _validated_plan(self, db, stmt
                        ) -> "tuple[ShardPlan, list] | None":
        plan = decompose_select(stmt)
        if plan is None:
            return None
        partial_stmt = parse_statement(plan.partial_sql)
        bound = bind_select(db.catalog, partial_stmt)
        gather_columns = [(col.name, col.dtype) for col in bound.output]
        # SUM/AVG decompose only over exact integer addition: a partial
        # sum that binds DOUBLE would re-associate float rounding.
        exact = set(exact_sum_columns(plan))
        for name, dtype in gather_columns:
            if name in exact and dtype is not DataType.BIGINT:
                return None
        scratch = _fresh_combine_db()
        _create_gather_table(scratch, gather_columns)
        combine_stmt = parse_statement(plan.combine_sql)
        combine_bound = bind_select(scratch.catalog, combine_stmt)
        return plan, gather_columns, combine_bound

    def maybe_shard(self, db, entry):
        """Wrap a fresh plan-cache entry if it decomposes; else return it
        unchanged.  Never raises — any surprise falls back local."""
        try:
            if not self._eligible(entry):
                return entry
            validated = self._validated_plan(db, entry.stmt)
            if validated is None:
                self.fallbacks += 1
                return entry
            plan, gather_columns, combine_bound = validated
            outer = entry.optimized.output
            if len(combine_bound.output) != len(outer) or any(
                    got.dtype is not want.dtype
                    for got, want in zip(combine_bound.output, outer)):
                logger.debug("shard fallback: combine output mismatch "
                             "for %s", plan.combine_sql)
                self.fallbacks += 1
                return entry
            gather = PShardGather(outer, entry.physical, plan,
                                  gather_columns, self.executor)
            self.decomposed += 1
            return dataclasses.replace(entry, physical=gather,
                                       physical_local=entry.physical)
        except Exception:
            logger.debug("shard decomposition failed; running locally",
                         exc_info=True)
            self.fallbacks += 1
            return entry

    def explain_section(self, db, stmt) -> "Optional[str]":
        """The EXPLAIN extra: shard fan-out for decomposable statements,
        a scattered-extraction note for the rest."""
        try:
            validated = self._validated_plan(db, stmt)
        except Exception:
            validated = None
        n = self.executor.n_shards
        if validated is None:
            return (f"== sharded execution ({n} shards) ==\n"
                    f"single plan; extraction scattered to owning shards")
        plan = validated[0]
        return "\n".join([
            f"== sharded execution ({n} shards) ==",
            f"scatter (per shard): {plan.partial_sql}",
            f"gather: {'.'.join(GATHER_TABLE)}"
            f"[{', '.join(name for name, _dt in validated[1])}]",
            f"combine: {plan.combine_sql}",
        ])
