"""The shard worker process: one warehouse over one shard of the corpus.

``worker_main`` is the (spawn-safe, picklable) process target.  Each
worker builds a full ``SeismicWarehouse`` in lazy mode over a
:class:`~repro.shard.partition.ShardRepositoryView` restricted to its
shard's files — so it harvests only its shard's metadata, owns its
shard's extraction cache, and runs its own staleness detection.  It then
serves a tiny command loop over the control pipe:

``ping``
    liveness + identity (pid, file count).
``query``
    run a partial SELECT against the shard warehouse; the result ships
    as a codec-encoded batch (:mod:`repro.net.frames`) through shared
    memory, plus the worker-side :class:`QueryReport` counters.
``extract``
    decode specific records of one owned file (the remote half of the
    parent's ``LazyDataBinding._extract_direct``); pieces ship codec-
    encoded through shared memory.
``stats``
    live cache snapshot + served-command counters (tests and
    ``sys.shards``).
``clear_cache``
    drop the shard's extraction cache and plan cache (cold benchmarks).
``release``
    unlink shared-memory blocks the parent has finished reading.
``close``
    drain and exit.

Replies are ``{"ok": True, ...}`` or ``{"ok": False, "error": <type>,
"message": <str>}``; a worker never dies from a request error.
"""

from __future__ import annotations

import os
import traceback

from repro.etl.metadata import Granularity
from repro.shard.partition import ShardRepositoryView
from repro.shard.transport import INLINE_LIMIT, BlobShipper, encode_pieces

_REPORT_KEYS = (
    "rows_out", "rows_extracted", "rows_extracted_here", "rows_coalesced",
    "rows_served_eager", "promotions", "pages_read", "pages_skipped",
    "pages_skipped_zone", "operators_run", "execute_s", "plan_cache_hit",
)


class _ShardServer:
    """The live state of one worker: warehouse, shipper, counters."""

    def __init__(self, spec: dict) -> None:
        from repro.seismology.warehouse import SeismicWarehouse

        self.spec = spec
        self.repo = ShardRepositoryView(
            spec["root"], spec["uris"], extension=spec["extension"])
        self.warehouse = SeismicWarehouse(
            self.repo,
            mode="lazy",
            schema=spec["schema"],
            granularity=Granularity(spec["granularity"]),
            cache_budget_bytes=spec["cache_budget_bytes"],
        )
        self.shipper = BlobShipper(spec.get("inline_limit", INLINE_LIMIT))
        self.queries = 0
        self.extracts = 0

    def handle(self, message: dict) -> dict:
        cmd = message.get("cmd")
        if cmd == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "files": len(self.spec["uris"])}
        if cmd == "query":
            return self._query(message)
        if cmd == "extract":
            return self._extract(message)
        if cmd == "stats":
            return self._stats()
        if cmd == "clear_cache":
            cache = self.warehouse.cache
            if cache is not None:
                cache.clear()
            self.warehouse.db.clear_plan_cache()
            return {"ok": True}
        if cmd == "release":
            freed = self.shipper.release(message.get("names", []))
            return {"ok": True, "freed": freed}
        raise ValueError(f"unknown shard command {cmd!r}")

    def _query(self, message: dict) -> dict:
        from repro.net.frames import encode_result_batch

        self.queries += 1
        result, report, _trace = self.warehouse.db.query_with_report(
            message["sql"], message.get("params"))
        payload = encode_result_batch(0, result)
        return {
            "ok": True,
            "names": result.names,
            "rows": result.row_count,
            "blob": self.shipper.ship(payload),
            "report": {key: getattr(report, key) for key in _REPORT_KEYS},
        }

    def _extract(self, message: dict) -> dict:
        self.extracts += 1
        binding = self.warehouse.pipeline.binding
        trace: list[dict] = []
        pieces = binding._fetch_file(
            message["uri"],
            [int(seq) for seq in message["seqs"]],
            list(message["data_cols"]),
            (None, None),
            trace,
        )
        rows = sum(piece_rows for _u, _s, _c, piece_rows in pieces)
        payload = encode_pieces(
            [(seq, columns) for _uri, seq, columns, _rows in pieces])
        return {"ok": True, "blob": self.shipper.ship(payload),
                "records": len(pieces), "rows": rows}

    def _stats(self) -> dict:
        cache = self.warehouse.cache
        return {
            "ok": True,
            "pid": os.getpid(),
            "files": len(self.spec["uris"]),
            "queries": self.queries,
            "extracts": self.extracts,
            "cache": cache.snapshot() if cache is not None else {},
            "shipped_blocks": self.shipper.shipped_blocks,
            "shipped_bytes": self.shipper.shipped_bytes,
        }

    def close(self) -> None:
        self.shipper.close()
        self.warehouse.close()


def worker_main(conn, spec: dict) -> None:
    """Process entrypoint: build the shard warehouse, serve the pipe."""
    server = _ShardServer(spec)
    try:
        conn.send({"ok": True, "event": "ready", "pid": os.getpid(),
                   "files": len(spec["uris"])})
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message.get("cmd") == "close":
                conn.send({"ok": True})
                break
            try:
                reply = server.handle(message)
            except Exception as exc:  # reply, never die, on request errors
                reply = {"ok": False, "error": type(exc).__name__,
                         "message": str(exc),
                         "detail": traceback.format_exc(limit=4)}
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        server.close()
        conn.close()
