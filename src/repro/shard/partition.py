"""Partitioning the mseed repository into per-shard extraction domains.

A :class:`ShardMap` assigns every file URI to exactly one shard.  Two
partitioners are supported:

* ``hash`` — stable CRC32 of the URI modulo the shard count.  Insensitive
  to file ordering, so adding files never reshuffles existing ones.
* ``range`` — contiguous chunks of the URI-sorted file list.  mSEED
  repositories name files by stream/time, so this approximates
  time-range sharding: each worker owns a contiguous slice of the
  corpus and scans stay local to a shard.

:class:`ShardRepositoryView` is how a worker process sees only its
shard: a :class:`~repro.mseed.repository.Repository` whose
``list_files()`` is filtered to the shard's URIs.  Metadata harvest runs
over ``list_files()``, so a worker's warehouse loads (and caches, and
watches for staleness) exactly its own shard.
"""

from __future__ import annotations

import bisect
import os
import zlib

from repro.errors import ShardConfigError
from repro.mseed.repository import FileInfo, Repository

_PARTITIONERS = ("hash", "range")


def _hash_of(uri: str, n_shards: int) -> int:
    return zlib.crc32(uri.encode("utf-8")) % n_shards


class ShardMap:
    """An immutable URI → shard assignment for ``n_shards`` workers."""

    def __init__(self, n_shards: int, assignments: dict[str, int],
                 by: str) -> None:
        if n_shards < 1:
            raise ShardConfigError("n_shards must be >= 1")
        if by not in _PARTITIONERS:
            raise ShardConfigError(
                f"unknown partitioner {by!r}: expected one of "
                f"{_PARTITIONERS}")
        self.n_shards = n_shards
        self.by = by
        self._assignments = dict(assignments)
        # Range fallback for URIs that appear after the map was built:
        # bisect into the sorted (first-uri, shard) boundaries.
        self._range_starts: list[str] = []
        self._range_shards: list[int] = []
        if by == "range":
            first_of: dict[int, str] = {}
            for uri, shard in assignments.items():
                if shard not in first_of or uri < first_of[shard]:
                    first_of[shard] = uri
            for shard in sorted(first_of, key=lambda s: first_of[s]):
                self._range_starts.append(first_of[shard])
                self._range_shards.append(shard)

    @classmethod
    def build(cls, uris: "list[str]", n_shards: int,
              by: str = "hash") -> "ShardMap":
        if by not in _PARTITIONERS:
            raise ShardConfigError(
                f"unknown partitioner {by!r}: expected one of "
                f"{_PARTITIONERS}")
        assignments: dict[str, int] = {}
        if by == "hash":
            for uri in uris:
                assignments[uri] = _hash_of(uri, n_shards)
        else:
            ordered = sorted(uris)
            per_shard = max(1, -(-len(ordered) // n_shards))  # ceil div
            for index, uri in enumerate(ordered):
                assignments[uri] = min(index // per_shard, n_shards - 1)
        return cls(n_shards, assignments, by)

    def shard_of(self, uri: str) -> int:
        """The owning shard; unseen URIs get a stable fallback."""
        shard = self._assignments.get(uri)
        if shard is not None:
            return shard
        if self.by == "range" and self._range_starts:
            index = bisect.bisect_right(self._range_starts, uri) - 1
            return self._range_shards[max(index, 0)]
        return _hash_of(uri, self.n_shards)

    def uris_of(self, shard_id: int) -> list[str]:
        return sorted(uri for uri, shard in self._assignments.items()
                      if shard == shard_id)

    def counts(self) -> list[int]:
        out = [0] * self.n_shards
        for shard in self._assignments.values():
            out[shard] += 1
        return out

    def __len__(self) -> int:
        return len(self._assignments)


class ShardRepositoryView(Repository):
    """A repository restricted to one shard's files.

    Everything but enumeration is inherited: ``stat``/``open``/``read``
    still resolve any URI under the root (staleness checks must see the
    real file), but ``list_files()`` — and therefore metadata harvest —
    covers only this shard's URIs.
    """

    def __init__(self, root: "str | os.PathLike", uris: "list[str]",
                 *, extension: str = ".mseed") -> None:
        super().__init__(root, extension=extension)
        self._shard_uris = set(uris)

    def list_files(self) -> list[FileInfo]:
        return [info for info in super().list_files()
                if info.uri in self._shard_uris]
