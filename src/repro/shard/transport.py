"""Bulk-data transport between shard workers and the parent process.

Extracted column batches and query results never travel as pickles:
arrays are encoded with the same best-of codec machinery the storage
engine uses for segment pages (:mod:`repro.storage.codecs`) and the
encoded bytes move through ``multiprocessing.shared_memory`` blocks.
Small payloads (below :data:`INLINE_LIMIT`) ride inline on the control
pipe — a shared-memory segment per tiny reply would cost more in
syscalls than it saves in copies.

The worker owns its shared-memory blocks until the parent confirms it
has read them (a ``release`` command), so a block can never be unlinked
while the parent still maps it.

Wire shapes
-----------

* an **array block**: ``[u8 name_len][name][u8 np_descr_len][np_descr]
  [u8 dtype_code][u8 codec_id][u32 count][u32 nbytes][payload]`` —
  ``np_descr`` restores the exact numpy dtype after the codec round-trip
  widens integers to int64.
* **extraction pieces** (one file's worth): ``[u32 n_pieces]`` then per
  piece ``[u64 seq_no][u16 n_arrays]`` + that many array blocks.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import numpy as np

from repro.db.types import DataType
from repro.errors import ShardError
from repro.storage.codecs import decode_array, encode_array

INLINE_LIMIT = 64 * 1024

_DTYPE_CODES = {
    DataType.BOOLEAN: 0,
    DataType.BIGINT: 1,
    DataType.DOUBLE: 2,
    DataType.VARCHAR: 3,
    DataType.TIMESTAMP: 4,
}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}


def _codec_type_for(array: np.ndarray) -> DataType:
    """The storage DataType whose codecs can carry this numpy array."""
    kind = array.dtype.kind
    if kind in "iu":
        return DataType.BIGINT
    if kind == "f":
        return DataType.DOUBLE
    if kind == "b":
        return DataType.BOOLEAN
    if kind in "OU":
        return DataType.VARCHAR
    raise ShardError(f"cannot ship array of dtype {array.dtype}")


def encode_named_array(name: str, array: np.ndarray) -> bytes:
    dtype = _codec_type_for(array)
    descr = "object" if array.dtype.kind in "OU" else array.dtype.str
    if array.dtype.kind == "U":
        array = array.astype(object)
    elif array.dtype.kind in "iu" and array.dtype != np.int64:
        array = array.astype(np.int64)
    elif array.dtype.kind == "f" and array.dtype != np.float64:
        array = array.astype(np.float64)
    codec_id, payload = encode_array(dtype, np.ascontiguousarray(array))
    name_b = name.encode("utf-8")
    descr_b = descr.encode("ascii")
    header = struct.pack(
        "<B%dsB%dsBBII" % (len(name_b), len(descr_b)),
        len(name_b), name_b, len(descr_b), descr_b,
        _DTYPE_CODES[dtype], codec_id, len(array), len(payload))
    return header + payload


def decode_named_array(buffer: memoryview, offset: int
                       ) -> tuple[str, np.ndarray, int]:
    name_len = buffer[offset]
    offset += 1
    name = bytes(buffer[offset:offset + name_len]).decode("utf-8")
    offset += name_len
    descr_len = buffer[offset]
    offset += 1
    descr = bytes(buffer[offset:offset + descr_len]).decode("ascii")
    offset += descr_len
    dtype_code, codec_id, count, nbytes = struct.unpack_from(
        "<BBII", buffer, offset)
    offset += struct.calcsize("<BBII")
    payload = bytes(buffer[offset:offset + nbytes])
    offset += nbytes
    array = decode_array(_CODE_DTYPES[dtype_code], codec_id, payload, count)
    if descr != "object":
        wanted = np.dtype(descr)
        if array.dtype != wanted:
            array = array.astype(wanted)
    return name, array, offset


def encode_pieces(pieces: "list[tuple[int, dict[str, np.ndarray]]]") -> bytes:
    """Encode one file's extraction pieces: ``[(seq_no, {col: array})]``."""
    chunks = [struct.pack("<I", len(pieces))]
    for seq_no, arrays in pieces:
        chunks.append(struct.pack("<QH", seq_no, len(arrays)))
        for name in sorted(arrays):
            chunks.append(encode_named_array(name, arrays[name]))
    return b"".join(chunks)


def decode_pieces(data: bytes) -> "list[tuple[int, dict[str, np.ndarray]]]":
    buffer = memoryview(data)
    (n_pieces,) = struct.unpack_from("<I", buffer, 0)
    offset = struct.calcsize("<I")
    pieces = []
    for _ in range(n_pieces):
        seq_no, n_arrays = struct.unpack_from("<QH", buffer, offset)
        offset += struct.calcsize("<QH")
        arrays: dict[str, np.ndarray] = {}
        for _ in range(n_arrays):
            name, array, offset = decode_named_array(buffer, offset)
            arrays[name] = array
        pieces.append((seq_no, arrays))
    return pieces


class BlobShipper:
    """Worker-side outbox of shared-memory blocks awaiting release.

    ``ship()`` turns an encoded byte string into a pipe-safe descriptor:
    small payloads inline, larger ones into a fresh shared-memory block
    whose name the parent echoes back in a ``release`` command once
    read.  Keeping the handle open here (not just unlinking) is what
    guarantees the block outlives the parent's attach.
    """

    def __init__(self, inline_limit: int = INLINE_LIMIT) -> None:
        self.inline_limit = inline_limit
        self._pending: dict[str, shared_memory.SharedMemory] = {}
        self.shipped_blocks = 0
        self.shipped_bytes = 0

    def ship(self, data: bytes) -> dict:
        self.shipped_bytes += len(data)
        if len(data) <= self.inline_limit:
            return {"kind": "inline", "data": data}
        block = shared_memory.SharedMemory(create=True, size=len(data))
        block.buf[:len(data)] = data
        self._pending[block.name] = block
        self.shipped_blocks += 1
        return {"kind": "shm", "name": block.name, "size": len(data)}

    def release(self, names: "list[str]") -> int:
        freed = 0
        for name in names:
            block = self._pending.pop(name, None)
            if block is not None:
                block.close()
                block.unlink()
                freed += 1
        return freed

    def close(self) -> None:
        self.release(list(self._pending))


def open_blob(descriptor: dict) -> bytes:
    """Parent-side: materialise a shipped blob into local bytes."""
    if descriptor["kind"] == "inline":
        return descriptor["data"]
    block = shared_memory.SharedMemory(name=descriptor["name"])
    try:
        return bytes(block.buf[:descriptor["size"]])
    finally:
        block.close()
