"""Splitting one SELECT into per-shard partials plus a combine query.

The scatter-gather algebra: a statement decomposes when every aggregate
it computes has an exact partial form —

========  =================================  =======================
aggregate  per-shard partial                  parent combine
========  =================================  =======================
COUNT      ``COUNT(x) AS __aj``               ``SUM(__aj)``
MIN/MAX    ``MIN(x) AS __aj``                 ``MIN(__aj)``
SUM(int)   ``SUM(x) AS __aj``                 ``SUM(__aj)``
AVG(int)   ``SUM(x) AS __aj_s, COUNT(x)       ``SUM(__aj_s) /
           AS __aj_c``                        SUM(__aj_c)``
========  =================================  =======================

SUM and AVG decompose only over integer inputs: float64 integer
arithmetic is exact below 2**53, so re-summing per-shard sums is
associative and reproduces the single-process result bit for bit.
Floating-point inputs (and STDDEV/MEDIAN/DISTINCT aggregates) do not
decompose — those statements fall back to the single-plan path, where
only *extraction* is scattered across shards, which is bit-exact by
construction.

Group-by keys become gather columns ``__g0..`` computed per shard;
the combine query re-groups on them.  The engine's aggregate kernel
orders groups by sorted key values (not input order), so re-grouping
gathered partials reproduces the exact single-process row order no
matter which shard delivered first.

Everything is validated by *binding the generated SQL*: the partial
against the parent's own catalog (shard catalogs are schema-identical),
the combine against a scratch catalog holding the gather table.  Any
surprise — a SUM that binds DOUBLE, a combine output dtype differing
from the original plan's — rejects the decomposition instead of
risking a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import expr as ex
from repro.db.sql import ast
from repro.db.sql.parser import parse_prepared
from repro.db.types import DataType
from repro.shard.sqlgen import RenderError, render_expr, render_table

# Aggregates with an exact partial form (see module docstring).
_DECOMPOSABLE_AGGS = {"count", "min", "max", "sum", "avg"}
# Partial SUM columns must bind to exact integer addition.
_EXACT_SUM_TYPES = {DataType.BIGINT}

GATHER_TABLE = ("shard_gather", "partials")


@dataclass
class ShardPlan:
    """One decomposed SELECT: scatter SQL, gather schema, combine SQL."""

    partial_sql: str
    combine_sql: str
    # (name, dtype) of every gather-table column, in partial-output order.
    gather_columns: "list[tuple[str, DataType]]" = field(default_factory=list)
    # Parameter names each generated statement actually uses (the
    # engine's named-parameter binding rejects extras).
    partial_param_names: "tuple[str, ...]" = ()
    combine_param_names: "tuple[str, ...]" = ()
    # (partial column, aggregate kind) for every partial aggregate.
    partial_agg_columns: "list[tuple[str, str]]" = field(default_factory=list)


class _NotDecomposable(Exception):
    """Internal control flow: fall back to the single-plan path."""


def _walk(expr: ex.Expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _all_exprs(stmt: ast.SelectStmt):
    for item in stmt.items:
        yield item.expr
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr


def _collect_aggs(stmt: ast.SelectStmt) -> "list[tuple[str, ex.AggCall]]":
    """Unique aggregate calls (by rendered text), in first-seen order."""
    seen: dict[str, ex.AggCall] = {}
    for expr in _all_exprs(stmt):
        for node in _walk(expr):
            if isinstance(node, ex.AggCall):
                seen.setdefault(render_expr(node), node)
    return list(seen.items())


def decompose_select(stmt: ast.SelectStmt) -> "ShardPlan | None":
    """Build the scatter-gather plan for ``stmt``, or None if it has no
    exact decomposition.  Callers must still validate by binding."""
    try:
        return _decompose(stmt)
    except (_NotDecomposable, RenderError):
        return None


def _decompose(stmt: ast.SelectStmt) -> "ShardPlan | None":
    if len(stmt.from_items) != 1 or \
            not isinstance(stmt.from_items[0], ast.TableRef):
        return None
    aggs = _collect_aggs(stmt)
    if not aggs and not stmt.group_by:
        # Plain row-returning SELECT: shards cannot pre-reduce anything
        # and row order is the executor's to define — run the single
        # plan with scattered extraction instead.
        return None
    for _text, agg in aggs:
        if agg.distinct or agg.name.lower() not in _DECOMPOSABLE_AGGS:
            return None
        if isinstance(agg.arg, ex.Star):
            return None

    # Group keys, deduplicated by rendered text.
    group_texts: list[str] = []
    group_exprs: list[ex.Expr] = []
    for expr in stmt.group_by:
        text = render_expr(expr)
        if text not in group_texts:
            group_texts.append(text)
            group_exprs.append(expr)

    # Partial SELECT items + the substitution map for the combine side.
    partial_items: list[str] = []
    subst: dict[str, str] = {}
    partial_agg_columns: "list[tuple[str, str]]" = []  # (column, kind)
    for index, text in enumerate(group_texts):
        partial_items.append(f"{text} AS __g{index}")
        subst[text] = f"__g{index}"
    for index, (text, agg) in enumerate(aggs):
        kind = agg.name.lower()
        arg = "*" if agg.arg is None else render_expr(agg.arg)
        if kind == "avg":
            partial_items.append(f"SUM({arg}) AS __a{index}_s")
            partial_items.append(f"COUNT({arg}) AS __a{index}_c")
            subst[text] = (f"(SUM(__a{index}_s) / SUM(__a{index}_c))")
            partial_agg_columns.append((f"__a{index}_s", "sum"))
            partial_agg_columns.append((f"__a{index}_c", "count"))
        elif kind == "count":
            partial_items.append(f"COUNT({arg}) AS __a{index}")
            subst[text] = f"SUM(__a{index})"
            partial_agg_columns.append((f"__a{index}", "count"))
        else:  # min / max / sum keep their own operator in the combine
            partial_items.append(f"{kind.upper()}({arg}) AS __a{index}")
            subst[text] = f"{kind.upper()}(__a{index})"
            partial_agg_columns.append((f"__a{index}", kind))

    partial_sql = (f"SELECT {', '.join(partial_items)} "
                   f"FROM {render_table(stmt.from_items[0])}")
    if stmt.where is not None:
        partial_sql += f" WHERE {render_expr(stmt.where)}"
    if group_texts:
        partial_sql += f" GROUP BY {', '.join(group_texts)}"

    # Combine rendering: aggregate calls and group-key expressions
    # become gather-column fragments; any column reference that survives
    # substitution would read a raw row the gather table does not have.
    item_aliases = {item.alias.lower() for item in stmt.items
                    if item.alias is not None}

    def make_transform(aliases_ok: "set[str]"):
        def transform(node: ex.Expr) -> "str | None":
            replacement = subst.get(render_expr(node))
            if replacement is not None:
                return replacement
            if isinstance(node, ex.AggCall):
                raise _NotDecomposable  # agg missed by collection
            if isinstance(node, ex.ColumnRef):
                if len(node.parts) == 1 and \
                        node.parts[0].lower() in aliases_ok:
                    return node.parts[0]
                raise _NotDecomposable  # raw column outside any group key
            return None
        return transform

    combine_items = []
    for index, item in enumerate(stmt.items):
        rendered = render_expr(item.expr, make_transform(set()))
        alias = item.alias if item.alias else f"__c{index}"
        combine_items.append(f"{rendered} AS {alias}")
    distinct = "DISTINCT " if stmt.distinct else ""
    combine_sql = (f"SELECT {distinct}{', '.join(combine_items)} "
                   f"FROM {'.'.join(GATHER_TABLE)}")
    if group_texts:
        keys = ", ".join(f"__g{i}" for i in range(len(group_texts)))
        combine_sql += f" GROUP BY {keys}"
    if stmt.having is not None:
        combine_sql += \
            f" HAVING {render_expr(stmt.having, make_transform(set()))}"
    if stmt.order_by:
        orders = []
        for order in stmt.order_by:
            rendered = render_expr(order.expr,
                                   make_transform(item_aliases))
            orders.append(rendered + ("" if order.ascending else " DESC"))
        combine_sql += f" ORDER BY {', '.join(orders)}"
    if stmt.limit is not None:
        combine_sql += f" LIMIT {stmt.limit}"
    if stmt.offset is not None:
        combine_sql += f" OFFSET {stmt.offset}"

    _partial_stmt, partial_spec = parse_prepared(partial_sql)
    _combine_stmt, combine_spec = parse_prepared(combine_sql)
    return ShardPlan(
        partial_sql=partial_sql,
        combine_sql=combine_sql,
        partial_param_names=partial_spec.names,
        combine_param_names=combine_spec.names,
        partial_agg_columns=partial_agg_columns,
    )


def exact_sum_columns(plan: ShardPlan) -> "list[str]":
    """Partial columns whose bound dtype must be an exact-integer SUM."""
    return [name for name, kind in plan.partial_agg_columns
            if kind == "sum"]
