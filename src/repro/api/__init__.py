"""The unified client API: Connection / Cursor / PreparedStatement.

Every query surface in the repository is a shim over this layer:

* ``SeismicWarehouse.connect()`` returns a :class:`Connection`;
* :class:`~repro.service.service.ClientSession.cursor` exposes the same
  :class:`Cursor` protocol over the concurrent query service;
* the legacy ``query()`` / ``execute()`` / ``query_with_report()``
  methods remain as deprecated wrappers.

Cursors stream the final projection in row batches (``fetchone`` /
``fetchmany`` / ``fetchall`` / iteration), statements accept ``?``
positional and ``:name`` named parameters, and compiled plans are cached
so repeat executions skip parse/bind/optimise.
"""

from repro.api.connection import Connection, PreparedStatement, connect
from repro.api.cursor import Cursor

__all__ = ["Connection", "Cursor", "PreparedStatement", "connect"]
