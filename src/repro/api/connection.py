"""Connections and prepared statements — the unified client API.

One :class:`Connection` wraps one :class:`~repro.db.exec.engine.Database`
(usually obtained via :meth:`SeismicWarehouse.connect`).  Cursors opened
on it stream results in row batches; statements run through the engine's
plan cache, so re-executing the same (or the same *parameterised*) SQL
skips parse/bind/optimise entirely.  :class:`PreparedStatement` makes
that contract explicit: compile once, execute many times with different
bound values.

The ``sys.*`` system tables are first-class through this API: any
cursor can ``SELECT`` from ``sys.queries``, ``sys.sessions`` (and, on a
warehouse, the subsystem tables) — including joins and aggregates — to
introspect the very engine it is connected to.
"""

from __future__ import annotations

from typing import Optional

from repro.api.cursor import Cursor
from repro.db.exec.engine import Database
from repro.db.exec.result import Result
from repro.errors import ExecutionError

__all__ = ["Connection", "PreparedStatement", "connect"]


class Connection:
    """A client handle on one database: the cursor factory.

    DB-API-2.0-shaped: :meth:`cursor`, :meth:`close`, context-manager
    support, and a :meth:`commit` no-op (the engine autocommits).  The
    sqlite3-style :meth:`execute` convenience opens a fresh cursor,
    executes, and returns it.
    """

    def __init__(self, db: Database, *,
                 batch_rows: Optional[int] = None) -> None:
        self._db = db
        self._batch_rows = batch_rows
        self._closed = False

    @property
    def db(self) -> Database:
        """The underlying engine (introspection: plans, oplog, recycler)."""
        return self._db

    # -- cursors ------------------------------------------------------------

    def cursor(self, *, batch_rows: Optional[int] = None) -> Cursor:
        """Open a new streaming cursor on this connection."""
        self._check_open()
        return Cursor(self._run, batch_rows=batch_rows or self._batch_rows)

    def execute(self, sql: str, params=None) -> Cursor:
        """Open a cursor, execute, return it (sqlite3-style shortcut)."""
        return self.cursor().execute(sql, params)

    def query(self, sql: str, params=None) -> Result:
        """Execute a SELECT and materialise the full Result in one call."""
        self._check_open()
        return self._db.query(sql, params)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Compile ``sql`` now; execute it later with bound values."""
        self._check_open()
        return PreparedStatement(self, sql)

    def _run(self, sql: str, params, batch_rows: int):
        self._check_open()
        return self._db.open_query(sql, params, batch_rows=batch_rows)

    # -- transaction shape (autocommit engine) ------------------------------

    def commit(self) -> None:
        """No-op: every statement autocommits."""

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"Connection({state}, plan_cache={self._db.plan_cache_len()})"


class PreparedStatement:
    """One statement compiled once and executed many times.

    Construction compiles (and plan-caches) the SQL immediately, so
    syntax and binding errors surface at prepare time; each
    :meth:`execute` then starts from a plan-cache hit and only binds the
    supplied values.  ``param_count`` / ``param_names`` describe the
    declared placeholders.
    """

    def __init__(self, connection: Connection, sql: str) -> None:
        self.connection = connection
        self.sql = sql
        kind, payload, _report = connection.db._compile_sql(sql)
        if kind == "select":
            spec = payload.spec
        else:
            _stmt, spec = payload
        self.param_style = spec.style  # None | 'positional' | 'named'
        self.param_count = spec.count
        self.param_names = tuple(spec.names)

    def execute(self, params=None, *,
                cursor: Optional[Cursor] = None) -> Cursor:
        """Execute with ``params`` bound; returns the (given) cursor."""
        target = cursor if cursor is not None else self.connection.cursor()
        return target.execute(self.sql, params)

    def query(self, params=None) -> Result:
        """Execute and materialise the full Result in one call."""
        return self.connection.query(self.sql, params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = " ".join(self.sql.split())[:60]
        return f"PreparedStatement({head!r})"


def connect(target) -> Connection:
    """Open a :class:`Connection` over a Database or a warehouse.

    Accepts a :class:`~repro.db.exec.engine.Database` or any object with
    a ``db`` attribute (e.g. :class:`~repro.seismology.warehouse.
    SeismicWarehouse`).
    """
    if isinstance(target, Database):
        return Connection(target)
    db = getattr(target, "db", None)
    if isinstance(db, Database):
        return Connection(db)
    raise ExecutionError(
        f"cannot connect to {type(target).__name__}: expected a Database "
        "or an object exposing one as .db"
    )
