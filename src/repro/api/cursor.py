"""DB-API-2.0-shaped cursors over streaming query execution.

A :class:`Cursor` is a thin consumption protocol over a pluggable
*runner* — a callable ``(sql, params, batch_rows) -> run`` where ``run``
is either a :class:`~repro.db.exec.engine.StreamingQuery` (the in-process
path: batches are produced on demand) or a
:class:`~repro.db.exec.engine.CompletedQuery` (DDL/DML, EXPLAIN, and
queries executed remotely by a
:class:`~repro.service.service.WarehouseService` worker).  The same
cursor class therefore serves direct connections and service client
sessions — the "one entry point everywhere" of the unified API.

Every ``execute`` gives the cursor a fresh, private
:class:`~repro.db.exec.engine.QueryReport` (:attr:`Cursor.report`),
replacing the older ``Database.query_with_report`` tuple juggling.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.db.exec.result import Result
from repro.db.types import DataType
from repro.errors import ExecutionError

DEFAULT_CURSOR_BATCH_ROWS = 1024
"""Streaming granularity when ``arraysize`` is left at the DB-API
default of 1 (fetching single rows must not pull single-row batches)."""


class Cursor:
    """Fetch rows from one statement at a time, in batches.

    Implements the familiar DB-API 2.0 surface — :meth:`execute`,
    :meth:`executemany`, :meth:`fetchone` / :meth:`fetchmany` /
    :meth:`fetchall`, iteration, :attr:`arraysize`,
    :attr:`description`, :attr:`rowcount` — plus engine-specific
    extensions: :attr:`report` (the per-execution
    :class:`~repro.db.exec.engine.QueryReport`), :attr:`trace` (run-time
    rewrite operators), :attr:`rows_streamed` (rows pulled from the
    engine so far, which lags the full result while streaming), and
    :meth:`scalar`.
    """

    def __init__(self, runner: Callable, *,
                 batch_rows: Optional[int] = None) -> None:
        self._runner = runner
        self._default_batch_rows = batch_rows
        self.arraysize = 1
        self._run = None
        self._batches: Optional[Iterator[Result]] = None
        self._buffer: list[tuple] = []
        self._buffer_pos = 0
        self._rowcount_override: Optional[int] = None
        self._exhausted = True
        self._closed = False
        self.rows_streamed = 0

    # -- execution ----------------------------------------------------------

    def execute(self, operation: str, params=None, *,
                batch_rows: Optional[int] = None) -> "Cursor":
        """Run one statement; returns ``self`` for chaining."""
        self._check_open()
        self._finish_run()
        size = (batch_rows or self._default_batch_rows
                or max(self.arraysize, DEFAULT_CURSOR_BATCH_ROWS))
        self._run = self._runner(operation, params, size)
        self._batches = self._run.batches()
        self._buffer = []
        self._buffer_pos = 0
        self._rowcount_override = None
        self._exhausted = not self._run.is_rowset
        if self._exhausted:
            # Non-rowset statements (DDL/DML) finish inside the runner;
            # drain the (empty) batch protocol for symmetry.
            for _ in self._batches:
                pass
        self.rows_streamed = 0
        return self

    def executemany(self, operation: str, seq_of_params) -> "Cursor":
        """Run one parameterised statement per value set (DML batching).

        ``rowcount`` afterwards is the total across the batch — or ``-1``
        (unknown) as soon as *any* constituent run reports ``-1``, per
        DB-API semantics: a partial sum would silently under-report the
        batch total.
        """
        total = 0
        indeterminate = False
        ran = False
        for params in seq_of_params:
            self.execute(operation, params)
            ran = True
            if self._run.rowcount < 0:
                indeterminate = True
            else:
                total += self._run.rowcount
        if ran:
            self._rowcount_override = -1 if indeterminate else total
        return self

    # -- metadata -----------------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        """DB-API 7-tuples ``(name, type_code, ...)``; None outside SELECT."""
        if self._run is None or not self._run.is_rowset:
            return None
        return [
            (name, dtype, None, None, None, None, None)
            for name, dtype in zip(self._run.names, self._run.dtypes)
        ]

    @property
    def column_names(self) -> list[str]:
        self._require_rowset()
        return list(self._run.names)

    @property
    def dtypes(self) -> list[DataType]:
        self._require_rowset()
        return list(self._run.dtypes)

    @property
    def rowcount(self) -> int:
        """Rows affected (DML) or produced; -1 while a stream is open.

        After :meth:`executemany`, the total across the whole batch.
        """
        if self._rowcount_override is not None:
            return self._rowcount_override
        if self._run is None:
            return -1
        return self._run.rowcount

    @property
    def report(self):
        """The per-execution :class:`QueryReport` (None before execute)."""
        return None if self._run is None else self._run.report

    @property
    def trace(self) -> list[dict]:
        return [] if self._run is None else self._run.trace

    @property
    def spans(self) -> Optional[dict]:
        """The execution's span tree (JSON-serialisable), or ``None``.

        Filled when the engine runs with ``trace_spans=True``; streaming
        executions report it once the stream is exhausted or closed.
        """
        report = self.report
        return None if report is None else report.spans

    # -- fetching -----------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        """The next row, or ``None`` when the result is exhausted."""
        self._require_rowset()
        if not self._ensure_buffered(1):
            return None
        row = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """Up to ``size`` rows (default :attr:`arraysize`)."""
        self._require_rowset()
        size = self.arraysize if size is None else size
        if size <= 0:
            return []
        self._ensure_buffered(size)
        end = min(self._buffer_pos + size, len(self._buffer))
        rows = self._buffer[self._buffer_pos:end]
        self._buffer_pos = end
        return rows

    def fetchall(self) -> list[tuple]:
        """Every remaining row (materialises the rest of the stream)."""
        self._require_rowset()
        while not self._exhausted:
            self._pull_batch()
        rows = self._buffer[self._buffer_pos:]
        self._buffer_pos = len(self._buffer)
        return rows

    def scalar(self) -> Any:
        """The single value of a 1x1 result (clear errors otherwise)."""
        self._require_rowset()
        if len(self._run.names) != 1:
            raise ExecutionError(
                f"scalar() needs a single-column result, got "
                f"{len(self._run.names)} columns"
            )
        first = self.fetchone()
        if first is None:
            raise ExecutionError("scalar() on an empty result")
        if self.fetchone() is not None:
            raise ExecutionError("scalar() on a multi-row result")
        return first[0]

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Abandon any open stream and refuse further use."""
        if self._closed:
            return
        self._finish_run()
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("cursor is closed")

    def _require_rowset(self) -> None:
        self._check_open()
        if self._run is None:
            raise ExecutionError("no statement has been executed")
        if not self._run.is_rowset:
            raise ExecutionError(
                "the last statement did not produce a result set"
            )

    def _ensure_buffered(self, ahead: int) -> bool:
        """Buffer at least ``ahead`` unread rows; False when exhausted."""
        while (len(self._buffer) - self._buffer_pos) < ahead \
                and not self._exhausted:
            self._pull_batch()
        return (len(self._buffer) - self._buffer_pos) > 0

    def _pull_batch(self) -> None:
        assert self._batches is not None
        try:
            batch = next(self._batches)
        except StopIteration:
            self._exhausted = True
            return
        self.rows_streamed += batch.row_count
        # Drop already-consumed rows so huge streams don't accumulate.
        if self._buffer_pos:
            self._buffer = self._buffer[self._buffer_pos:]
            self._buffer_pos = 0
        self._buffer.extend(batch.rows())

    def _finish_run(self) -> None:
        if self._run is not None:
            self._run.close()
        self._run = None
        self._batches = None
        self._buffer = []
        self._buffer_pos = 0
        self._exhausted = True
