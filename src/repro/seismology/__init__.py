"""Seismic data analysis on the Lazy ETL warehouse — the paper's demo app.

:class:`~repro.seismology.warehouse.SeismicWarehouse` wires a repository,
an ingestion strategy (lazy / eager / external) and the mSEED schema
together; :mod:`~repro.seismology.queries` carries the paper's Figure-1
queries and the analytical suite; :mod:`~repro.seismology.stalta`
implements the STA/LTA event hunting the demo scenario describes;
:mod:`~repro.seismology.browse` is the metadata browsing panel.
"""

from repro.seismology.warehouse import SeismicWarehouse
from repro.seismology.queries import (
    fig1_query1,
    fig1_query1_template,
    fig1_query2,
    fig1_query2_template,
    analytical_suite,
    QuerySpec,
)
from repro.seismology.stalta import (
    sta_lta_ratio,
    detect_triggers,
    DetectedEvent,
    hunt_events,
)
from repro.seismology import browse

__all__ = [
    "SeismicWarehouse",
    "fig1_query1",
    "fig1_query1_template",
    "fig1_query2",
    "fig1_query2_template",
    "analytical_suite",
    "QuerySpec",
    "sta_lta_ratio",
    "detect_triggers",
    "DetectedEvent",
    "hunt_events",
    "browse",
]
