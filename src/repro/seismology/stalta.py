"""STA/LTA event detection — the demo's "hunt for interesting seismic
events".

§4: "Such tasks include finding extreme values over Short Term Averaging
(STA, typically over an interval of 2 seconds) and Long Term Averaging
(LTA, typically over an interval of 15 seconds)".  The classic detector
compares the short-term average energy with the long-term average and
triggers when the ratio crosses a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timefmt import MICROS_PER_SECOND, format_iso8601


def _moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average; positions before a full window use the
    partial prefix (so the array aligns with the input)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    cumulative = np.cumsum(np.insert(values.astype(np.float64), 0, 0.0))
    out = np.empty(len(values), dtype=np.float64)
    full = cumulative[window:] - cumulative[:-window]
    out[window - 1:] = full / window
    counts = np.arange(1, min(window, len(values) + 1))
    out[: window - 1] = cumulative[1:window] / counts[: len(values)]
    return out


def sta_lta_ratio(values: np.ndarray, sample_rate: float,
                  sta_seconds: float = 2.0,
                  lta_seconds: float = 15.0) -> np.ndarray:
    """Classic STA/LTA on the signal's energy (squared amplitude)."""
    if sta_seconds >= lta_seconds:
        raise ValueError("STA window must be shorter than LTA window")
    energy = values.astype(np.float64) ** 2
    sta_n = max(int(round(sta_seconds * sample_rate)), 1)
    lta_n = max(int(round(lta_seconds * sample_rate)), sta_n + 1)
    sta = _moving_average(energy, sta_n)
    lta = _moving_average(energy, lta_n)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(lta > 0, sta / lta, 0.0)
    # The detector is blind until one full LTA window has passed.
    ratio[: lta_n] = 0.0
    return ratio


def detect_triggers(ratio: np.ndarray, on_threshold: float = 3.5,
                    off_threshold: float = 1.5) -> list[tuple[int, int]]:
    """Trigger-on/off index pairs (off index is exclusive)."""
    if off_threshold >= on_threshold:
        raise ValueError("off threshold must be below on threshold")
    triggers: list[tuple[int, int]] = []
    active_from: int | None = None
    above_on = ratio >= on_threshold
    below_off = ratio < off_threshold
    for index in range(len(ratio)):
        if active_from is None:
            if above_on[index]:
                active_from = index
        elif below_off[index]:
            triggers.append((active_from, index))
            active_from = None
    if active_from is not None:
        triggers.append((active_from, len(ratio)))
    return triggers


@dataclass(frozen=True)
class DetectedEvent:
    """One STA/LTA detection."""

    onset_time_us: int
    end_time_us: int
    peak_ratio: float
    peak_time_us: int

    @property
    def duration_s(self) -> float:
        return (self.end_time_us - self.onset_time_us) / MICROS_PER_SECOND

    def render(self) -> str:
        return (
            f"event at {format_iso8601(self.onset_time_us)} "
            f"(peak ratio {self.peak_ratio:.1f}, "
            f"duration {self.duration_s:.1f} s)"
        )


def detect_events(times_us: np.ndarray, values: np.ndarray,
                  sample_rate: float, *, sta_seconds: float = 2.0,
                  lta_seconds: float = 15.0, on_threshold: float = 3.5,
                  off_threshold: float = 1.5) -> list[DetectedEvent]:
    """Run the detector over one contiguous series."""
    if len(times_us) != len(values):
        raise ValueError("times and values must align")
    if len(values) == 0:
        return []
    ratio = sta_lta_ratio(values, sample_rate, sta_seconds, lta_seconds)
    events = []
    for on_idx, off_idx in detect_triggers(ratio, on_threshold, off_threshold):
        segment = ratio[on_idx:off_idx]
        peak_offset = int(np.argmax(segment))
        events.append(
            DetectedEvent(
                onset_time_us=int(times_us[on_idx]),
                end_time_us=int(times_us[min(off_idx, len(times_us) - 1)]),
                peak_ratio=float(segment[peak_offset]),
                peak_time_us=int(times_us[on_idx + peak_offset]),
            )
        )
    return events


def hunt_events(warehouse, station: str, channel: str,
                start_iso: str, end_iso: str, *,
                sta_seconds: float = 2.0, lta_seconds: float = 15.0,
                on_threshold: float = 3.5,
                off_threshold: float = 1.5) -> list[DetectedEvent]:
    """Fetch a stream window through the warehouse and run the detector.

    The fetch itself is an ordinary dataview query — in lazy mode only the
    files of this (station, channel, window) are extracted.
    """
    sql = f"""SELECT D.sample_time, D.sample_value, F.sample_rate
FROM {warehouse.dataview}
WHERE F.station = '{station}' AND F.channel = '{channel}'
AND D.sample_time >= '{start_iso}' AND D.sample_time < '{end_iso}'
ORDER BY D.sample_time"""
    result = warehouse.query(sql)
    if result.row_count == 0:
        return []
    times = result.columns[0].values
    values = result.columns[1].values.astype(np.float64)
    rate = float(result.columns[2].values[0])
    return detect_events(times, values, rate,
                         sta_seconds=sta_seconds, lta_seconds=lta_seconds,
                         on_threshold=on_threshold,
                         off_threshold=off_threshold)
