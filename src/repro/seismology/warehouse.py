"""SeismicWarehouse: one object tying repository + strategy + schema.

The demo's "scientific data warehouse, ready for query processing without
waiting for long initial loading" (§1) — or, in ``eager``/``external``
mode, the baselines it is compared against.  The same SQL (including the
Figure-1 queries verbatim) runs in every mode.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Literal, Optional

from repro.db.exec.engine import Database
from repro.db.exec.result import Result
from repro.errors import ETLError, ShardConfigError
from repro.etl.eager import EagerETL
from repro.etl.external import ExternalTableETL
from repro.etl.framework import ETLReport, SourceAdapter
from repro.etl.lazy import LazyETL
from repro.etl.metadata import Granularity
from repro.etl.mseed_adapter import MSeedAdapter
from repro.etl.refresh import EagerRefresh, MetadataSync, SyncReport
from repro.mseed.repository import Repository
from repro.obs.export import render_prometheus, snapshot_json
from repro.obs.metrics import ExtractionInstruments, MetricsRegistry
from repro.seismology import schema as schema_mod
from repro.util.oplog import OperationLog

Mode = Literal["lazy", "eager", "external"]

logger = logging.getLogger("repro.warehouse")


class SeismicWarehouse:
    """A seismic data warehouse over an mSEED repository."""

    def __init__(
        self,
        repository: "Repository | str | os.PathLike",
        *,
        mode: Mode = "lazy",
        schema: str = "mseed",
        granularity: Granularity = Granularity.RECORD,
        adapter: Optional[SourceAdapter] = None,
        cache_budget_bytes: int = 256 * 1024 * 1024,
        cache_policy: str = "lru",
        recycler_budget_bytes: int = 64 * 1024 * 1024,
        enable_recycler: bool = True,
        enable_lazy_rewrite: bool = True,
        enable_pruning: bool = True,
        defer_load: bool = False,
        storage_path: "str | os.PathLike | None" = None,
        bufferpool_bytes: int = 64 * 1024 * 1024,
        trace_spans: bool = False,
        shards: int = 1,
        shard_by: str = "hash",
    ) -> None:
        if mode not in ("lazy", "eager", "external"):
            raise ETLError(f"unknown warehouse mode {mode!r}")
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            raise ShardConfigError(
                f"shards must be a positive integer, got {shards!r}")
        if shard_by not in ("hash", "range"):
            raise ShardConfigError(
                f"shard_by must be 'hash' or 'range', got {shard_by!r}")
        if shards > 1 and mode != "lazy":
            raise ShardConfigError(
                f"sharded execution requires mode='lazy' (workers run "
                f"lazy shard warehouses); got mode={mode!r}")
        if shards > 1 and adapter is not None:
            raise ShardConfigError(
                "sharded execution supports the built-in mSEED adapter "
                "only: a custom adapter cannot be reconstructed inside "
                "spawned shard workers")
        self.mode: Mode = mode
        self.schema = schema
        self.repo = (repository if isinstance(repository, Repository)
                     else Repository(repository))
        self.adapter = adapter or MSeedAdapter()
        self.shards = shards
        self.shard_by = shard_by
        self._cache_budget_bytes = cache_budget_bytes
        self._sharding = None
        self._shard_router = None
        self._shard_extract_pool = None
        self.oplog = OperationLog()
        # One registry per warehouse: every layer (storage, ETL, engine,
        # service) reports into it; scraped via metrics()/metrics_text().
        self.metrics_registry = MetricsRegistry()
        self._metrics_collector = None
        self.db = Database(
            oplog=self.oplog,
            recycler_budget_bytes=recycler_budget_bytes,
            enable_recycler=enable_recycler,
            enable_lazy_rewrite=enable_lazy_rewrite,
            enable_pruning=enable_pruning,
            trace_spans=trace_spans,
        )
        self.load_report: Optional[ETLReport] = None

        if mode == "lazy":
            self.pipeline = LazyETL(
                self.db, self.repo, self.adapter, schema=schema,
                granularity=granularity,
                cache_budget_bytes=cache_budget_bytes,
                cache_policy=cache_policy,
            )
        elif mode == "eager":
            self.pipeline = EagerETL(self.db, self.repo, self.adapter,
                                     schema=schema)
        else:
            self.pipeline = ExternalTableETL(self.db, self.repo,
                                             self.adapter, schema=schema)

        self.store = None
        if storage_path is not None:
            from repro.storage.store import TableStore

            self.store = TableStore(storage_path,
                                    bufferpool_bytes=bufferpool_bytes)
            # The query journal is durable: restore whatever the last
            # checkpoint spilled so sys.queries spans process restarts.
            self.db.journal.import_state(self.store.load_query_journal())

        if self._can_warm_start() and not defer_load:
            # Restart from the checkpoint: attach persisted metadata and
            # restore the extraction cache — no re-harvest, no re-ETL.
            # (defer_load opts out: the caller wants an explicit, cold
            # load() later, so the constructor must not populate tables.)
            outcome = self.pipeline.warm_start(self.store)
            self.load_report = outcome.report
            schema_mod.create_dataview(self.db, schema)
        else:
            self.pipeline.create_tables()
            if mode == "external":
                schema_mod.create_external_dataview(self.db, self.adapter,
                                                    schema)
            else:
                schema_mod.create_dataview(self.db, schema)
            if not defer_load:
                self.load()
        self._attach_promoted()
        self._wire_observability()
        if self.shards > 1 and not defer_load:
            self.ensure_sharding()

    def _can_warm_start(self) -> bool:
        if self.store is None or self.mode != "lazy":
            return False
        return (self.store.has_table(f"{self.schema}.files")
                and self.store.has_table(f"{self.schema}.records"))

    # -- lifecycle ----------------------------------------------------------------

    def load(self) -> ETLReport:
        """Run the mode's initial loading; returns the cost report."""
        started = time.perf_counter()
        outcome = self.pipeline.initial_load()
        report = outcome.report if hasattr(outcome, "report") else outcome
        report.seconds = max(report.seconds, time.perf_counter() - started)
        self.load_report = report
        self._attach_promoted()
        self._wire_observability()
        if self.shards > 1:
            self.ensure_sharding()
        return report

    def _attach_promoted(self) -> None:
        """Mount the store's promoted segments on the lazy binding.

        Promoted units persisted by an earlier process are served again
        immediately — zero re-extraction of promoted ranges after a
        warm start.  No-op outside lazy mode, without storage, or before
        the binding exists (``defer_load``).
        """
        if self.mode != "lazy" or self.store is None:
            return
        binding = self.pipeline.binding
        if binding is None or binding.promoted is not None:
            return
        from repro.storage.promoted import PromotedStore

        binding.promoted = PromotedStore(self.store)

    def _wire_observability(self) -> None:
        """Attach extraction instruments and the warehouse collector.

        Idempotent — both the constructor and :meth:`load` call it
        (under ``defer_load`` the lazy binding does not exist until
        after the load).  The collector samples subsystem counters at
        scrape time only, so queries never pay for it.
        """
        # Only the lazy binding exposes the ``metrics`` hook; eager and
        # external pipelines have no query-time extraction to instrument.
        binding = getattr(self.pipeline, "binding", None)
        if binding is not None and hasattr(binding, "metrics") \
                and binding.metrics is None:
            binding.metrics = ExtractionInstruments(self.metrics_registry)
        if self._metrics_collector is None:
            self._metrics_collector = \
                self.metrics_registry.register_collector(
                    self._collect_warehouse_metrics)
        # sys.* virtual tables over this warehouse's live state; the
        # registration replaces providers, so re-wiring is harmless.
        from repro.obs.systables import install_warehouse_system_tables

        install_warehouse_system_tables(self)

    def _collect_warehouse_metrics(self) -> dict:
        """Scrape-time sample of every subsystem's own counters."""
        out: dict[str, float] = {}
        cache = self.cache
        if cache is not None:
            snap = cache.snapshot()
            for name in ("lookups", "hits", "misses", "admissions",
                         "evictions", "stale_drops", "widenings",
                         "restored", "spills"):
                out[f"repro_cache_{name}_total"] = snap[name]
            out["repro_cache_entries"] = snap["entries"]
            out["repro_cache_used_bytes"] = snap["used_bytes"]
            out["repro_cache_protected_entries"] = snap["protected"]
        if self.store is not None:
            snap = self.store.pool.snapshot()
            for name in ("lookups", "hits", "misses", "evictions",
                         "disk_reads", "coalesced_loads"):
                out[f"repro_bufferpool_{name}_total"] = snap[name]
            out["repro_bufferpool_bytes_read_total"] = snap["bytes_read"]
            out["repro_bufferpool_pages"] = snap["pages"]
            out["repro_bufferpool_used_bytes"] = snap["used_bytes"]
            out["repro_bufferpool_pinned_pages"] = snap["pinned"]
        out["repro_plan_cache_hits_total"] = self.db.plan_cache_hits
        out["repro_plan_cache_misses_total"] = self.db.plan_cache_misses
        out["repro_plan_cache_entries"] = self.db.plan_cache_len()
        recycler = self.recycler
        if recycler is not None:
            stats = recycler.stats
            for name in ("lookups", "hits", "admissions", "evictions",
                         "rejected", "stale_drops"):
                out[f"repro_recycler_{name}_total"] = getattr(stats, name)
            out["repro_recycler_used_bytes"] = recycler.used_bytes
            out["repro_recycler_entries"] = len(recycler)
        heat = self.heat
        if heat is not None:
            out["repro_heat_tracked_units"] = len(heat)
        promoted = self.promoted
        if promoted is not None:
            out["repro_promoted_units"] = len(promoted)
            out["repro_promoted_disk_bytes"] = promoted.disk_bytes()
        sharding = self._sharding
        if sharding is not None:
            rows = sharding.describe()
            out["repro_shard_workers"] = len(rows)
            out["repro_shard_workers_alive"] = sum(
                1 for row in rows if row["alive"])
            out["repro_shard_queries_total"] = sum(
                row["queries"] for row in rows)
            out["repro_shard_extracts_total"] = sum(
                row["extracts"] for row in rows)
            out["repro_shard_rows_extracted_total"] = sum(
                row["rows_extracted"] for row in rows)
            out["repro_shard_errors_total"] = sum(
                row["errors"] for row in rows)
            out["repro_shard_restarts_total"] = sum(
                row["restarts"] for row in rows)
            router = self._shard_router
            if router is not None:
                out["repro_shard_plans_decomposed_total"] = router.decomposed
                out["repro_shard_plans_fallback_total"] = router.fallbacks
        return out

    # -- sharded execution --------------------------------------------------------

    @property
    def sharding(self):
        """The live :class:`~repro.shard.executor.ShardedExtractor`, or
        ``None`` while running single-process."""
        return self._sharding

    def ensure_sharding(self, shards: "int | None" = None,
                        shard_by: "str | None" = None) -> bool:
        """Bring up the shard worker pool and install the execution
        hooks.  Returns True if this call created the pool (False when
        sharding is already up or ``shards`` resolves to 1).
        """
        if shards is not None:
            if not isinstance(shards, int) or isinstance(shards, bool) \
                    or shards < 1:
                raise ShardConfigError(
                    f"shards must be a positive integer, got {shards!r}")
            self.shards = shards
        if shard_by is not None:
            if shard_by not in ("hash", "range"):
                raise ShardConfigError(
                    f"shard_by must be 'hash' or 'range', got {shard_by!r}")
            self.shard_by = shard_by
        if self.shards <= 1 or self._sharding is not None:
            return False
        if self.mode != "lazy":
            raise ShardConfigError(
                f"sharded execution requires mode='lazy'; got "
                f"mode={self.mode!r}")
        binding = self.pipeline.binding
        if binding is None:
            raise ShardConfigError(
                "sharded execution requires a loaded warehouse: call "
                "load() first (defer_load=True skipped it)")
        from repro.service.parallel import ParallelExtractor
        from repro.shard.executor import ShardedExtractor
        from repro.shard.gather import ShardRouter
        from repro.shard.partition import ShardMap

        uris = [info.uri for info in self.repo.list_files()]
        if self.shards > len(uris):
            logger.warning(
                "shards=%d exceeds the repository's %d files; "
                "%d worker(s) will own no files",
                self.shards, len(uris), self.shards - len(uris))
        shard_map = ShardMap.build(uris, self.shards, by=self.shard_by)
        executor = ShardedExtractor(
            str(self.repo.root), shard_map,
            schema=self.schema,
            granularity=self.pipeline.granularity,
            extension=self.repo.extension,
            cache_budget_bytes=self._cache_budget_bytes,
        )
        executor.start()
        router = ShardRouter(
            executor,
            lazy_table=self.pipeline.data_table,
            allowed_tables=frozenset({
                self.pipeline.data_table,
                self.pipeline.files_table,
                self.pipeline.records_table,
            }),
        )
        self._sharding = executor
        self._shard_router = router
        self.db.shard_router = router
        binding.remote_extractor = executor.extract
        if binding.extract_pool is None:
            # Scattered extraction for non-decomposable queries: without
            # a pool, per-file remote extracts would serialize even
            # though each runs on a different worker process.
            self._shard_extract_pool = ParallelExtractor(
                max_workers=self.shards)
            binding.extract_pool = self._shard_extract_pool
        # Plans compiled before sharding came up never met the router.
        self.db.clear_plan_cache()
        return True

    def shutdown_sharding(self) -> None:
        """Drain and join the shard pool, uninstall every hook.

        Idempotent; runs *before* any storage teardown in :meth:`close`
        so in-flight worker replies never race closed handles.
        """
        executor, self._sharding = self._sharding, None
        self._shard_router = None
        if executor is None:
            return
        if self.db.shard_router is not None:
            self.db.shard_router = None
        binding = getattr(self.pipeline, "binding", None)
        if binding is not None:
            binding.remote_extractor = None
            if self._shard_extract_pool is not None \
                    and binding.extract_pool is self._shard_extract_pool:
                binding.extract_pool = None
        if self._shard_extract_pool is not None:
            self._shard_extract_pool.close()
            self._shard_extract_pool = None
        executor.close()
        # Cached PShardGather plans hold dead worker handles.
        self.db.clear_plan_cache()

    def checkpoint(self, storage_path: "str | os.PathLike | None" = None
                   ) -> int:
        """Persist warehouse state for a warm restart.

        Metadata tables (and, in eager mode, the data table) go to
        compressed segment files; in lazy mode the extraction cache is
        snapshotted too, so a fresh process re-answers past queries with
        zero re-extraction.  Returns the number of cache entries spilled.
        """
        if storage_path is not None and self.store is None:
            from repro.storage.store import TableStore

            self.store = TableStore(storage_path)
        if self.store is None:
            raise ETLError(
                "no storage attached: pass storage_path here or at "
                "construction"
            )
        # Spill the query journal into the manifest meta area first so
        # the single atomic commit below covers it (durable sys.queries).
        self.store.save_query_journal(self.db.journal.export_state(),
                                      commit=False)
        if self.mode == "lazy":
            entries = self.pipeline.checkpoint(self.store)
            self._attach_promoted()
            return entries
        if self.db.catalog.store is None:
            self.db.attach(self.store)
        self.db.checkpoint()
        return 0

    def close(self) -> None:
        """Release observability hooks and storage handles.

        Idempotent.  Unregisters the warehouse's scrape-time collector
        from its registry (creating and closing many warehouses must not
        accumulate collectors) and closes promoted-segment readers.  The
        warehouse object is not usable for queries afterwards only to
        the extent that its storage handles are gone; in-memory tables
        still answer.

        Teardown order matters: the shard worker pool drains first (its
        replies may still reference caches and promoted readers), then
        observability hooks, then storage handles.
        """
        self.shutdown_sharding()
        if self._metrics_collector is not None:
            self.metrics_registry.unregister_collector(
                self._metrics_collector)
            self._metrics_collector = None
        promoted = self.promoted
        if promoted is not None:
            promoted.close()
        for table in self.db.catalog.tables():
            backing = getattr(table, "disk_backing", None)
            if backing is not None:
                backing.close()

    def __enter__(self) -> "SeismicWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def promote(self, budget_bytes: "int | None" = None, *,
                min_score: "float | None" = None, max_units: int = 512):
        """Run one synchronous lazy→eager promotion cycle.

        Materializes the hottest extraction units (per the access-heat
        tracker fed by every query) into promoted segments in the
        attached store, and demotes the coldest segments while the
        promoted footprint exceeds ``budget_bytes``.  Subsequent queries
        over promoted ranges read transformed columns from disk pages
        instead of re-extracting.  Returns a
        :class:`~repro.service.promoter.PromotionReport`.

        ``min_score`` defaults to the
        :class:`~repro.service.promoter.PromoterConfig` threshold:
        nothing is promoted until the workload has touched a unit more
        than once recently.  Pass ``min_score=0.0`` to materialize
        everything ever touched (an explicit "promote it all" request).

        For continuous promotion under live traffic, pass
        ``promote=True`` to :meth:`serve` instead (the service owns a
        :class:`~repro.service.promoter.BackgroundPromoter`).
        """
        if self.mode != "lazy":
            raise ETLError("promotion applies to lazy mode only")
        if self.store is None:
            raise ETLError(
                "promotion requires attached storage: pass storage_path "
                "at construction or checkpoint(storage_path=...) first"
            )
        if self.pipeline.binding is None:
            raise ETLError(
                "promotion requires a loaded warehouse: call load() "
                "first (defer_load=True skipped it)"
            )
        self._attach_promoted()
        from repro.service.promoter import Promoter, PromoterConfig

        config = PromoterConfig(
            budget_bytes=(PromoterConfig.budget_bytes if budget_bytes is None
                          else budget_bytes),
            min_score=(PromoterConfig.min_score if min_score is None
                       else min_score),
            max_units_per_cycle=max_units,
        )
        promoter = Promoter(self.pipeline.binding, self.pipeline.heat,
                            self.pipeline.binding.promoted, config)
        return promoter.run_cycle()

    def sync(self) -> SyncReport:
        """Refresh the warehouse after repository changes."""
        if self.mode == "lazy":
            return MetadataSync(self.pipeline).sync()
        if self.mode == "eager":
            return EagerRefresh(self.pipeline).refresh()
        # External tables always read the live repository: nothing to do.
        return SyncReport(seconds=0.0)

    # -- querying -----------------------------------------------------------------

    @property
    def dataview(self) -> str:
        return f"{self.schema}.dataview"

    def connect(self):
        """Open a :class:`~repro.api.connection.Connection` — the unified
        query entry point.

        Cursors opened on it stream results in row batches, statements
        accept ``?``/``:name`` parameters, and compiled plans are cached
        across executions::

            conn = wh.connect()
            cur = conn.cursor()
            cur.execute("SELECT F.station, MIN(D.sample_value) "
                        "FROM mseed.dataview WHERE F.network = :net "
                        "GROUP BY F.station", {"net": "NL"})
            for row in cur:
                ...
            print(cur.report.plan_cache_hit, cur.report.execute_s)
        """
        from repro.api import Connection

        return Connection(self.db)

    def query(self, sql: str, params=None) -> Result:
        """Run a SELECT, fully materialised.

        .. deprecated:: thin wrapper over the unified API — prefer
           ``connect()`` and a cursor, which streams and reports.
        """
        return self.db.query(sql, params)

    def serve(self, **config):
        """Open a concurrent query service over this warehouse.

        Returns a started
        :class:`~repro.service.service.WarehouseService`; keyword
        arguments are :class:`~repro.service.service.ServiceConfig`
        fields (``max_workers``, ``queue_depth``, ``coalesce``,
        ``extract_workers``, ...).  Use as a context manager::

            with wh.serve(max_workers=8) as svc:
                a, b = svc.session("alice"), svc.session("bob")
                futures = [a.submit(sql1), b.submit(sql2)]
                outcomes = [f.result() for f in futures]
        """
        from repro.service.service import WarehouseService

        return WarehouseService(self, **config)

    def execute(self, sql: str, params=None) -> Result:
        """Run any statement, fully materialised.

        .. deprecated:: thin wrapper over the unified API — prefer
           ``connect()`` and a cursor.
        """
        return self.db.execute(sql, params)

    def explain(self, sql: str) -> str:
        return self.db.explain(sql)

    def explain_analyze(self, sql: str, params=None) -> str:
        """EXPLAIN ANALYZE: run the query and render measured actuals."""
        return self.db.explain_analyze(sql, params)

    # -- observability -----------------------------------------------------------

    def metrics(self) -> dict:
        """One metrics snapshot: ``{name: {type, help, samples}}``.

        Covers every wired subsystem — extraction cache, buffer pool,
        plan cache, recycler, heat/promotion, extraction instruments and
        (while serving) the service's latency/admission metrics.
        """
        return self.metrics_registry.snapshot()

    def metrics_text(self) -> str:
        """The current snapshot in Prometheus text exposition format."""
        return render_prometheus(self.metrics_registry)

    def metrics_json(self, **extra: object) -> str:
        """The current snapshot as a JSON document (plus ``extra`` keys)."""
        return snapshot_json(self.metrics_registry, **extra)

    # -- introspection (the demo's numbered panels) ----------------------------------

    @property
    def last_trace(self) -> list[dict]:
        """Operators injected at run time by the last query (panel 5/6)."""
        return self.db.last_trace

    def render_last_trace(self) -> str:
        return self.db.render_last_trace()

    @property
    def cache(self):
        """The extraction cache (panel 7); ``None`` outside lazy mode."""
        return self.pipeline.cache if self.mode == "lazy" else None

    @property
    def recycler(self):
        return self.db.recycler

    @property
    def heat(self):
        """The access-heat tracker; ``None`` outside lazy mode."""
        return getattr(self.pipeline, "heat", None)

    @property
    def promoted(self):
        """The promoted-segment store; ``None`` without lazy storage."""
        binding = getattr(self.pipeline, "binding", None)
        return None if binding is None else binding.promoted

    def files_extracted_by_last_query(self) -> list[str]:
        """Which repository files the last query touched (panel 5)."""
        return sorted({
            entry["file"] for entry in self.last_trace
            if entry.get("op") == "extract"
        })

    def warehouse_bytes(self) -> int:
        """Resident warehouse size, tables plus caches (experiment E4)."""
        total = self.db.warehouse_bytes()
        if self.cache is not None:
            total += self.cache.used_bytes
        return total

    def repository_bytes(self) -> int:
        return sum(info.size for info in self.repo.list_files())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeismicWarehouse(mode={self.mode}, repo={self.repo.root})"
