"""The paper's queries.

:func:`fig1_query1` and :func:`fig1_query2` are the two sample queries of
Figure 1, verbatim (modulo parametrised constants).  :func:`analytical_suite`
is the broader set of "tasks that help hunt for interesting seismic
events" (§4): short/long-term averaging windows, record retrieval for
visual analysis, per-station amplitude statistics, metadata browsing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timefmt import format_iso8601


@dataclass(frozen=True)
class QuerySpec:
    """One benchmarkable query."""

    qid: str
    title: str
    sql: str
    metadata_only: bool = False  # browsing queries never touch D


def fig1_query1(
    *,
    station: str = "ISK",
    channel: str = "BHE",
    day_start: str = "2010-01-12T00:00:00.000",
    day_end: str = "2010-01-12T23:59:59.999",
    window_start: str = "2010-01-12T22:15:00.000",
    window_end: str = "2010-01-12T22:15:02.000",
    view: str = "mseed.dataview",
) -> str:
    """Figure 1, first query: a short-term average (STA) over 2 seconds."""
    return f"""SELECT AVG(D.sample_value)
FROM {view}
WHERE F.station = '{station}'
AND F.channel = '{channel}'
AND R.start_time > '{day_start}'
AND R.start_time < '{day_end}'
AND D.sample_time > '{window_start}'
AND D.sample_time < '{window_end}'"""


def fig1_query2(
    *,
    network: str = "NL",
    channel: str = "BHZ",
    view: str = "mseed.dataview",
) -> str:
    """Figure 1, second query: min/max amplitude per station of a network."""
    return f"""SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM {view}
WHERE F.network = '{network}'
AND F.channel = '{channel}'
GROUP BY F.station"""


def fig1_query1_template(*, view: str = "mseed.dataview") -> str:
    """Figure 1 Q1 as a prepared statement (named parameters).

    Bind ``{"station": ..., "channel": ..., "day_start": ...,
    "day_end": ..., "window_start": ..., "window_end": ...}`` —
    timestamp parameters accept ISO-8601 strings, exactly like the
    literals in :func:`fig1_query1`.
    """
    return f"""SELECT AVG(D.sample_value)
FROM {view}
WHERE F.station = :station
AND F.channel = :channel
AND R.start_time > :day_start
AND R.start_time < :day_end
AND D.sample_time > :window_start
AND D.sample_time < :window_end"""


def fig1_query2_template(*, view: str = "mseed.dataview") -> str:
    """Figure 1 Q2 as a prepared statement (named parameters).

    Bind ``{"network": ..., "channel": ...}``; one plan-cached compile
    serves every network/channel combination.
    """
    return f"""SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM {view}
WHERE F.network = :network
AND F.channel = :channel
GROUP BY F.station"""


def analytical_suite(
    *,
    view: str = "mseed.dataview",
    station: str = "ISK",
    channel: str = "BHE",
    network: str = "NL",
    group_channel: str = "BHZ",
    sta_start_us: int = 1263334500_000_000,  # 2010-01-12T22:15:00
    sta_seconds: float = 2.0,
    lta_seconds: float = 15.0,
    record_start: str = "2010-01-12T22:10:00.000",
    record_end: str = "2010-01-12T22:10:10.000",
) -> list[QuerySpec]:
    """The BIRTE'12-style analytical workload (Q1..Q8)."""
    sta_start = format_iso8601(sta_start_us)
    sta_end = format_iso8601(sta_start_us + round(sta_seconds * 1_000_000))
    lta_end = format_iso8601(sta_start_us + round(lta_seconds * 1_000_000))
    day_start = "2010-01-12T00:00:00.000"
    day_end = "2010-01-12T23:59:59.999"
    return [
        QuerySpec(
            "Q1", "STA: short term average over 2 s (Figure 1, top)",
            fig1_query1(station=station, channel=channel,
                        window_start=sta_start, window_end=sta_end,
                        view=view),
        ),
        QuerySpec(
            "Q2", "min/max amplitude per station (Figure 1, bottom)",
            fig1_query2(network=network, channel=group_channel, view=view),
        ),
        QuerySpec(
            "Q3", "LTA: long term average over 15 s",
            fig1_query1(station=station, channel=channel,
                        window_start=sta_start, window_end=lta_end,
                        view=view),
        ),
        QuerySpec(
            "Q4", "retrieve one record's samples for visual analysis",
            f"""SELECT D.sample_time, D.sample_value
FROM {view}
WHERE F.station = '{station}' AND F.channel = '{channel}'
AND D.sample_time >= '{record_start}' AND D.sample_time < '{record_end}'
ORDER BY D.sample_time""",
        ),
        QuerySpec(
            "Q5", "energy proxy: average absolute amplitude per channel",
            f"""SELECT F.channel, AVG(ABS(D.sample_value)) AS mean_abs
FROM {view}
WHERE F.station = '{station}'
AND D.sample_time > '{sta_start}' AND D.sample_time < '{lta_end}'
GROUP BY F.channel
ORDER BY F.channel""",
        ),
        QuerySpec(
            "Q6", "sample counts per network (activity overview)",
            f"""SELECT F.network, COUNT(*) AS samples
FROM {view}
WHERE R.start_time > '{day_start}' AND R.start_time < '{day_end}'
GROUP BY F.network
ORDER BY F.network""",
        ),
        QuerySpec(
            "Q7", "amplitude spread per NL station (stddev)",
            f"""SELECT F.station, STDDEV_SAMP(D.sample_value) AS spread
FROM {view}
WHERE F.network = '{network}' AND F.channel = '{group_channel}'
GROUP BY F.station
ORDER BY spread DESC""",
        ),
        QuerySpec(
            "Q8", "metadata browsing: records per stream (no actual data!)",
            f"""SELECT F.network, F.station, F.channel,
COUNT(*) AS n_records, SUM(R.sample_count) AS n_samples
FROM mseed.files AS F, mseed.records AS R
WHERE F.file_location = R.file_location
GROUP BY F.network, F.station, F.channel
ORDER BY F.network, F.station, F.channel""",
            metadata_only=True,
        ),
    ]


def suite_for_external(specs: list[QuerySpec]) -> list[QuerySpec]:
    """Adapt the suite for external mode (no separate metadata tables).

    Q8 joins F and R directly, which external mode does not have; it is
    rewritten against the dataview (forcing the full scan external tables
    always pay — the point of the comparison).
    """
    adapted = []
    for spec in specs:
        if not spec.metadata_only:
            adapted.append(spec)
            continue
        adapted.append(
            QuerySpec(
                spec.qid, spec.title + " [external: via full scan]",
                """SELECT F.network, F.station, F.channel,
COUNT(*) AS n_rows
FROM mseed.dataview
GROUP BY F.network, F.station, F.channel
ORDER BY F.network, F.station, F.channel""",
                metadata_only=False,
            )
        )
    return adapted
