"""The warehouse schema: three tables and the denormalised ``dataview``.

"We define a (non-materialized) view dataview that joins all three tables
into a (de-normalized) 'universal table'" (§4).  Queries address it with
the inner aliases ``F``/``R``/``D`` exactly as in Figure 1; the view's
alias provenance map makes that resolvable.
"""

from __future__ import annotations

from repro.db.exec.engine import Database
from repro.etl.framework import SourceAdapter

DATAVIEW_COLUMNS = (
    # from F
    "file_location", "dataquality", "network", "station", "location",
    "channel", "encoding", "sample_rate",
    # from R
    "seq_no", "start_time", "end_time", "frequency", "sample_count",
    # from D
    "sample_time", "sample_value",
)


def dataview_sql(schema: str = "mseed") -> str:
    """The canonical dataview DDL over the normalised 3-table schema."""
    return f"""
CREATE VIEW {schema}.dataview AS
SELECT F.file_location AS file_location, F.dataquality, F.network,
       F.station, F.location, F.channel, F.encoding, F.sample_rate,
       R.seq_no, R.start_time, R.end_time, R.frequency, R.sample_count,
       D.sample_time, D.sample_value
FROM {schema}.files AS F, {schema}.records AS R, {schema}.data AS D
WHERE F.file_location = R.file_location
  AND R.file_location = D.file_location
  AND R.seq_no = D.seq_no
"""


def create_dataview(db: Database, schema: str = "mseed") -> None:
    db.execute(dataview_sql(schema))


def external_dataview_sql(schema: str = "mseed") -> str:
    """dataview for the external-table mode: a direct view over the wide
    universal table (which is what external tables actually expose)."""
    columns = ", ".join(DATAVIEW_COLUMNS)
    return f"CREATE VIEW {schema}.dataview AS SELECT {columns} FROM {schema}.raw"


def external_alias_map(adapter: SourceAdapter) -> dict[tuple[str, str], str]:
    """Alias provenance for the external dataview.

    Mirrors what the catalog derives automatically for the 3-table view,
    so ``F.station`` / ``R.start_time`` / ``D.sample_value`` resolve
    identically in every mode.  Collisions (both F and R declare
    ``start_time``) resolve to the record's attribute, matching the
    canonical view's exposure.
    """
    mapping: dict[tuple[str, str], str] = {}
    record_names = {spec.name for spec in adapter.record_columns()}
    data_names = {spec.name for spec in adapter.data_columns()}
    for spec in adapter.file_columns():
        if spec.name in DATAVIEW_COLUMNS and spec.name not in record_names:
            mapping[("f", spec.name)] = spec.name
    mapping[("f", "file_location")] = "file_location"
    for spec in adapter.record_columns():
        if spec.name in DATAVIEW_COLUMNS:
            mapping[("r", spec.name)] = spec.name
    for spec in adapter.data_columns():
        if spec.name in DATAVIEW_COLUMNS and spec.name not in (
            "file_location",
        ):
            mapping.setdefault(("d", spec.name), spec.name)
    return mapping


def create_external_dataview(db: Database, adapter: SourceAdapter,
                             schema: str = "mseed") -> None:
    db.execute(external_dataview_sql(schema))
    view = db.catalog.lookup((schema, "dataview"))
    from repro.db.catalog import View

    assert isinstance(view, View)
    view.alias_map.update(external_alias_map(adapter))
