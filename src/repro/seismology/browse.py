"""Metadata browsing and navigation — demo capability (2).

Everything here touches only the metadata tables, so in lazy mode these
run instantly regardless of repository size: "easy browsing of metadata
and navigation in the data" (§1).
"""

from __future__ import annotations

from repro.util.timefmt import format_iso8601


def station_overview(warehouse) -> str:
    """Networks, stations, channels and their record counts."""
    if warehouse.mode == "external":
        return ("(external mode has no metadata tables; browsing would "
                "scan the entire repository)")
    result = warehouse.query(f"""
SELECT F.network, F.station, F.channel, COUNT(*) AS files,
       SUM(F.n_records) AS records, MIN(F.start_time) AS coverage_start,
       MAX(F.end_time) AS coverage_end
FROM {warehouse.schema}.files AS F
GROUP BY F.network, F.station, F.channel
ORDER BY F.network, F.station, F.channel""")
    return result.format(max_rows=100)


def time_coverage(warehouse, network: str | None = None) -> list[dict]:
    """Per-station time coverage from file metadata."""
    where = f"WHERE network = '{network}'" if network else ""
    result = warehouse.query(f"""
SELECT network, station, MIN(start_time) AS first_sample,
       MAX(end_time) AS last_sample, COUNT(*) AS files
FROM {warehouse.schema}.files {where}
GROUP BY network, station
ORDER BY network, station""")
    out = []
    for network_code, station, first, last, files in result.rows():
        out.append({
            "network": network_code,
            "station": station,
            "first": format_iso8601(first),
            "last": format_iso8601(last),
            "files": files,
        })
    return out


def file_listing(warehouse, station: str | None = None,
                 channel: str | None = None) -> list[tuple]:
    """Files (uri, records, span) for navigation drill-down."""
    conditions = []
    if station:
        conditions.append(f"station = '{station}'")
    if channel:
        conditions.append(f"channel = '{channel}'")
    where = f"WHERE {' AND '.join(conditions)}" if conditions else ""
    result = warehouse.query(f"""
SELECT file_location, n_records, start_time, end_time, file_size
FROM {warehouse.schema}.files {where}
ORDER BY file_location""")
    return result.rows()


def record_listing(warehouse, file_location: str) -> list[tuple]:
    """Records of one file: the navigation leaf level."""
    escaped = file_location.replace("'", "''")
    result = warehouse.query(f"""
SELECT seq_no, start_time, end_time, frequency, sample_count
FROM {warehouse.schema}.records
WHERE file_location = '{escaped}'
ORDER BY seq_no""")
    return result.rows()
