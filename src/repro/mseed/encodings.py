"""Data-encoding registry for mSEED payloads.

mSEED declares the payload encoding in blockette 1000.  We implement the
encodings that occur in practice for waveform data: plain big-endian
integers and IEEE floats, plus Steim-1/Steim-2 (:mod:`repro.mseed.steim`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import UnsupportedEncodingError
from repro.mseed import steim

# SEED encoding format codes (blockette 1000, field 4).
ENC_ASCII = 0
ENC_INT16 = 1
ENC_INT32 = 3
ENC_FLOAT32 = 4
ENC_FLOAT64 = 5
ENC_STEIM1 = 10
ENC_STEIM2 = 11

_PLAIN_DTYPES: dict[int, np.dtype] = {
    ENC_INT16: np.dtype(">i2"),
    ENC_INT32: np.dtype(">i4"),
    ENC_FLOAT32: np.dtype(">f4"),
    ENC_FLOAT64: np.dtype(">f8"),
}

_NATIVE_DTYPES: dict[int, np.dtype] = {
    ENC_INT16: np.dtype(np.int32),
    ENC_INT32: np.dtype(np.int32),
    ENC_FLOAT32: np.dtype(np.float32),
    ENC_FLOAT64: np.dtype(np.float64),
}


@dataclass(frozen=True)
class EncodingInfo:
    """Static description of one encoding."""

    code: int
    name: str
    is_compressed: bool
    sample_bytes: float  # uncompressed bytes/sample; approximate for Steim


ENCODINGS: dict[int, EncodingInfo] = {
    ENC_INT16: EncodingInfo(ENC_INT16, "INT16", False, 2),
    ENC_INT32: EncodingInfo(ENC_INT32, "INT32", False, 4),
    ENC_FLOAT32: EncodingInfo(ENC_FLOAT32, "FLOAT32", False, 4),
    ENC_FLOAT64: EncodingInfo(ENC_FLOAT64, "FLOAT64", False, 8),
    ENC_STEIM1: EncodingInfo(ENC_STEIM1, "STEIM1", True, 4),
    ENC_STEIM2: EncodingInfo(ENC_STEIM2, "STEIM2", True, 4),
}


def encoding_name(code: int) -> str:
    """Human-readable name for an encoding code (``UNKNOWN(n)`` fallback)."""
    info = ENCODINGS.get(code)
    return info.name if info else f"UNKNOWN({code})"


def decode_payload(data: bytes, nsamples: int, encoding: int) -> np.ndarray:
    """Decode a record payload into a native-endian sample array."""
    if encoding == ENC_STEIM1:
        return steim.decode_steim1(data, nsamples)
    if encoding == ENC_STEIM2:
        return steim.decode_steim2(data, nsamples)
    dtype = _PLAIN_DTYPES.get(encoding)
    if dtype is None:
        raise UnsupportedEncodingError(
            f"encoding {encoding_name(encoding)} is not supported"
        )
    needed = nsamples * dtype.itemsize
    if len(data) < needed:
        raise UnsupportedEncodingError(
            f"payload too short for {nsamples} {encoding_name(encoding)} samples"
        )
    raw = np.frombuffer(data[:needed], dtype=dtype)
    return raw.astype(_NATIVE_DTYPES[encoding])


def encode_payload(
    samples: np.ndarray, encoding: int, capacity_bytes: int,
    previous: int | None = None,
) -> tuple[bytes, int]:
    """Encode as many samples as fit into ``capacity_bytes``.

    Returns ``(payload, n_encoded)``.  The writer loops, starting a new
    record for the remainder, exactly like real digitiser software.
    """
    if encoding in (ENC_STEIM1, ENC_STEIM2):
        max_frames = capacity_bytes // steim.FRAME_BYTES
        if max_frames < 1:
            raise UnsupportedEncodingError("record too small for one Steim frame")
        encoder: Callable = (
            steim.encode_steim1 if encoding == ENC_STEIM1 else steim.encode_steim2
        )
        return encoder(samples, max_frames, previous)
    dtype = _PLAIN_DTYPES.get(encoding)
    if dtype is None:
        raise UnsupportedEncodingError(
            f"encoding {encoding_name(encoding)} is not supported"
        )
    fit = min(len(samples), capacity_bytes // dtype.itemsize)
    if fit < 1:
        raise UnsupportedEncodingError("record too small for one sample")
    chunk = np.asarray(samples[:fit])
    if encoding in (ENC_INT16, ENC_INT32):
        info = np.iinfo(np.int16 if encoding == ENC_INT16 else np.int32)
        if chunk.min() < info.min or chunk.max() > info.max:
            raise UnsupportedEncodingError(
                f"sample out of range for {encoding_name(encoding)}"
            )
    return chunk.astype(dtype).tobytes(), fit
