"""File-repository abstraction.

The source datastore in the paper is "a repository containing files in
mSEED format" — millions of them behind FTP in the real deployments.  The
ETL layer never touches the filesystem directly; it goes through
:class:`Repository`, which provides listing, stat (mtime drives the lazy
refresh rule) and read access, and counts I/O so tests can assert that a
cache hit performs **zero** file reads.

:class:`SimulatedRemoteRepository` wraps any repository with access latency
and bandwidth limits, standing in for the FTP archives of [15].
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import FileMissingError, RepositoryError


@dataclass(frozen=True)
class FileInfo:
    """Identity and stat data for one repository file.

    ``uri`` is the stable identifier stored in the warehouse (the paper:
    "Each mSEED file is identified by its URI"); it is the path relative to
    the repository root, always with ``/`` separators.
    """

    uri: str
    size: int
    mtime_ns: int

    @property
    def name(self) -> str:
        return self.uri.rsplit("/", 1)[-1]


class Repository:
    """A local directory of mSEED files."""

    def __init__(self, root: str | os.PathLike, *, extension: str = ".mseed") -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise RepositoryError(f"repository root {self.root} is not a directory")
        self.extension = extension
        self.reads = 0
        self.bytes_read = 0
        self.stats = 0

    # -- listing / stat ----------------------------------------------------

    def list_files(self) -> list[FileInfo]:
        """All repository files, sorted by URI for determinism."""
        infos = []
        for path in sorted(self.root.rglob(f"*{self.extension}")):
            stat = path.stat()
            infos.append(
                FileInfo(
                    uri=path.relative_to(self.root).as_posix(),
                    size=stat.st_size,
                    mtime_ns=stat.st_mtime_ns,
                )
            )
        self.stats += len(infos)
        return infos

    def stat(self, uri: str) -> FileInfo:
        """Fresh stat for one file (used by the staleness check)."""
        path = self._resolve(uri)
        try:
            stat = path.stat()
        except FileNotFoundError as exc:
            raise FileMissingError(f"file {uri!r} vanished from repository") from exc
        self.stats += 1
        return FileInfo(uri=uri, size=stat.st_size, mtime_ns=stat.st_mtime_ns)

    def exists(self, uri: str) -> bool:
        return self._resolve(uri).is_file()

    # -- reading -----------------------------------------------------------

    def path_of(self, uri: str) -> Path:
        """Filesystem path for a URI (read-only use; counts as a read)."""
        path = self._resolve(uri)
        if not path.is_file():
            raise FileMissingError(f"file {uri!r} vanished from repository")
        return path

    def open(self, uri: str):
        """Open a file for binary reading, counting the access."""
        path = self.path_of(uri)
        self.reads += 1
        self.bytes_read += path.stat().st_size
        return open(path, "rb")

    def record_read(self, uri: str, nbytes: int) -> None:
        """Account for a partial read performed through :meth:`path_of`."""
        self.reads += 1
        self.bytes_read += nbytes

    def _resolve(self, uri: str) -> Path:
        if uri.startswith("/") or ".." in uri.split("/"):
            raise RepositoryError(f"unsafe repository URI {uri!r}")
        return self.root / uri

    # -- mutation helpers (drive the refresh experiments) -------------------

    def touch(self, uri: str) -> None:
        """Bump a file's mtime without changing content (staleness trigger)."""
        path = self.path_of(uri)
        stat = path.stat()
        bumped = stat.st_mtime_ns + 1_000_000_000
        os.utime(path, ns=(stat.st_atime_ns, bumped))

    def overwrite(self, uri: str, data: bytes) -> None:
        """Replace a file's content (a repository update)."""
        path = self._resolve(uri)
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        old_mtime = path.stat().st_mtime_ns if existed else 0
        path.write_bytes(data)
        # Guarantee a visible mtime advance even on coarse filesystems.
        stat = path.stat()
        if stat.st_mtime_ns <= old_mtime:
            os.utime(path, ns=(stat.st_atime_ns, old_mtime + 1_000_000_000))

    def remove(self, uri: str) -> None:
        self.path_of(uri).unlink()

    def reset_counters(self) -> None:
        self.reads = 0
        self.bytes_read = 0
        self.stats = 0

    def __iter__(self) -> Iterator[FileInfo]:
        return iter(self.list_files())

    def __repr__(self) -> str:
        return f"Repository({str(self.root)!r})"


class SimulatedRemoteRepository(Repository):
    """A repository with injected access latency, standing in for FTP.

    Every ``open``/``stat`` pays ``latency_s``; reads additionally pay
    ``size / bandwidth_bytes_per_s``.  Used by the benches that model the
    paper's remote ORFEUS archives where eager ETL must first pull every
    file over the wire.
    """

    def __init__(self, root: str | os.PathLike, *, latency_s: float = 0.002,
                 bandwidth_bytes_per_s: float = 20e6,
                 extension: str = ".mseed") -> None:
        super().__init__(root, extension=extension)
        self.latency_s = latency_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    def _delay(self, nbytes: int = 0) -> None:
        pause = self.latency_s + nbytes / self.bandwidth_bytes_per_s
        if pause > 0:
            time.sleep(pause)

    def stat(self, uri: str) -> FileInfo:
        self._delay()
        return super().stat(uri)

    def open(self, uri: str):
        path = self.path_of(uri)
        self._delay(path.stat().st_size)
        self.reads += 1
        self.bytes_read += path.stat().st_size
        return open(path, "rb")
