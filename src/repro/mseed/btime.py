"""SEED BTIME codec.

BTIME is SEED's 10-byte big-endian timestamp: year, day-of-year, hour,
minute, second, one unused byte, and a ``.0001 s`` (100 microsecond) field.
Sub-100-microsecond precision travels in blockette 1001's microsecond
field, handled by the record layer.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptRecordError
from repro.util.timefmt import day_of_year, from_yday, to_datetime

BTIME_SIZE = 10
_STRUCT = struct.Struct(">HHBBBBH")


def encode_btime(micros: int) -> bytes:
    """Encode epoch microseconds into a 10-byte BTIME.

    The 100-microsecond remainder below BTIME resolution is dropped here;
    callers that need it (blockette 1001) must compute it themselves via
    :func:`btime_residual_us`.
    """
    moment = to_datetime(micros)
    year, yday = day_of_year(micros)
    ten_thousandths = moment.microsecond // 100
    return _STRUCT.pack(
        year, yday, moment.hour, moment.minute, moment.second, 0, ten_thousandths
    )


def btime_residual_us(micros: int) -> int:
    """Microseconds below BTIME's 100-us resolution (0..99)."""
    return int(micros) % 100


def decode_btime(data: bytes, *, extra_us: int = 0) -> int:
    """Decode a 10-byte BTIME (+ optional blockette-1001 microseconds)."""
    if len(data) < BTIME_SIZE:
        raise CorruptRecordError(f"BTIME needs {BTIME_SIZE} bytes, got {len(data)}")
    year, yday, hour, minute, second, _unused, tenk = _STRUCT.unpack(data[:BTIME_SIZE])
    if not 1 <= yday <= 366:
        raise CorruptRecordError(f"BTIME day-of-year out of range: {yday}")
    if hour > 23 or minute > 59 or second > 60:
        raise CorruptRecordError(
            f"BTIME time fields out of range: {hour:02d}:{minute:02d}:{second:02d}"
        )
    if tenk > 9999:
        raise CorruptRecordError(f"BTIME .0001s field out of range: {tenk}")
    base = from_yday(year, yday, hour, minute, min(second, 59))
    if second == 60:  # leap second: fold into the next minute like obspy does
        base += 1_000_000
    return base + tenk * 100 + int(extra_us)
