"""mSEED record layer: the 48-byte fixed header plus blockettes and payload.

A record is the unit of metadata granularity in the paper's schema: the
``R`` table has one row per record, keyed by ``(file, seq_no)``.  Reading
only headers (48 + 16 bytes per record, seeking over payloads) is what
makes metadata-only initial loading cheap; decoding payloads is the
expensive step deferred to lazy extraction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptRecordError
from repro.mseed import encodings
from repro.mseed.blockettes import (
    Blockette1000,
    Blockette1001,
    BLOCKETTE_1000_SIZE,
    BLOCKETTE_1001_SIZE,
    decode_blockette_1000,
    decode_blockette_1001,
    decode_blockette_header,
)
from repro.mseed.btime import BTIME_SIZE, btime_residual_us, decode_btime, encode_btime

RECORD_HEADER_SIZE = 48
DEFAULT_RECORD_LENGTH = 512

_FIXED_TAIL = struct.Struct(">HhhBBBBiHH")  # fields after BTIME

QUALITY_CODES = ("D", "R", "Q", "M")


@dataclass(frozen=True)
class RecordHeader:
    """Decoded fixed section + blockette-1000/1001 essentials.

    This is exactly the per-record metadata the warehouse's ``R`` table
    stores; it is obtainable without touching the payload.
    """

    sequence_number: int
    quality: str
    station: str
    location: str
    channel: str
    network: str
    start_time_us: int
    sample_count: int
    sample_rate_factor: int
    sample_rate_multiplier: int
    activity_flags: int
    io_flags: int
    quality_flags: int
    time_correction: int
    data_offset: int
    blockette_offset: int
    encoding: int
    record_length: int
    timing_quality: int

    @property
    def sample_rate(self) -> float:
        """Samples per second derived from the factor/multiplier pair."""
        factor, mult = self.sample_rate_factor, self.sample_rate_multiplier
        if factor == 0:
            return 0.0
        if factor > 0 and mult > 0:
            return float(factor * mult)
        if factor > 0 and mult < 0:
            return -float(factor) / mult
        if factor < 0 and mult > 0:
            return -float(mult) / factor
        return 1.0 / float(factor * mult)

    @property
    def end_time_us(self) -> int:
        """Timestamp of the last sample in the record."""
        if self.sample_count <= 1 or self.sample_rate <= 0:
            return self.start_time_us
        span = round((self.sample_count - 1) * 1_000_000 / self.sample_rate)
        return self.start_time_us + span

    @property
    def source_id(self) -> str:
        """Canonical ``NET.STA.LOC.CHA`` stream identifier."""
        return f"{self.network}.{self.station}.{self.location}.{self.channel}"


@dataclass(frozen=True)
class MSeedRecord:
    """A fully decoded record: header plus native sample array."""

    header: RecordHeader
    samples: np.ndarray

    def sample_times_us(self) -> np.ndarray:
        """Exact integer-microsecond timestamps for every sample."""
        rate = self.header.sample_rate
        count = len(self.samples)
        offsets = np.round(np.arange(count, dtype=np.float64) * (1e6 / rate))
        return self.header.start_time_us + offsets.astype(np.int64)


def _pad(text: str, width: int) -> bytes:
    raw = text.encode("ascii")
    if len(raw) > width:
        raise CorruptRecordError(f"field {text!r} longer than {width} bytes")
    return raw.ljust(width)


def encode_record(
    *,
    sequence_number: int,
    quality: str,
    station: str,
    location: str,
    channel: str,
    network: str,
    start_time_us: int,
    samples: np.ndarray,
    sample_rate_factor: int,
    sample_rate_multiplier: int,
    encoding: int,
    record_length: int = DEFAULT_RECORD_LENGTH,
    timing_quality: int = 100,
    previous_sample: int | None = None,
) -> tuple[bytes, int]:
    """Assemble one record; returns ``(record_bytes, n_samples_encoded)``.

    The payload encoder packs as many samples as fit in the record; callers
    write the remainder into subsequent records.
    """
    if record_length & (record_length - 1):
        raise CorruptRecordError(f"record length {record_length} not a power of two")
    if not 0 <= sequence_number <= 999999:
        raise CorruptRecordError(f"sequence number {sequence_number} out of range")
    if quality not in QUALITY_CODES:
        raise CorruptRecordError(f"invalid quality code {quality!r}")

    data_offset = RECORD_HEADER_SIZE + BLOCKETTE_1000_SIZE + BLOCKETTE_1001_SIZE
    capacity = record_length - data_offset
    payload, encoded = encodings.encode_payload(
        samples, encoding, capacity, previous=previous_sample
    )
    if encoded > 0xFFFF:
        raise CorruptRecordError("more than 65535 samples in one record")

    header = bytearray()
    header.extend(f"{sequence_number:06d}".encode("ascii"))
    header.extend(quality.encode("ascii"))
    header.extend(b" ")
    header.extend(_pad(station, 5))
    header.extend(_pad(location, 2))
    header.extend(_pad(channel, 3))
    header.extend(_pad(network, 2))
    header.extend(encode_btime(start_time_us))
    header.extend(
        _FIXED_TAIL.pack(
            encoded,
            sample_rate_factor,
            sample_rate_multiplier,
            0,  # activity flags
            0,  # io/clock flags
            0,  # data quality flags
            2,  # number of blockettes
            0,  # time correction
            data_offset,
            RECORD_HEADER_SIZE,
        )
    )
    assert len(header) == RECORD_HEADER_SIZE

    power = record_length.bit_length() - 1
    b1000 = Blockette1000(
        encoding=encoding, word_order=1, record_length_power=power
    ).encode(next_offset=RECORD_HEADER_SIZE + BLOCKETTE_1000_SIZE)
    b1001 = Blockette1001(
        timing_quality=timing_quality,
        microseconds=btime_residual_us(start_time_us),
        frame_count=len(payload) // 64 if encoding in (10, 11) else 0,
    ).encode(next_offset=0)

    record = bytearray(record_length)
    record[:RECORD_HEADER_SIZE] = header
    record[RECORD_HEADER_SIZE:data_offset] = b1000 + b1001
    record[data_offset : data_offset + len(payload)] = payload
    return bytes(record), encoded


def decode_header(data: bytes) -> RecordHeader:
    """Decode the fixed section and walk the blockette chain (no payload).

    ``data`` must contain at least the fixed header and the blockettes —
    passing an entire record is fine; passing the first 64 bytes of a
    standard record is also fine (header-only scans do exactly that).
    """
    if len(data) < RECORD_HEADER_SIZE:
        raise CorruptRecordError(
            f"record shorter than fixed header: {len(data)} bytes"
        )
    seq_raw = data[0:6]
    try:
        sequence_number = int(seq_raw.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptRecordError(f"bad sequence number field {seq_raw!r}") from exc
    quality = chr(data[6])
    if quality not in QUALITY_CODES:
        raise CorruptRecordError(f"invalid quality code {quality!r}")
    station = data[8:13].decode("ascii").strip()
    location = data[13:15].decode("ascii").strip()
    channel = data[15:18].decode("ascii").strip()
    network = data[18:20].decode("ascii").strip()
    (
        sample_count,
        rate_factor,
        rate_multiplier,
        act_flags,
        io_flags,
        dq_flags,
        num_blockettes,
        time_correction,
        data_offset,
        blockette_offset,
    ) = _FIXED_TAIL.unpack_from(data, 20 + BTIME_SIZE)

    encoding = -1
    record_length = 0
    timing_quality = 0
    extra_us = 0
    offset = blockette_offset
    walked = 0
    while offset and walked < num_blockettes:
        btype, nxt = decode_blockette_header(data, offset)
        if btype == 1000:
            b1000 = decode_blockette_1000(data, offset)
            encoding = b1000.encoding
            record_length = b1000.record_length
        elif btype == 1001:
            b1001 = decode_blockette_1001(data, offset)
            timing_quality = b1001.timing_quality
            extra_us = b1001.microseconds
        if nxt and nxt <= offset:
            raise CorruptRecordError("blockette chain does not advance")
        offset = nxt
        walked += 1
    if encoding < 0 or record_length == 0:
        raise CorruptRecordError("record lacks mandatory blockette 1000")

    start_time_us = decode_btime(data[20 : 20 + BTIME_SIZE], extra_us=extra_us)
    # The time-correction field is in 0.0001 s units and applies unless the
    # "time correction applied" activity-flag bit (0x02) is set.
    if time_correction and not act_flags & 0x02:
        start_time_us += time_correction * 100

    return RecordHeader(
        sequence_number=sequence_number,
        quality=quality,
        station=station,
        location=location,
        channel=channel,
        network=network,
        start_time_us=start_time_us,
        sample_count=sample_count,
        sample_rate_factor=rate_factor,
        sample_rate_multiplier=rate_multiplier,
        activity_flags=act_flags,
        io_flags=io_flags,
        quality_flags=dq_flags,
        time_correction=time_correction,
        data_offset=data_offset,
        blockette_offset=blockette_offset,
        encoding=encoding,
        record_length=record_length,
        timing_quality=timing_quality,
    )


def decode_record(data: bytes) -> MSeedRecord:
    """Decode one full record (header + payload) into samples."""
    header = decode_header(data)
    if len(data) < header.record_length:
        raise CorruptRecordError(
            f"record truncated: {len(data)} of {header.record_length} bytes"
        )
    payload = data[header.data_offset : header.record_length]
    samples = encodings.decode_payload(payload, header.sample_count, header.encoding)
    return MSeedRecord(header=header, samples=samples)
