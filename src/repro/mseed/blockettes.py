"""SEED blockette codecs.

Only the two blockettes that matter for waveform data are implemented:

* **1000** (Data Only SEED) — encoding, word order, record length; mandatory
  in mSEED.
* **1001** (Data Extension) — timing quality and the microsecond field that
  extends BTIME below its 100-us resolution.

Unknown blockette types are tolerated by the reader (skipped via their
next-blockette offsets) so foreign files do not crash metadata harvesting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CorruptRecordError

_B1000 = struct.Struct(">HHBBBB")
_B1001 = struct.Struct(">HHBbBB")

BLOCKETTE_1000_SIZE = _B1000.size
BLOCKETTE_1001_SIZE = _B1001.size


@dataclass(frozen=True)
class Blockette1000:
    """Data Only SEED blockette: the format essentials."""

    encoding: int
    word_order: int  # 1 = big endian (the only order we write)
    record_length_power: int  # record length = 2 ** power

    @property
    def record_length(self) -> int:
        return 1 << self.record_length_power

    def encode(self, next_offset: int) -> bytes:
        return _B1000.pack(
            1000, next_offset, self.encoding, self.word_order,
            self.record_length_power, 0,
        )


@dataclass(frozen=True)
class Blockette1001:
    """Data Extension blockette: timing quality + microsecond correction."""

    timing_quality: int  # 0..100 (%)
    microseconds: int  # -50..99 extension below BTIME resolution
    frame_count: int = 0

    def encode(self, next_offset: int) -> bytes:
        return _B1001.pack(
            1001, next_offset, self.timing_quality, self.microseconds, 0,
            self.frame_count,
        )


def decode_blockette_header(data: bytes, offset: int) -> tuple[int, int]:
    """Read ``(blockette_type, next_offset)`` at ``offset``."""
    if offset + 4 > len(data):
        raise CorruptRecordError("blockette header beyond record end")
    btype, nxt = struct.unpack_from(">HH", data, offset)
    return btype, nxt


def decode_blockette_1000(data: bytes, offset: int) -> Blockette1000:
    if offset + BLOCKETTE_1000_SIZE > len(data):
        raise CorruptRecordError("blockette 1000 truncated")
    btype, _nxt, enc, order, power, _res = _B1000.unpack_from(data, offset)
    if btype != 1000:
        raise CorruptRecordError(f"expected blockette 1000, found {btype}")
    if power < 6 or power > 16:
        raise CorruptRecordError(f"implausible record length power {power}")
    return Blockette1000(encoding=enc, word_order=order, record_length_power=power)


def decode_blockette_1001(data: bytes, offset: int) -> Blockette1001:
    if offset + BLOCKETTE_1001_SIZE > len(data):
        raise CorruptRecordError("blockette 1001 truncated")
    btype, _nxt, quality, micros, _res, frames = _B1001.unpack_from(data, offset)
    if btype != 1001:
        raise CorruptRecordError(f"expected blockette 1001, found {btype}")
    return Blockette1001(
        timing_quality=quality, microseconds=micros, frame_count=frames
    )
