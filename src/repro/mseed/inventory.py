"""Station inventory: a realistic slice of the networks the paper queries.

The Figure-1 queries name station ``ISK`` (Kandilli Observatory, Istanbul,
network ``KO``) and the Dutch national network ``NL``.  The default
inventory covers those plus a few GEOFON stations so group-by-station
queries return multi-row results like the paper's second query.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Channel:
    """A sensor channel: SEED code plus nominal sample rate."""

    code: str  # e.g. BHE / BHN / BHZ
    sample_rate: float

    @property
    def band(self) -> str:
        return self.code[0]

    @property
    def orientation(self) -> str:
        return self.code[-1]


@dataclass(frozen=True)
class Station:
    """A seismic station with its channels."""

    network: str
    code: str
    name: str
    latitude: float
    longitude: float
    channels: tuple[Channel, ...] = field(default_factory=tuple)

    @property
    def stream_ids(self) -> list[str]:
        return [f"{self.network}.{self.code}..{c.code}" for c in self.channels]


_BROADBAND = (
    Channel("BHE", 40.0),
    Channel("BHN", 40.0),
    Channel("BHZ", 40.0),
)

_LONG_PERIOD = (Channel("LHZ", 1.0),)


DEFAULT_INVENTORY: tuple[Station, ...] = (
    # Dutch national network (KNMI) — the paper's Q2 groups over these.
    Station("NL", "HGN", "Heimansgroeve", 50.764, 5.932, _BROADBAND + _LONG_PERIOD),
    Station("NL", "DBN", "De Bilt", 52.102, 5.177, _BROADBAND),
    Station("NL", "WIT", "Witteveen", 52.813, 6.668, _BROADBAND),
    Station("NL", "WTSB", "Winterswijk", 51.966, 6.799, _BROADBAND),
    Station("NL", "VKB", "Valkenburg", 50.867, 5.782, _BROADBAND),
    # Kandilli Observatory, Istanbul — the paper's Q1 station.
    Station("KO", "ISK", "Kandilli Observatory Istanbul", 41.066, 29.060, _BROADBAND),
    Station("KO", "BALB", "Balikesir", 39.639, 27.881, _BROADBAND),
    # GEOFON stations for variety.
    Station("GE", "APE", "Apirathos Naxos", 37.072, 25.531, _BROADBAND),
    Station("GE", "ISP", "Isparta", 37.843, 30.509, _BROADBAND),
)


def stations_by_network(network: str,
                        inventory: tuple[Station, ...] = DEFAULT_INVENTORY,
                        ) -> list[Station]:
    """All stations belonging to ``network``."""
    return [s for s in inventory if s.network == network]


def find_station(code: str,
                 inventory: tuple[Station, ...] = DEFAULT_INVENTORY,
                 ) -> Station:
    """Look up a station by code; raises ``KeyError`` when absent."""
    for station in inventory:
        if station.code == code:
            return station
    raise KeyError(f"station {code!r} not in inventory")
