"""From-scratch mSEED (Mini-SEED) substrate.

The paper's source datastore is a repository of mSEED files [1]: binary,
multi-record volumes whose waveform payloads are Steim-compressed and whose
headers carry the metadata Lazy ETL loads eagerly.  This package implements

* the SEED ``BTIME`` timestamp codec (:mod:`repro.mseed.btime`),
* Steim-1/Steim-2 frame codecs and the plain integer/float encodings
  (:mod:`repro.mseed.steim`, :mod:`repro.mseed.encodings`),
* blockettes 1000/1001 and the 48-byte fixed header
  (:mod:`repro.mseed.blockettes`, :mod:`repro.mseed.records`),
* multi-record file reading/writing with cheap header-only scans
  (:mod:`repro.mseed.files`),
* a realistic station inventory and a synthetic waveform/repository
  generator standing in for the ORFEUS archives (:mod:`repro.mseed.inventory`,
  :mod:`repro.mseed.synthesize`),
* the repository abstraction used by the ETL layer
  (:mod:`repro.mseed.repository`).
"""

from repro.mseed.records import RecordHeader, MSeedRecord, RECORD_HEADER_SIZE
from repro.mseed.files import (
    read_file,
    scan_file_headers,
    write_mseed_file,
    file_time_span,
)
from repro.mseed.repository import Repository, FileInfo, SimulatedRemoteRepository
from repro.mseed.synthesize import (
    SeismicEvent,
    WaveformSynthesizer,
    RepositoryBuilder,
    RepositorySpec,
    build_repository,
)
from repro.mseed.inventory import Station, Channel, DEFAULT_INVENTORY

__all__ = [
    "RecordHeader",
    "MSeedRecord",
    "RECORD_HEADER_SIZE",
    "read_file",
    "scan_file_headers",
    "write_mseed_file",
    "file_time_span",
    "Repository",
    "FileInfo",
    "SimulatedRemoteRepository",
    "SeismicEvent",
    "WaveformSynthesizer",
    "RepositoryBuilder",
    "RepositorySpec",
    "build_repository",
    "Station",
    "Channel",
    "DEFAULT_INVENTORY",
]
