"""Multi-record mSEED file I/O.

Two read paths with very different costs, mirroring the paper's central
asymmetry:

* :func:`scan_file_headers` — the *metadata* path: per record it reads only
  the fixed header plus blockettes (64 bytes) and seeks over the payload.
  This is what Lazy ETL's initial loading uses.
* :func:`read_file` / :func:`read_records` — the *actual data* path: full
  parse with Steim decompression.  This is what lazy extraction defers to
  query time and what eager ETL pays for every record up front.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO, Iterator, Sequence

import numpy as np

from repro.errors import CorruptRecordError
from repro.mseed import encodings
from repro.mseed.records import (
    DEFAULT_RECORD_LENGTH,
    MSeedRecord,
    RECORD_HEADER_SIZE,
    RecordHeader,
    decode_header,
    decode_record,
    encode_record,
)

# Fixed header + blockette 1000 + blockette 1001 — enough for decode_header.
_HEADER_SCAN_BYTES = 64


def write_mseed_file(
    path: str | os.PathLike,
    *,
    network: str,
    station: str,
    location: str,
    channel: str,
    start_time_us: int,
    sample_rate: float,
    samples: np.ndarray,
    encoding: int = encodings.ENC_STEIM2,
    record_length: int = DEFAULT_RECORD_LENGTH,
    quality: str = "D",
    timing_quality: int = 100,
) -> int:
    """Write ``samples`` as a sequence of records; returns the record count.

    The sample-rate factor/multiplier pair is derived from ``sample_rate``:
    integer rates are stored as ``(rate, 1)``, sub-Hz rates as
    ``(-round(1/rate), 1)``.
    """
    if sample_rate >= 1:
        if abs(sample_rate - round(sample_rate)) > 1e-9:
            raise CorruptRecordError(
                f"non-integer sample rate {sample_rate} not supported by writer"
            )
        factor, multiplier = int(round(sample_rate)), 1
    else:
        period = 1.0 / sample_rate
        if abs(period - round(period)) > 1e-9:
            raise CorruptRecordError(
                f"sub-Hz rate {sample_rate} must have an integer period"
            )
        factor, multiplier = -int(round(period)), 1

    samples = np.asarray(samples)
    if samples.size == 0:
        raise CorruptRecordError("refusing to write a file with zero samples")

    written = 0
    position = 0
    sequence = 1
    previous: int | None = None
    with open(path, "wb") as handle:
        while position < samples.size:
            chunk = samples[position:]
            chunk_start = start_time_us + round(position * 1_000_000 / sample_rate)
            record, encoded = encode_record(
                sequence_number=sequence,
                quality=quality,
                station=station,
                location=location,
                channel=channel,
                network=network,
                start_time_us=chunk_start,
                samples=chunk,
                sample_rate_factor=factor,
                sample_rate_multiplier=multiplier,
                encoding=encoding,
                record_length=record_length,
                timing_quality=timing_quality,
                previous_sample=previous,
            )
            handle.write(record)
            if np.issubdtype(samples.dtype, np.integer):
                previous = int(samples[position + encoded - 1])
            position += encoded
            sequence += 1
            written += 1
    return written


def _iter_record_offsets(handle: BinaryIO) -> Iterator[tuple[int, RecordHeader]]:
    """Yield ``(byte_offset, header)`` per record, seeking over payloads."""
    handle.seek(0, io.SEEK_END)
    file_size = handle.tell()
    offset = 0
    while True:
        handle.seek(offset)
        head = handle.read(_HEADER_SCAN_BYTES)
        if not head:
            return
        if len(head) < RECORD_HEADER_SIZE:
            raise CorruptRecordError(
                f"trailing garbage of {len(head)} bytes at offset {offset}"
            )
        header = decode_header(head)
        if offset + header.record_length > file_size:
            raise CorruptRecordError(
                f"record at offset {offset} truncated: needs "
                f"{header.record_length} bytes, file ends at {file_size}"
            )
        yield offset, header
        offset += header.record_length


def scan_file_headers(path: str | os.PathLike) -> list[RecordHeader]:
    """Header-only scan: all record headers, payloads never read."""
    with open(path, "rb") as handle:
        return [header for _off, header in _iter_record_offsets(handle)]


def read_records_from(
    handle: BinaryIO,
    sequence_numbers: Sequence[int] | None = None,
) -> list[MSeedRecord]:
    """Fully decode records from an open binary stream.

    Selective reads still header-scan the whole file (records are
    variable-content but fixed-length, so the scan is cheap) and decompress
    only the requested payloads — this is the primitive lazy extraction
    builds on.
    """
    wanted = set(sequence_numbers) if sequence_numbers is not None else None
    out: list[MSeedRecord] = []
    for offset, header in _iter_record_offsets(handle):
        if wanted is not None and header.sequence_number not in wanted:
            continue
        handle.seek(offset)
        blob = handle.read(header.record_length)
        out.append(decode_record(blob))
    return out


def read_records(
    path: str | os.PathLike,
    sequence_numbers: Sequence[int] | None = None,
) -> list[MSeedRecord]:
    """Fully decode records of a file; see :func:`read_records_from`."""
    with open(path, "rb") as handle:
        return read_records_from(handle, sequence_numbers)


def read_file(path: str | os.PathLike) -> list[MSeedRecord]:
    """Fully decode every record in the file."""
    return read_records(path, None)


def read_file_bytes(data: bytes) -> list[MSeedRecord]:
    """Decode every record from an in-memory mSEED volume."""
    out = []
    handle = io.BytesIO(data)
    for offset, header in _iter_record_offsets(handle):
        out.append(decode_record(data[offset : offset + header.record_length]))
    return out


def file_time_span(headers: Sequence[RecordHeader]) -> tuple[int, int]:
    """``(first_start, last_end)`` microsecond span covered by the headers."""
    if not headers:
        raise CorruptRecordError("cannot compute the span of an empty file")
    start = min(h.start_time_us for h in headers)
    end = max(h.end_time_us for h in headers)
    return start, end
