"""Synthetic seismic waveforms and repository generation.

The paper demonstrates on ORFEUS/KNMI mSEED archives which we cannot ship,
so this module builds the closest synthetic equivalent: deterministic,
seeded waveforms per ``(network, station, channel, window)`` with

* band-limited background noise (microseism),
* injected **seismic events** — exponentially decaying wave trains whose
  arrival at each station is delayed/attenuated by epicentral distance,
* Steim-2-encoded multi-record files named ``NET.STA.LOC.CHA.YEAR.DOY.HHMM``.

Because generation is seeded, every test/bench regenerates the identical
repository, and the returned :class:`RepositoryManifest` carries the
ground-truth event catalogue for detector validation.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.mseed import encodings
from repro.mseed.files import write_mseed_file
from repro.mseed.inventory import DEFAULT_INVENTORY, Channel, Station
from repro.util.timefmt import MICROS_PER_SECOND, day_of_year, from_ymd, to_datetime

_P_WAVE_KM_PER_S = 6.0
_EARTH_RADIUS_KM = 6371.0


def _haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


@dataclass(frozen=True)
class SeismicEvent:
    """A ground-truth event injected into the synthetic waveforms."""

    event_id: int
    origin_time_us: int
    latitude: float
    longitude: float
    magnitude: float  # controls amplitude
    duration_s: float = 20.0
    dominant_freq_hz: float = 2.0

    def arrival_time_us(self, station: Station) -> int:
        """P-wave arrival at ``station`` (origin + distance / 6 km/s)."""
        dist = _haversine_km(self.latitude, self.longitude,
                             station.latitude, station.longitude)
        return self.origin_time_us + round(dist / _P_WAVE_KM_PER_S * MICROS_PER_SECOND)

    def amplitude_at(self, station: Station) -> float:
        """Peak amplitude in counts at ``station`` (distance-attenuated)."""
        dist = _haversine_km(self.latitude, self.longitude,
                             station.latitude, station.longitude)
        base = 10 ** (self.magnitude + 2.0)  # counts at the source
        return base / (1.0 + dist / 50.0)


class WaveformSynthesizer:
    """Deterministic waveform generation for one repository."""

    def __init__(self, events: list[SeismicEvent], *, seed: int = 0,
                 noise_counts: float = 250.0) -> None:
        self.events = events
        self.seed = seed
        self.noise_counts = noise_counts

    def _rng(self, station: Station, channel: Channel, start_us: int) -> np.random.Generator:
        key = hash((self.seed, station.network, station.code, channel.code, start_us))
        return np.random.default_rng(key & 0x7FFFFFFF)

    def synthesize(self, station: Station, channel: Channel,
                   start_us: int, n_samples: int) -> np.ndarray:
        """Generate ``n_samples`` int32 counts starting at ``start_us``."""
        rng = self._rng(station, channel, start_us)
        rate = channel.sample_rate
        # Background: white noise low-passed by a short moving average plus a
        # slow microseism swell; amplitude a few hundred counts.
        white = rng.normal(0.0, self.noise_counts, n_samples + 8)
        kernel = np.ones(8) / 8.0
        noise = np.convolve(white, kernel, mode="valid")[:n_samples]
        t = np.arange(n_samples, dtype=np.float64) / rate
        swell_phase = rng.uniform(0, 2 * math.pi)
        noise += 0.4 * self.noise_counts * np.sin(2 * math.pi * 0.12 * t + swell_phase)

        end_us = start_us + round(n_samples * MICROS_PER_SECOND / rate)
        for event in self.events:
            arrival = event.arrival_time_us(station)
            tail_us = round(event.duration_s * MICROS_PER_SECOND)
            if arrival >= end_us or arrival + tail_us <= start_us:
                continue
            offset = (arrival - start_us) / MICROS_PER_SECOND
            rel = t - offset
            active = rel >= 0
            envelope = np.zeros(n_samples)
            envelope[active] = np.exp(-rel[active] / (event.duration_s / 3.0))
            # Slight per-channel phase decorrelation, like real 3-component data.
            phase = rng.uniform(0, 2 * math.pi)
            carrier = np.sin(2 * math.pi * event.dominant_freq_hz * rel + phase)
            noise += event.amplitude_at(station) * envelope * carrier
        clipped = np.clip(noise, -2**26, 2**26 - 1)
        return np.round(clipped).astype(np.int32)


@dataclass(frozen=True)
class RepositorySpec:
    """Shape of a synthetic repository.

    Defaults mirror the paper's demo day (2010-01-12, the Figure-1 date):
    per stream, ``files_per_stream`` consecutive windows of
    ``file_span_minutes`` starting at ``start_hour`` UTC.
    """

    stations: tuple[Station, ...] = DEFAULT_INVENTORY
    channel_codes: tuple[str, ...] = ("BHE", "BHN", "BHZ")
    year: int = 2010
    month: int = 1
    day: int = 12
    start_hour: int = 22
    file_span_minutes: int = 10
    files_per_stream: int = 1
    n_events: int = 3
    record_length: int = 512
    encoding: int = encodings.ENC_STEIM2
    noise_counts: float = 250.0
    location: str = ""

    def streams(self) -> list[tuple[Station, Channel]]:
        out = []
        for station in self.stations:
            for channel in station.channels:
                if channel.code in self.channel_codes:
                    out.append((station, channel))
        return out

    @property
    def start_us(self) -> int:
        return from_ymd(self.year, self.month, self.day, self.start_hour)


@dataclass(frozen=True)
class ManifestEntry:
    """Ground truth for one generated file."""

    path: str
    network: str
    station: str
    location: str
    channel: str
    start_time_us: int
    end_time_us: int
    sample_rate: float
    n_samples: int
    n_records: int


@dataclass
class RepositoryManifest:
    """Everything a test needs to know about a generated repository."""

    root: str
    spec: RepositorySpec
    entries: list[ManifestEntry] = field(default_factory=list)
    events: list[SeismicEvent] = field(default_factory=list)

    @property
    def total_samples(self) -> int:
        return sum(e.n_samples for e in self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(os.path.getsize(e.path) for e in self.entries)

    def entries_for(self, station: str | None = None,
                    channel: str | None = None) -> list[ManifestEntry]:
        out = self.entries
        if station is not None:
            out = [e for e in out if e.station == station]
        if channel is not None:
            out = [e for e in out if e.channel == channel]
        return out


def make_filename(network: str, station: str, location: str, channel: str,
                  start_us: int) -> str:
    """Canonical file name: ``NET.STA.LOC.CHA.YEAR.DOY.HHMM.mseed``.

    Encoding stream and start time in the name is what lets the metadata
    layer harvest file-level metadata "without even reading the file" (§3).
    """
    year, doy = day_of_year(start_us)
    moment = to_datetime(start_us)
    stamp = f"{moment.hour:02d}{moment.minute:02d}"
    return f"{network}.{station}.{location}.{channel}.{year}.{doy:03d}.{stamp}.mseed"


def parse_filename(name: str) -> dict[str, str] | None:
    """Inverse of :func:`make_filename`; ``None`` when the name is foreign."""
    base = name[:-6] if name.endswith(".mseed") else name
    parts = base.split(".")
    if len(parts) != 7:
        return None
    network, station, location, channel, year, doy, stamp = parts
    if not (year.isdigit() and doy.isdigit() and stamp.isdigit()):
        return None
    return {
        "network": network,
        "station": station,
        "location": location,
        "channel": channel,
        "year": year,
        "doy": doy,
        "hhmm": stamp,
    }


class RepositoryBuilder:
    """Generates a full mSEED repository under a root directory."""

    def __init__(self, root: str | os.PathLike, spec: RepositorySpec,
                 *, seed: int = 20130826) -> None:  # VLDB'13 opening day
        self.root = Path(root)
        self.spec = spec
        self.seed = seed

    def _make_events(self) -> list[SeismicEvent]:
        rng = np.random.default_rng(self.seed)
        events = []
        window_us = (self.spec.files_per_stream
                     * self.spec.file_span_minutes * 60 * MICROS_PER_SECOND)
        for event_id in range(self.spec.n_events):
            # Epicentres drawn near the inventory's geographic spread.
            lat = float(rng.uniform(36.0, 53.0))
            lon = float(rng.uniform(4.0, 31.0))
            origin = self.spec.start_us + int(rng.uniform(0.1, 0.9) * window_us)
            events.append(
                SeismicEvent(
                    event_id=event_id,
                    origin_time_us=origin,
                    latitude=lat,
                    longitude=lon,
                    magnitude=float(rng.uniform(2.0, 3.2)),
                    duration_s=float(rng.uniform(10.0, 30.0)),
                    dominant_freq_hz=float(rng.uniform(1.0, 4.0)),
                )
            )
        return events

    def build(self) -> RepositoryManifest:
        """Write every file and return the ground-truth manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        events = self._make_events()
        synth = WaveformSynthesizer(events, seed=self.seed,
                                    noise_counts=self.spec.noise_counts)
        manifest = RepositoryManifest(root=str(self.root), spec=self.spec,
                                      events=events)
        span_us = self.spec.file_span_minutes * 60 * MICROS_PER_SECOND
        for station, channel in self.spec.streams():
            directory = self.root / station.network / station.code
            directory.mkdir(parents=True, exist_ok=True)
            for index in range(self.spec.files_per_stream):
                start = self.spec.start_us + index * span_us
                n_samples = int(self.spec.file_span_minutes * 60 * channel.sample_rate)
                samples = synth.synthesize(station, channel, start, n_samples)
                name = make_filename(station.network, station.code,
                                     self.spec.location, channel.code, start)
                path = directory / name
                n_records = write_mseed_file(
                    path,
                    network=station.network,
                    station=station.code,
                    location=self.spec.location,
                    channel=channel.code,
                    start_time_us=start,
                    sample_rate=channel.sample_rate,
                    samples=samples,
                    encoding=self.spec.encoding,
                    record_length=self.spec.record_length,
                )
                end = start + round(n_samples * MICROS_PER_SECOND / channel.sample_rate)
                manifest.entries.append(
                    ManifestEntry(
                        path=str(path),
                        network=station.network,
                        station=station.code,
                        location=self.spec.location,
                        channel=channel.code,
                        start_time_us=start,
                        end_time_us=end,
                        sample_rate=channel.sample_rate,
                        n_samples=n_samples,
                        n_records=n_records,
                    )
                )
        return manifest


def build_repository(root: str | os.PathLike,
                     spec: RepositorySpec | None = None,
                     *, seed: int = 20130826) -> RepositoryManifest:
    """Convenience wrapper: build a repository with the default spec."""
    return RepositoryBuilder(root, spec or RepositorySpec(), seed=seed).build()
