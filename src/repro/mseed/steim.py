"""Steim-1 and Steim-2 waveform compression.

Steim coding is the reason the paper calls mSEED a "complex file format"
that flat-file query engines cannot handle: the payload is a sequence of
64-byte *frames* of difference-coded samples with per-word variable bit
widths, plus forward/reverse integration constants for self-validation.

Frame layout (16 big-endian 32-bit words):

* word 0 — sixteen 2-bit *nibbles*, one per word of the frame (nibble 0
  describes word 0 itself and is always ``00``);
* frame 0 additionally stores the forward integration constant ``X0``
  (first sample) in word 1 and the reverse constant ``XN`` (last sample)
  in word 2, both flagged with nibble ``00``.

Steim-1 nibbles: ``01`` = four 8-bit differences, ``10`` = two 16-bit,
``11`` = one 32-bit.  Steim-2 keeps ``01`` and re-purposes ``10``/``11``
with a 2-bit *dnib* in the word's top bits:

=======  ====  ===================
nibble   dnib  payload
=======  ====  ===================
``10``   01    one 30-bit difference
``10``   10    two 15-bit differences
``10``   11    three 10-bit differences
``11``   00    five 6-bit differences
``11``   01    six 5-bit differences
``11``   10    seven 4-bit differences
=======  ====  ===================

Decoding reconstructs ``x[0] = X0`` and ``x[i] = x[i-1] + d[i]``; the first
difference is carried for cross-record continuity but never used for
reconstruction.  Decoding verifies the reverse integration constant.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import SteimError

FRAME_BYTES = 64
WORDS_PER_FRAME = 16

# Steim-2 cannot represent differences outside the 30-bit two's-complement
# range; real digitisers never produce them, and our synthesiser stays well
# inside.  Encoders raise SteimError beyond this.
STEIM2_MAX_DIFF = (1 << 29) - 1
STEIM2_MIN_DIFF = -(1 << 29)

# (nibble, dnib, count, bit width) rows for Steim-2, in *decreasing* count
# order so the greedy encoder prefers the densest packing that fits.
_STEIM2_CLASSES = (
    (3, 2, 7, 4),
    (3, 1, 6, 5),
    (3, 0, 5, 6),
    (1, None, 4, 8),
    (2, 3, 3, 10),
    (2, 2, 2, 15),
    (2, 1, 1, 30),
)

_STEIM1_CLASSES = (
    (1, None, 4, 8),
    (2, None, 2, 16),
    (3, None, 1, 32),
)


def _fits(values: np.ndarray, bits: int) -> bool:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return bool(values.min() >= lo and values.max() <= hi)


def _sign_extend(values: np.ndarray, bits: int) -> np.ndarray:
    mask = np.uint32((1 << bits) - 1)
    sign = np.uint32(1 << (bits - 1))
    trimmed = values.astype(np.uint32) & mask
    return ((trimmed ^ sign).astype(np.int64) - int(sign)).astype(np.int32)


def _pack_word(diffs: np.ndarray, bits: int, dnib: int | None) -> int:
    """Pack ``len(diffs)`` differences of ``bits`` width into one 32-bit word."""
    word = 0
    count = len(diffs)
    mask = (1 << bits) - 1
    payload_bits = bits * count
    for value in diffs:
        word = (word << bits) | (int(value) & mask)
    if dnib is not None:
        word |= dnib << 30
    elif payload_bits < 32:
        # Steim-1 aligns payloads to the low end; 4x8 and 2x16 fill the word,
        # 1x32 fills it too, so nothing to do — kept for clarity.
        pass
    return word & 0xFFFFFFFF


class _FrameAssembler:
    """Accumulates coded words into frames, maintaining nibble headers."""

    def __init__(self, max_frames: int) -> None:
        self.max_frames = max_frames
        self.frames: list[list[int]] = []
        self.nibbles: list[list[int]] = []
        self._new_frame()
        # Reserve X0/XN slots in frame 0 (filled at the end).
        self.frames[0].extend([0, 0])
        self.nibbles[0].extend([0, 0])

    def _new_frame(self) -> None:
        self.frames.append([])
        self.nibbles.append([0])  # nibble 0 describes word 0 itself

    @property
    def _room_in_frame(self) -> bool:
        return len(self.frames[-1]) < WORDS_PER_FRAME - 1  # minus word 0

    def has_room(self) -> bool:
        return self._room_in_frame or len(self.frames) < self.max_frames

    def add_word(self, word: int, nibble: int) -> None:
        if not self._room_in_frame:
            if len(self.frames) >= self.max_frames:
                raise SteimError("frame capacity exceeded")
            self._new_frame()
        self.frames[-1].append(word)
        self.nibbles[-1].append(nibble)

    def finish(self, x0: int, xn: int) -> bytes:
        self.frames[0][0] = int(np.int64(x0)) & 0xFFFFFFFF
        self.frames[0][1] = int(np.int64(xn)) & 0xFFFFFFFF
        blob = bytearray()
        for words, nibbles in zip(self.frames, self.nibbles):
            padded_words = words + [0] * (WORDS_PER_FRAME - 1 - len(words))
            padded_nibbles = nibbles + [0] * (WORDS_PER_FRAME - len(nibbles))
            header = 0
            for nib in padded_nibbles:
                header = (header << 2) | nib
            frame = [header] + padded_words
            blob.extend(np.array(frame, dtype=">u4").tobytes())
        return bytes(blob)


def _encode(samples: np.ndarray, max_frames: int, classes, level: int,
             previous: int | None) -> tuple[bytes, int]:
    samples = np.ascontiguousarray(samples, dtype=np.int64)
    if samples.size == 0:
        raise SteimError("cannot encode an empty sample array")
    if samples.min() < np.iinfo(np.int32).min or samples.max() > np.iinfo(np.int32).max:
        raise SteimError("Steim input must fit in int32")
    diffs = np.empty(samples.size, dtype=np.int64)
    diffs[0] = samples[0] - (previous if previous is not None else samples[0])
    np.subtract(samples[1:], samples[:-1], out=diffs[1:])
    if level == 2 and (diffs.min() < STEIM2_MIN_DIFF or diffs.max() > STEIM2_MAX_DIFF):
        raise SteimError(
            "difference outside Steim-2 30-bit range; data not Steim-2 encodable"
        )

    assembler = _FrameAssembler(max_frames)
    pos = 0
    total = samples.size
    while pos < total and assembler.has_room():
        packed = False
        for nibble, dnib, count, bits in classes:
            chunk = diffs[pos : pos + count]
            if len(chunk) == count and _fits(chunk, bits):
                assembler.add_word(_pack_word(chunk, bits, dnib), nibble)
                pos += count
                packed = True
                break
        if packed:
            continue
        # Tail shorter than the smallest full class: fall back to the widest
        # single/duo classes that can hold the remaining few differences.
        for nibble, dnib, count, bits in reversed(classes):
            chunk = diffs[pos : pos + count]
            if len(chunk) == count and _fits(chunk, bits):
                assembler.add_word(_pack_word(chunk, bits, dnib), nibble)
                pos += count
                packed = True
                break
        if not packed:
            # Remaining tail does not fill any class exactly (e.g. 3 diffs
            # needing 8 bits each at the end of a Steim-1 stream): emit the
            # widest class one difference at a time.
            nibble, dnib, count, bits = classes[-1]
            chunk = diffs[pos : pos + 1]
            if not _fits(chunk, bits):
                raise SteimError("difference does not fit widest Steim class")
            assembler.add_word(_pack_word(chunk, bits, dnib), nibble)
            pos += 1
    encoded = pos
    blob = assembler.finish(int(samples[0]), int(samples[encoded - 1]))
    return blob, encoded


def encode_steim1(samples: np.ndarray, max_frames: int,
                  previous: int | None = None) -> tuple[bytes, int]:
    """Encode ``samples`` into at most ``max_frames`` Steim-1 frames.

    Returns ``(payload, n_encoded)`` — the caller continues a new record
    with the remaining samples when ``n_encoded < len(samples)``.
    """
    return _encode(samples, max_frames, _STEIM1_CLASSES, 1, previous)


def encode_steim2(samples: np.ndarray, max_frames: int,
                  previous: int | None = None) -> tuple[bytes, int]:
    """Encode ``samples`` into at most ``max_frames`` Steim-2 frames."""
    return _encode(samples, max_frames, _STEIM2_CLASSES, 2, previous)


def _decode_words(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Split a frame blob into flat word/nibble arrays (word 0s masked out)."""
    if len(data) % FRAME_BYTES:
        raise SteimError(f"Steim payload length {len(data)} not a frame multiple")
    raw = np.frombuffer(data, dtype=">u4").astype(np.uint32)
    frames = raw.reshape(-1, WORDS_PER_FRAME)
    headers = frames[:, 0]
    shifts = np.arange(15, -1, -1, dtype=np.uint32) * 2
    nibbles = (headers[:, None] >> shifts[None, :]) & 3
    return frames, nibbles.astype(np.uint8)


def _class_table(level: int, flat_words: np.ndarray,
                 flat_nibs: np.ndarray) -> list[tuple[np.ndarray, int, int]]:
    """Partition words into ``(selector_mask, count, bits)`` decode classes."""
    classes: list[tuple[np.ndarray, int, int]] = []
    classes.append((flat_nibs == 1, 4, 8))
    if level == 1:
        classes.append((flat_nibs == 2, 2, 16))
        classes.append((flat_nibs == 3, 1, 32))
        return classes
    dnib = (flat_words >> np.uint32(30)).astype(np.uint8)
    if np.any((flat_nibs == 2) & (dnib == 0)) or np.any((flat_nibs == 3) & (dnib == 3)):
        raise SteimError("invalid Steim-2 dnib combination")
    classes.append(((flat_nibs == 2) & (dnib == 1), 1, 30))
    classes.append(((flat_nibs == 2) & (dnib == 2), 2, 15))
    classes.append(((flat_nibs == 2) & (dnib == 3), 3, 10))
    classes.append(((flat_nibs == 3) & (dnib == 0), 5, 6))
    classes.append(((flat_nibs == 3) & (dnib == 1), 6, 5))
    classes.append(((flat_nibs == 3) & (dnib == 2), 7, 4))
    return classes


def _decode_reference(data: bytes, nsamples: int, level: int, *,
                      check_integration: bool = True) -> np.ndarray:
    """The pre-vectorised decoder, kept bit-for-bit as the differential
    oracle's reference: the table-driven ``_decode`` below must agree with
    this implementation on every payload."""
    if nsamples == 0:
        return np.zeros(0, dtype=np.int32)
    frames, nibbles = _decode_words(data)
    if frames.shape[0] == 0:
        raise SteimError("empty Steim payload for nonzero sample count")
    x0 = int(np.int32(frames[0, 1]))
    xn = int(np.int32(frames[0, 2]))

    # Vectorised decode: flatten words in stream order, mask out the frame
    # headers and the X0/XN slots (their nibbles are 00 anyway), compute the
    # per-word difference counts, then scatter each (nibble, dnib) class's
    # bit fields into their positions in one shot.
    flat_words = frames.reshape(-1)
    flat_nibs = nibbles.reshape(-1).copy()
    word_index = np.arange(flat_words.size) % WORDS_PER_FRAME
    flat_nibs[word_index == 0] = 0
    flat_nibs[1:3] = 0  # X0 / XN in frame 0

    classes = _class_table(level, flat_words, flat_nibs)
    counts = np.zeros(flat_words.size, dtype=np.int64)
    for sel, count, _bits in classes:
        counts[sel] = count
    out_start = np.cumsum(counts) - counts
    produced = int(counts.sum())
    if produced < nsamples:
        raise SteimError(
            f"Steim payload ended early: {produced} of {nsamples} samples"
        )
    flat = np.zeros(produced, dtype=np.int32)
    for sel, count, bits in classes:
        if not np.any(sel):
            continue
        words = flat_words[sel]
        starts = out_start[sel]
        mask = np.uint32((1 << bits) - 1)
        for j in range(count):
            shift = np.uint32((count - 1 - j) * bits)
            flat[starts + j] = _sign_extend((words >> shift) & mask, bits)
    series = np.empty(nsamples, dtype=np.int64)
    series[0] = x0
    if nsamples > 1:
        np.cumsum(flat[1:nsamples].astype(np.int64), out=series[1:])
        series[1:] += x0
    if check_integration and int(series[-1]) != xn:
        raise SteimError(
            f"reverse integration constant mismatch: got {int(series[-1])}, "
            f"expected {xn}"
        )
    return series.astype(np.int32)


def _build_unpack_table(level: int):
    """Precompute whole-stream unpack LUTs, indexed by a per-word class key
    (the nibble for Steim-1; ``nibble * 4 + dnib`` for Steim-2, with nibbles
    0/1 collapsed to 0/1 since their payload carries no dnib):

    * ``counts[key]``   — differences per word (-1 marks an invalid dnib);
    * ``shifts[key]``   — right-shift per difference slot, zero padded;
    * ``masks[key]``    — payload mask per difference slot (0 pads);
    * ``signs[key]``    — sign bit per slot, as wrapping int32.

    Decoding gathers these per word, so the entire payload unpacks with a
    handful of array ops and no per-class Python loop.
    """
    classes = _STEIM1_CLASSES if level == 1 else _STEIM2_CLASSES
    n_keys = 4 if level == 1 else 16
    width = max(count for _, _, count, _ in classes)
    counts = np.full(n_keys, -1, dtype=np.int64)
    shifts = np.zeros((n_keys, width), dtype=np.uint32)
    masks = np.zeros((n_keys, width), dtype=np.uint32)
    signs = np.zeros((n_keys, width), dtype=np.uint32)
    counts[0] = 0
    for nibble, dnib, count, bits in classes:
        key = nibble if level == 1 or nibble == 1 else nibble * 4 + dnib
        counts[key] = count
        shifts[key, :count] = np.arange(count - 1, -1, -1, dtype=np.uint32) * bits
        masks[key, :count] = (1 << bits) - 1
        signs[key, :count] = 1 << (bits - 1)
    return counts, shifts, masks, signs.view(np.int32), width


_UNPACK_TABLES = {1: _build_unpack_table(1), 2: _build_unpack_table(2)}


def _decode(data: bytes, nsamples: int, level: int, *,
            check_integration: bool = True) -> np.ndarray:
    """Table-driven decode: classify every word by a precomputed
    (nibble, dnib) key, gather per-slot shift/mask/sign vectors from the
    unpack LUTs, and extract all differences with one broadcast
    shift-and-mask plus a row-major boolean compress — no per-difference
    Python loop and no scatter."""
    if nsamples == 0:
        return np.zeros(0, dtype=np.int32)
    frames, nibbles = _decode_words(data)
    if frames.shape[0] == 0:
        raise SteimError("empty Steim payload for nonzero sample count")
    x0 = int(np.int32(frames[0, 1]))
    xn = int(np.int32(frames[0, 2]))

    flat_words = frames.reshape(-1)
    flat_nibs = nibbles.reshape(-1).astype(np.int64)
    flat_nibs[::WORDS_PER_FRAME] = 0  # word 0 is the header
    flat_nibs[1:3] = 0  # X0 / XN in frame 0

    if level == 1:
        keys = flat_nibs
    else:
        dnib = ((flat_words >> np.uint32(30)) & np.uint32(3)).astype(np.int64)
        keys = np.where(flat_nibs <= 1, flat_nibs, flat_nibs * 4 + dnib)
    count_lut, shift_lut, mask_lut, sign_lut, _width = _UNPACK_TABLES[level]
    counts = count_lut[keys]
    if counts.min() < 0:
        raise SteimError("invalid Steim-2 dnib combination")
    produced = int(counts.sum())
    if produced < nsamples:
        raise SteimError(
            f"Steim payload ended early: {produced} of {nsamples} samples"
        )
    # Unpack every slot of every word at once; two's-complement sign
    # extension via the XOR trick on wrapping int32, then keep only the
    # occupied slots (row-major order == stream order).
    signs = sign_lut[keys]
    fields = ((flat_words[:, None] >> shift_lut[keys]) & mask_lut[keys]).view(np.int32)
    signed = (fields ^ signs) - signs
    occupied = mask_lut[keys] != 0
    flat = signed[occupied]
    series = np.empty(nsamples, dtype=np.int64)
    series[0] = x0
    if nsamples > 1:
        np.cumsum(flat[1:nsamples].astype(np.int64), out=series[1:])
        series[1:] += x0
    if check_integration and int(series[-1]) != xn:
        raise SteimError(
            f"reverse integration constant mismatch: got {int(series[-1])}, "
            f"expected {xn}"
        )
    return series.astype(np.int32)


_USE_REFERENCE = False


@contextmanager
def reference_decoding():
    """Route ``decode_steim1/2`` through ``_decode_reference`` — used by the
    differential oracle and by bench baselines that model the pre-vectorised
    extraction path."""
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous


def decode_steim1(data: bytes, nsamples: int, *,
                  check_integration: bool = True) -> np.ndarray:
    """Decode ``nsamples`` samples from a Steim-1 payload."""
    decoder = _decode_reference if _USE_REFERENCE else _decode
    return decoder(data, nsamples, 1, check_integration=check_integration)


def decode_steim2(data: bytes, nsamples: int, *,
                  check_integration: bool = True) -> np.ndarray:
    """Decode ``nsamples`` samples from a Steim-2 payload."""
    decoder = _decode_reference if _USE_REFERENCE else _decode
    return decoder(data, nsamples, 2, check_integration=check_integration)
