"""The asyncio-native remote client: ``connect_tcp_async``.

Same wire protocol as :mod:`repro.net.client`, driven from a coroutine:
:class:`AsyncConnection` multiplexes any number of
:class:`AsyncCursor`\\ s over one authenticated TCP session (an
``asyncio.Lock`` serialises the request/response exchanges, so
concurrent coroutines pipeline cleanly instead of interleaving frames),
and every fetch surface is awaitable — ``await cur.fetchall()``,
``async for row in cur``.

The sync client exists for scripts and notebooks; this one is for
servers and load generators that hold hundreds of connections open —
bench E16 drives exactly that.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Optional

from repro.db.exec.result import Result
from repro.errors import ExecutionError, WireProtocolError
from repro.net import frames
from repro.net.client import RemoteReport, raise_wire_error
from repro.net.frames import (
    MSG_BATCH,
    MSG_CLOSE_CURSOR,
    MSG_CLOSED,
    MSG_DONE,
    MSG_ERROR,
    MSG_FETCH,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_OPENED,
    MSG_PING,
    MSG_PONG,
    MSG_WELCOME,
    PROTOCOL_VERSION,
)

__all__ = ["connect_tcp_async", "AsyncConnection", "AsyncCursor"]

DEFAULT_BATCH_ROWS = 1024


class AsyncCursor:
    """One awaitable cursor over a server-side cursor.

    Minimal DB-API shape (``execute`` / ``fetchone`` / ``fetchmany`` /
    ``fetchall`` / ``async for``) plus the engine extensions
    (:attr:`report`, :attr:`trace`, :attr:`description`).
    """

    def __init__(self, conn: "AsyncConnection",
                 batch_rows: Optional[int] = None) -> None:
        self._conn = conn
        self._batch_rows = batch_rows
        self._cursor_id: Optional[int] = None
        self.names: list[str] = []
        self.dtypes: list = []
        self.report: Optional[RemoteReport] = None
        self.trace: list[dict] = []
        self.rowcount = -1
        self._buffer: list[tuple] = []
        self._buffer_pos = 0
        self._finished = True
        self._closed = False

    # -- execution -----------------------------------------------------------

    async def execute(self, sql: str, params=None, *,
                      batch_rows: Optional[int] = None) -> "AsyncCursor":
        self._check_open()
        await self._abandon()
        obj = await self._conn._request_open(
            sql, params, batch_rows or self._batch_rows or DEFAULT_BATCH_ROWS)
        self._cursor_id = obj["cursor"]
        self.names = obj["names"]
        self.dtypes = frames.dtypes_from_names(obj["dtypes"])
        self.report = None
        self.trace = []
        self.rowcount = -1
        self._buffer = []
        self._buffer_pos = 0
        self._finished = False
        return self

    # -- metadata ------------------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        if self._cursor_id is None:
            return None
        return [(name, dtype, None, None, None, None, None)
                for name, dtype in zip(self.names, self.dtypes)]

    # -- fetching ------------------------------------------------------------

    async def fetchone(self) -> Optional[tuple]:
        self._require_executed()
        while (len(self._buffer) - self._buffer_pos) < 1 \
                and not self._finished:
            await self._pull()
        if self._buffer_pos >= len(self._buffer):
            return None
        row = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        return row

    async def fetchmany(self, size: int = 1) -> list[tuple]:
        self._require_executed()
        if size <= 0:
            return []
        while (len(self._buffer) - self._buffer_pos) < size \
                and not self._finished:
            await self._pull()
        end = min(self._buffer_pos + size, len(self._buffer))
        rows = self._buffer[self._buffer_pos:end]
        self._buffer_pos = end
        return rows

    async def fetchall(self) -> list[tuple]:
        self._require_executed()
        while not self._finished:
            await self._pull()
        rows = self._buffer[self._buffer_pos:]
        self._buffer_pos = len(self._buffer)
        return rows

    async def scalar(self):
        rows = await self.fetchall()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() needs a 1x1 result")
        return rows[0][0]

    def __aiter__(self) -> AsyncIterator[tuple]:
        return self._iterate()

    async def _iterate(self) -> AsyncIterator[tuple]:
        while True:
            row = await self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        await self._abandon()
        self._closed = True

    async def __aenter__(self) -> "AsyncCursor":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- internals -----------------------------------------------------------

    async def _pull(self) -> None:
        """One FETCH round trip into the row buffer."""
        events = await self._conn._request_fetch(self._cursor_id)
        for kind, value in events:
            if kind == "batch":
                cursor_id, result = frames.decode_result_batch(
                    value, self.names)
                if cursor_id != self._cursor_id:
                    raise WireProtocolError(
                        f"batch for cursor {cursor_id}, "
                        f"expected {self._cursor_id}")
                if self._buffer_pos:
                    self._buffer = self._buffer[self._buffer_pos:]
                    self._buffer_pos = 0
                self._buffer.extend(result.rows())
            elif kind == "done":
                self.report = RemoteReport(value.get("report", {}),
                                           value.get("timings"))
                self.trace = value.get("trace", [])
                self.rowcount = int(self.report.to_dict()
                                    .get("rows_out", -1))
                self._finished = True
            else:  # error payload
                self._finished = True
                raise_wire_error(value)

    async def _abandon(self) -> None:
        """Close the open server cursor, if any stream is still live."""
        if self._cursor_id is not None and not self._finished \
                and not self._conn.closed:
            await self._conn._request_close_cursor(self._cursor_id)
        self._finished = True

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("cursor is closed")

    def _require_executed(self) -> None:
        self._check_open()
        if self._cursor_id is None:
            raise ExecutionError("no statement has been executed")


class AsyncConnection:
    """One authenticated wire session, shared by any number of cursors."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, welcome: dict, *,
                 batch_rows: Optional[int] = None,
                 fetch_batches: int = 1,
                 max_frame_bytes: int = frames.DEFAULT_MAX_FRAME_BYTES
                 ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._batch_rows = batch_rows
        self._fetch_batches = max(1, fetch_batches)
        self._max_frame_bytes = max_frame_bytes
        self._closed = False
        self.session = welcome.get("session", "")
        self.principal = welcome.get("principal", "")
        self.server_protocol = welcome.get("protocol", 0)

    # -- cursors -------------------------------------------------------------

    def cursor(self, *, batch_rows: Optional[int] = None) -> AsyncCursor:
        self._check_open()
        return AsyncCursor(self, batch_rows or self._batch_rows)

    async def execute(self, sql: str, params=None) -> AsyncCursor:
        return await self.cursor().execute(sql, params)

    async def ping(self) -> bool:
        self._check_open()
        async with self._lock:
            await self._send(frames.pack_frame(MSG_PING))
            msg_type, _ = await self._recv()
        return msg_type == MSG_PONG

    # -- request/response exchanges (one in flight at a time) ----------------

    async def _request_open(self, sql: str, params,
                            batch_rows: int) -> dict:
        self._check_open()
        async with self._lock:
            await self._send(frames.pack_json_frame(MSG_OPEN, {
                "sql": sql,
                "params": frames.pack_params(params),
                "batch_rows": batch_rows,
            }))
            msg_type, payload = await self._recv()
        if msg_type == MSG_ERROR:
            raise_wire_error(frames.decode_json_payload(payload))
        if msg_type != MSG_OPENED:
            raise WireProtocolError(
                f"expected OPENED, got {frames.MESSAGE_NAMES[msg_type]}")
        return frames.decode_json_payload(payload)

    async def _request_fetch(self, cursor_id: int) -> list[tuple]:
        """One FETCH exchange → ``[("batch", bytes) | ("done", obj) |
        ("error", obj), ...]``, response fully read under the lock."""
        self._check_open()
        want = self._fetch_batches
        events: list[tuple] = []
        async with self._lock:
            await self._send(frames.pack_json_frame(MSG_FETCH, {
                "cursor": cursor_id, "max_batches": want}))
            received = 0
            while received < want:
                msg_type, payload = await self._recv()
                if msg_type == MSG_BATCH:
                    events.append(("batch", payload))
                    received += 1
                    continue
                if msg_type == MSG_DONE:
                    events.append(
                        ("done", frames.decode_json_payload(payload)))
                elif msg_type == MSG_ERROR:
                    events.append(
                        ("error", frames.decode_json_payload(payload)))
                else:
                    raise WireProtocolError(
                        f"unexpected {frames.MESSAGE_NAMES[msg_type]} "
                        "during FETCH")
                break
        return events

    async def _request_close_cursor(self, cursor_id: int) -> None:
        self._check_open()
        async with self._lock:
            await self._send(frames.pack_json_frame(
                MSG_CLOSE_CURSOR, {"cursor": cursor_id}))
            msg_type, payload = await self._recv()
        if msg_type == MSG_ERROR:
            raise_wire_error(frames.decode_json_payload(payload))
        if msg_type != MSG_CLOSED:
            raise WireProtocolError(
                f"expected CLOSED, got {frames.MESSAGE_NAMES[msg_type]}")

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.write(frames.pack_frame(MSG_GOODBYE))
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    # -- framing -------------------------------------------------------------

    async def _send(self, data: bytes) -> None:
        try:
            self._writer.write(data)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._closed = True
            raise ConnectionError(f"connection lost: {exc}") from exc

    async def _recv(self) -> tuple[int, bytes]:
        try:
            header = await self._reader.readexactly(frames.HEADER_SIZE)
            msg_type, length = frames.split_header(
                header, max_frame_bytes=self._max_frame_bytes)
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            self._closed = True
            raise ConnectionError("connection closed by server") from exc
        except (ConnectionError, OSError) as exc:
            self._closed = True
            raise ConnectionError(f"connection lost: {exc}") from exc
        return msg_type, payload


async def connect_tcp_async(host: str, port: int, *, token: str,
                            batch_rows: Optional[int] = None,
                            fetch_batches: int = 1,
                            max_frame_bytes: int =
                            frames.DEFAULT_MAX_FRAME_BYTES
                            ) -> AsyncConnection:
    """Open an authenticated asyncio connection to a served warehouse."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(frames.pack_json_frame(MSG_HELLO, {
            "token": token, "protocol": PROTOCOL_VERSION}))
        await writer.drain()
        header = await reader.readexactly(frames.HEADER_SIZE)
        msg_type, length = frames.split_header(
            header, max_frame_bytes=max_frame_bytes)
        payload = await reader.readexactly(length)
        if msg_type == MSG_ERROR:
            raise_wire_error(frames.decode_json_payload(payload))
        if msg_type != MSG_WELCOME:
            raise WireProtocolError(
                f"expected WELCOME, got {frames.MESSAGE_NAMES[msg_type]}")
        welcome = frames.decode_json_payload(payload)
    except BaseException:
        writer.close()
        raise
    return AsyncConnection(reader, writer, welcome, batch_rows=batch_rows,
                           fetch_batches=fetch_batches,
                           max_frame_bytes=max_frame_bytes)
