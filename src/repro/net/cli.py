"""``repro-serve`` — serve a warehouse over TCP (+ HTTP) until SIGTERM.

The console-script entry point (pyproject ``[project.scripts]``; also
runnable as ``python -m repro.net.cli``) builds a warehouse from CLI and
environment configuration and serves the query wire protocol plus the
HTTP observability endpoint until it receives SIGTERM or SIGINT, then
drains gracefully.

Auth tokens come from repeated ``--auth-token`` flags or the
``REPRO_AUTH_TOKENS`` environment variable (comma-separated); each is a
plain secret or ``principal=secret``.  With no ``--repo``, a small
synthetic mSEED repository is built under a temp directory — handy for
demos and smoke tests::

    repro-serve --tcp-port 9750 --auth-token demo=s3cret
    repro-serve --repo /data/mseed --tcp-port 0 --http-port 0

On startup one machine-parseable ready line goes to stdout::

    repro-serve: ready tcp=127.0.0.1:9750 http=127.0.0.1:8321
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a lazy-ETL warehouse over the TCP wire "
                    "protocol (and the HTTP observability endpoint).")
    parser.add_argument("--repo", metavar="PATH", default=None,
                        help="mSEED repository root (default: synthesise "
                             "a small demo repository in a temp dir)")
    parser.add_argument("--mode", choices=("lazy", "eager", "external"),
                        default="lazy", help="warehouse ETL mode")
    parser.add_argument("--storage", metavar="PATH", default=None,
                        help="persistent segment store directory")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for TCP and HTTP")
    parser.add_argument("--tcp-port", type=int, default=0,
                        help="wire-protocol port (0 = ephemeral)")
    parser.add_argument("--http-port", type=int, default=None,
                        help="observability endpoint port (0 = ephemeral; "
                             "omit to disable)")
    parser.add_argument("--auth-token", action="append", default=[],
                        metavar="[PRINCIPAL=]SECRET", dest="auth_tokens",
                        help="pre-shared client token (repeatable; or "
                             "REPRO_AUTH_TOKENS, comma-separated)")
    parser.add_argument("--workers", type=int, default=4,
                        help="query-executing worker threads")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard worker processes for scatter-gather "
                             "execution (1 = single-process; >1 requires "
                             "--mode lazy)")
    parser.add_argument("--queue-depth", type=int, default=128,
                        help="bounded admission queue depth")
    parser.add_argument("--cursor-window", type=int, default=4,
                        help="per-cursor server-side batch window")
    parser.add_argument("--drain-s", type=float, default=5.0,
                        help="graceful-drain deadline on shutdown")
    parser.add_argument("--slow-query-s", type=float, default=None,
                        help="slow-query log threshold (seconds)")
    return parser


def _resolve_tokens(cli_tokens: Sequence[str]) -> list[str]:
    tokens = [t for t in cli_tokens if t]
    env = os.environ.get("REPRO_AUTH_TOKENS", "")
    tokens.extend(t.strip() for t in env.split(",") if t.strip())
    return tokens


def _build_warehouse(args):
    from repro.seismology.warehouse import SeismicWarehouse

    root = args.repo
    if root is None:
        from repro.mseed.synthesize import RepositorySpec, build_repository

        root = tempfile.mkdtemp(prefix="repro-serve-demo-")
        print(f"repro-serve: no --repo given, synthesising a demo "
              f"repository under {root}", file=sys.stderr)
        build_repository(root, RepositorySpec(files_per_stream=2))
    return SeismicWarehouse(root, mode=args.mode,
                            storage_path=args.storage)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tokens = _resolve_tokens(args.auth_tokens)
    if not tokens:
        print("repro-serve: error: no auth tokens — pass --auth-token "
              "or set REPRO_AUTH_TOKENS", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"repro-serve: error: --shards must be >= 1, got "
              f"{args.shards}", file=sys.stderr)
        return 2
    if args.shards > 1 and args.mode != "lazy":
        print(f"repro-serve: error: --shards {args.shards} requires "
              f"--mode lazy (got --mode {args.mode})", file=sys.stderr)
        return 2

    warehouse = _build_warehouse(args)
    service = warehouse.serve(
        max_workers=args.workers,
        shards=args.shards,
        queue_depth=args.queue_depth,
        tcp_port=args.tcp_port,
        tcp_host=args.host,
        auth_tokens=tokens,
        cursor_window_batches=args.cursor_window,
        tcp_drain_s=args.drain_s,
        http_port=args.http_port,
        http_host=args.host,
        slow_query_s=args.slow_query_s,
    )

    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        print(f"repro-serve: caught {signal.Signals(signum).name}, "
              "draining ...", file=sys.stderr)
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    http = (f" http={args.host}:{service.http_port}"
            if service.http_port is not None else "")
    print(f"repro-serve: ready tcp={args.host}:{service.tcp_port}{http}",
          flush=True)
    try:
        stop.wait()
    finally:
        service.close()
        warehouse.close()
    print("repro-serve: stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
