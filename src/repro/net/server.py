"""The asyncio TCP query server: the wire side of a served warehouse.

One :class:`WireServer` is owned by a
:class:`~repro.service.service.WarehouseService` (``serve(tcp_port=...,
auth_tokens=[...])``) and speaks the framed protocol of
:mod:`repro.net.frames` on an asyncio event loop running in a daemon
thread — the service itself stays a thread-pool system, and every query
still flows through its admission controller and single-flight
coalescer via :meth:`WarehouseService.submit_stream`.

Design points:

* **Auth before anything.**  The first frame must be HELLO carrying a
  pre-shared token; comparison is constant-time
  (:func:`hmac.compare_digest` against *every* configured token, no
  early exit) and failure closes the connection after one typed error
  frame.
* **Server-side cursors with a bounded window.**  OPEN admits the query
  and returns a cursor id; the executing worker pushes codec-compressed
  batches into a bounded per-cursor window
  (``cursor_window_batches``) and *blocks* when the client stops
  fetching — the server never materialises a full result for a slow
  client.  A cursor nobody fetches for ``cursor_stall_timeout_s`` is
  aborted so a vanished client cannot pin a worker forever.
* **Disconnect frees everything.**  A dedicated reader task notices EOF
  immediately (even mid-FETCH) and cancels the session's cursors, which
  unblocks any worker parked on a full window.
* **Graceful drain.**  ``stop(drain_s=...)`` closes the listener, lets
  in-flight cursors finish up to the deadline, then aborts the
  remainder with a typed ``shutdown`` error frame.
"""

from __future__ import annotations

import asyncio
import hmac
import itertools
import logging
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import (
    AdmissionError,
    ServiceClosedError,
    ServiceError,
    WireError,
)
from repro.net import frames
from repro.net.frames import (
    ERR_AUTH,
    ERR_CURSOR,
    ERR_OVERLOAD,
    ERR_PROTOCOL,
    ERR_QUERY,
    ERR_SHUTDOWN,
    ERR_UNSUPPORTED,
    MSG_BATCH,
    MSG_CLOSE_CURSOR,
    MSG_CLOSED,
    MSG_DONE,
    MSG_ERROR,
    MSG_FETCH,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_OPENED,
    MSG_PING,
    MSG_PONG,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    WireProtocolError,
)
from repro.obs.systables import install_connections_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import WarehouseService

logger = logging.getLogger("repro.net.server")

AUTH_TIMEOUT_S = 10.0
"""A connection that has not authenticated within this window is dropped."""

_REQUEST_QUEUE_DEPTH = 64  # pipelined frames buffered per connection


def parse_auth_tokens(tokens) -> dict[str, str]:
    """Normalise configured tokens to ``{principal: secret}``.

    Accepts plain secrets (principal becomes ``token-<i>``) and
    ``principal=secret`` entries.
    """
    table: dict[str, str] = {}
    for i, entry in enumerate(tokens):
        if "=" in entry:
            principal, secret = entry.split("=", 1)
        else:
            principal, secret = f"token-{i}", entry
        if not secret:
            raise ServiceError(f"auth token for {principal!r} is empty")
        table[principal] = secret
    return table


class _ServerCursor:
    """One server-side cursor: the bounded window between a service
    worker (producer) and the wire writer (consumer).

    The producer side is the ``sink`` protocol
    :meth:`WarehouseService.submit_stream` expects — ``opened`` /
    ``push`` / ``fail`` / ``finish`` — called from worker threads;
    ``push`` blocks while the window is full (that *is* the
    backpressure) and gives up after the stall timeout.  The consumer
    side is asyncio-native: :meth:`next_event` awaits without tying up
    an executor thread.
    """

    def __init__(self, cursor_id: int, loop: asyncio.AbstractEventLoop, *,
                 window: int, stall_timeout_s: float) -> None:
        self.id = cursor_id
        self._loop = loop
        self._window = window
        self._stall_timeout_s = stall_timeout_s
        self._cond = threading.Condition()
        self._batches: deque[bytes] = deque()
        self._state = "opening"  # streaming | done | error | cancelled
        self._error: Optional[BaseException] = None
        self._final: Optional[tuple] = None
        self._aev = asyncio.Event()
        self.names: list[str] = []
        self.dtypes: list = []
        self.rows_sent = 0
        self.batches_sent = 0

    # -- sink protocol (service worker threads) ------------------------------

    def opened(self, names, dtypes) -> None:
        with self._cond:
            if self._state == "opening":
                self.names = list(names)
                self.dtypes = list(dtypes)
                self._state = "streaming"
        self._wake_consumer()

    def push(self, result) -> bool:
        payload = frames.encode_result_batch(self.id, result)
        deadline = time.monotonic() + self._stall_timeout_s
        with self._cond:
            while len(self._batches) >= self._window:
                if self._state == "cancelled":
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Nobody is fetching: abort rather than pin a
                    # worker on a vanished client forever.
                    self._state = "error"
                    self._error = WireError(
                        f"cursor {self.id} stalled: no FETCH for "
                        f"{self._stall_timeout_s:.0f}s")
                    self._wake_consumer()
                    return False
                self._cond.wait(min(remaining, 0.25))
            if self._state == "cancelled":
                return False
            self._batches.append(payload)
        self._wake_consumer()
        return True

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            if self._state != "cancelled":
                self._state = "error"
                self._error = exc
        self._wake_consumer()

    def finish(self, report, trace, *, queued_s: float, execute_s: float,
               total_s: float) -> None:
        with self._cond:
            if self._state not in ("cancelled", "error"):
                self._state = "done"
                self._final = (report, trace,
                               {"queued_s": queued_s,
                                "execute_s": execute_s,
                                "total_s": total_s})
        self._wake_consumer()

    # -- consumer side (the wire handler coroutine) --------------------------

    def cancel(self) -> None:
        """Abandon the cursor: unblocks a parked producer immediately."""
        with self._cond:
            self._state = "cancelled"
            self._batches.clear()
            self._cond.notify_all()
        self._wake_consumer()

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    async def wait_opened(self) -> str:
        """Await admission + compile; returns the state reached."""
        while True:
            self._aev.clear()
            with self._cond:
                if self._state != "opening":
                    return self._state
            await self._aev.wait()

    async def next_event(self) -> tuple:
        """The next stream event: ``("batch", bytes)`` /
        ``("done", report, trace, timings)`` / ``("error", exc)`` /
        ``("cancelled",)``."""
        while True:
            self._aev.clear()
            with self._cond:
                if self._batches:
                    payload = self._batches.popleft()
                    self._cond.notify_all()  # wake a window-blocked producer
                    return ("batch", payload)
                if self._state == "error":
                    return ("error", self._error)
                if self._state == "done":
                    return ("done", *self._final)
                if self._state == "cancelled":
                    return ("cancelled",)
            await self._aev.wait()

    def _wake_consumer(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._aev.set)
        except RuntimeError:  # loop already closed during teardown
            pass


class _WireSession:
    """One authenticated TCP connection and its server-side cursors."""

    def __init__(self, session_no: int, peer: str) -> None:
        self.no = session_no
        self.id = f"wire-{session_no}"
        self.peer = peer
        self.principal = ""
        self.connected_at = time.time()
        self.last_activity = self.connected_at
        self.bytes_in = 0
        self.bytes_out = 0
        self.cursors: dict[int, _ServerCursor] = {}
        self.cursors_total = 0
        self._cursor_ids = itertools.count(1)

    @property
    def journal_id(self) -> str:
        """The session id carried into sys.queries / the slow log:
        wire session number + peer address."""
        return f"{self.id}@{self.peer}"

    def new_cursor(self, loop, *, window: int,
                   stall_timeout_s: float) -> _ServerCursor:
        cursor = _ServerCursor(next(self._cursor_ids), loop, window=window,
                               stall_timeout_s=stall_timeout_s)
        self.cursors[cursor.id] = cursor
        self.cursors_total += 1
        return cursor

    def drop_cursor(self, cursor_id: int) -> None:
        self.cursors.pop(cursor_id, None)

    def cancel_cursors(self) -> None:
        for cursor in list(self.cursors.values()):
            cursor.cancel()
        self.cursors.clear()


class WireServer:
    """Serve the query wire protocol for one WarehouseService."""

    def __init__(self, service: "WarehouseService") -> None:
        config = service.config
        self.service = service
        self.host = config.tcp_host
        self.requested_port = config.tcp_port
        self.auth = parse_auth_tokens(config.auth_tokens)
        self.max_frame_bytes = config.tcp_max_frame_bytes
        self.window_batches = config.cursor_window_batches
        self.stall_timeout_s = config.cursor_stall_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._sessions: dict[str, _WireSession] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = itertools.count(1)
        self._draining = False
        self._stopped = False
        self._stats_lock = threading.Lock()
        self._connections_total = 0
        self._auth_failures = 0
        self._protocol_errors = 0
        self._cursors_aborted = 0
        self._metrics_collector = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves ephemeral binds), None when down."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    def start(self) -> "WireServer":
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        bound = threading.Event()
        bind_error: list[BaseException] = []

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._server = self._loop.run_until_complete(
                    asyncio.start_server(
                        self._handle, self.host, self.requested_port,
                        backlog=512))
            except BaseException as exc:  # bind failure → re-raise in start()
                bind_error.append(exc)
                bound.set()
                return
            bound.set()
            try:
                self._loop.run_forever()
            finally:
                try:
                    self._loop.run_until_complete(
                        self._loop.shutdown_asyncgens())
                finally:
                    self._loop.close()

        self._thread = threading.Thread(target=_run, name="repro-wire",
                                        daemon=True)
        self._thread.start()
        bound.wait()
        if bind_error:
            self._thread.join()
            self._thread = None
            raise ServiceError(
                f"wire server failed to bind {self.host}:"
                f"{self.requested_port}: {bind_error[0]}"
            ) from bind_error[0]
        install_connections_table(self.service.warehouse.db,
                                  self.connections_snapshot)
        self._metrics_collector = None  # stats flow via the service collector
        logger.info("wire server listening on %s:%s", self.host, self.port)
        self.service.warehouse.oplog.record(
            "service", "wire server listening",
            host=self.host, port=self.port)
        return self

    def stop(self, *, drain_s: float = 5.0) -> None:
        """Stop accepting, drain cursors up to ``drain_s``, then abort."""
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain_s), self._loop)
        try:
            future.result(timeout=drain_s + 10.0)
        except Exception:  # pragma: no cover - defensive teardown
            logger.exception("wire shutdown did not complete cleanly")
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        logger.info("wire server stopped")

    async def _shutdown(self, drain_s: float) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + drain_s
        while self._loop.time() < deadline:
            with self._sessions_lock:
                open_cursors = sum(len(s.cursors)
                                   for s in self._sessions.values())
            if open_cursors == 0:
                break
            await asyncio.sleep(0.05)
        # Past the deadline (or idle): abort whatever is left with a
        # typed error frame so clients see *why* the stream died.
        with self._sessions_lock:
            leftovers = list(self._sessions.values())
        for session in leftovers:
            if session.cursors:
                with self._stats_lock:
                    self._cursors_aborted += len(session.cursors)
            session.cancel_cursors()
            writer = getattr(session, "writer", None)
            if writer is not None and not writer.is_closing():
                try:
                    writer.write(frames.pack_json_frame(MSG_ERROR, {
                        "code": ERR_SHUTDOWN,
                        "error": "server shutting down (drain deadline)",
                    }))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.close()

    # -- connection handling -------------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader,
                          session: Optional[_WireSession]
                          ) -> tuple[int, bytes]:
        header = await reader.readexactly(frames.HEADER_SIZE)
        msg_type, length = frames.split_header(
            header, max_frame_bytes=self.max_frame_bytes)
        payload = await reader.readexactly(length)
        if session is not None:
            session.bytes_in += frames.HEADER_SIZE + length
            session.last_activity = time.time()
        return msg_type, payload

    async def _send(self, writer: asyncio.StreamWriter,
                    session: _WireSession, data: bytes) -> None:
        writer.write(data)
        session.bytes_out += len(data)
        await writer.drain()

    async def _send_error(self, writer, session, code: str, error: str,
                          **extra) -> None:
        await self._send(writer, session, frames.pack_json_frame(
            MSG_ERROR, {"code": code, "error": error, **extra}))

    def _check_token(self, token: str) -> Optional[str]:
        """Constant-time token check against every principal (no early
        exit on match, so timing does not leak which principal hit)."""
        matched: Optional[str] = None
        encoded = token.encode("utf-8", "surrogateescape")
        for principal, secret in self.auth.items():
            if hmac.compare_digest(secret.encode("utf-8"), encoded):
                matched = principal
        return matched

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = (f"{peername[0]}:{peername[1]}"
                if isinstance(peername, tuple) else str(peername))
        session = _WireSession(next(self._session_counter), peer)
        session.writer = writer
        with self._stats_lock:
            self._connections_total += 1
        try:
            if self._draining:
                await self._send_error(writer, session, ERR_SHUTDOWN,
                                       "server is shutting down")
                return
            if not await self._handshake(reader, writer, session):
                return
            with self._sessions_lock:
                self._sessions[session.id] = session
            await self._serve_session(reader, writer, session)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away; cursors are cancelled below
        except WireProtocolError as exc:
            with self._stats_lock:
                self._protocol_errors += 1
            try:
                await self._send_error(writer, session, ERR_PROTOCOL,
                                       str(exc))
            except (ConnectionError, OSError):
                pass
        except Exception:  # pragma: no cover - never kill the server
            logger.exception("wire session %s crashed", session.id)
        finally:
            session.cancel_cursors()
            with self._sessions_lock:
                self._sessions.pop(session.id, None)
            if not writer.is_closing():
                writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader, writer,
                         session: _WireSession) -> bool:
        try:
            msg_type, payload = await asyncio.wait_for(
                self._read_frame(reader, session), timeout=AUTH_TIMEOUT_S)
        except asyncio.TimeoutError:
            await self._send_error(writer, session, ERR_AUTH,
                                   "no HELLO within the auth window")
            return False
        if msg_type != MSG_HELLO:
            with self._stats_lock:
                self._auth_failures += 1
            await self._send_error(
                writer, session, ERR_AUTH,
                f"expected HELLO, got {frames.MESSAGE_NAMES[msg_type]}")
            return False
        hello = frames.decode_json_payload(payload)
        token = hello.get("token")
        principal = self._check_token(token) if isinstance(token, str) \
            else None
        if principal is None:
            with self._stats_lock:
                self._auth_failures += 1
            await self._send_error(writer, session, ERR_AUTH,
                                   "authentication failed")
            return False
        session.principal = principal
        await self._send(writer, session, frames.pack_json_frame(
            MSG_WELCOME, {
                "session": session.id,
                "peer": session.peer,
                "principal": principal,
                "protocol": PROTOCOL_VERSION,
            }))
        return True

    async def _serve_session(self, reader, writer,
                             session: _WireSession) -> None:
        """Process requests; a dedicated pump task reads ahead so a
        client disconnect is noticed immediately, even mid-FETCH."""
        requests: asyncio.Queue = asyncio.Queue(_REQUEST_QUEUE_DEPTH)

        async def pump() -> None:
            try:
                while True:
                    frame = await self._read_frame(reader, session)
                    await requests.put(("frame", frame))
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                session.cancel_cursors()  # free workers parked on windows
                await requests.put(("eof", None))
            except WireProtocolError as exc:
                session.cancel_cursors()
                await requests.put(("protocol_error", exc))
            except asyncio.CancelledError:
                raise

        pump_task = asyncio.ensure_future(pump())
        try:
            while True:
                kind, item = await requests.get()
                if kind == "eof":
                    return
                if kind == "protocol_error":
                    with self._stats_lock:
                        self._protocol_errors += 1
                    await self._send_error(writer, session, ERR_PROTOCOL,
                                           str(item))
                    return
                msg_type, payload = item
                if msg_type == MSG_GOODBYE:
                    return
                if msg_type == MSG_PING:
                    await self._send(writer, session,
                                     frames.pack_frame(MSG_PONG))
                elif msg_type == MSG_OPEN:
                    await self._handle_open(writer, session, payload)
                elif msg_type == MSG_FETCH:
                    await self._handle_fetch(writer, session, payload)
                elif msg_type == MSG_CLOSE_CURSOR:
                    await self._handle_close_cursor(writer, session, payload)
                else:
                    raise WireProtocolError(
                        f"unexpected {frames.MESSAGE_NAMES[msg_type]} "
                        "frame from a client")
        finally:
            pump_task.cancel()

    # -- request handlers ----------------------------------------------------

    async def _handle_open(self, writer, session: _WireSession,
                           payload: bytes) -> None:
        obj = frames.decode_json_payload(payload)
        sql = obj.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise WireProtocolError("OPEN payload carries no SQL text")
        if self._draining:
            await self._send_error(writer, session, ERR_SHUTDOWN,
                                   "server is draining; no new queries")
            return
        try:
            params = frames.unpack_params(obj.get("params"))
        except WireProtocolError as exc:
            await self._send_error(writer, session, ERR_PROTOCOL, str(exc))
            return
        batch_rows = obj.get("batch_rows")
        if batch_rows is not None and (not isinstance(batch_rows, int)
                                       or batch_rows <= 0):
            raise WireProtocolError(f"invalid batch_rows {batch_rows!r}")
        cursor = session.new_cursor(self._loop, window=self.window_batches,
                                    stall_timeout_s=self.stall_timeout_s)
        # The bridge into the service's admission controller runs in an
        # executor: enqueueing parses the statement, which must not
        # stall the event loop for every other connection.
        try:
            await self._loop.run_in_executor(
                None, lambda: self.service.submit_stream(
                    session.journal_id, sql, cursor, params,
                    batch_rows=batch_rows))
        except AdmissionError as exc:
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_OVERLOAD, str(exc))
            return
        except ServiceClosedError as exc:
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_SHUTDOWN, str(exc))
            return
        except ServiceError as exc:
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_UNSUPPORTED,
                                   str(exc))
            return
        except Exception as exc:  # parse/lex errors
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_QUERY, str(exc),
                                   type=type(exc).__name__)
            return
        state = await cursor.wait_opened()
        if state == "error":
            exc = cursor._error
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_QUERY, str(exc),
                                   type=type(exc).__name__)
            return
        if state == "cancelled":
            session.drop_cursor(cursor.id)
            await self._send_error(writer, session, ERR_SHUTDOWN,
                                   "cursor cancelled before it opened")
            return
        await self._send(writer, session, frames.pack_json_frame(
            MSG_OPENED, {
                "cursor": cursor.id,
                "names": cursor.names,
                "dtypes": frames.dtype_names(cursor.dtypes),
            }))

    async def _handle_fetch(self, writer, session: _WireSession,
                            payload: bytes) -> None:
        obj = frames.decode_json_payload(payload)
        cursor = session.cursors.get(obj.get("cursor"))
        if cursor is None:
            await self._send_error(writer, session, ERR_CURSOR,
                                   f"unknown cursor {obj.get('cursor')!r}")
            return
        max_batches = obj.get("max_batches", 1)
        if not isinstance(max_batches, int) or max_batches <= 0:
            raise WireProtocolError(f"invalid max_batches {max_batches!r}")
        sent = 0
        while sent < max_batches:
            event = await cursor.next_event()
            kind = event[0]
            if kind == "batch":
                await self._send(writer, session,
                                 frames.pack_frame(MSG_BATCH, event[1]))
                cursor.batches_sent += 1
                sent += 1
            elif kind == "done":
                report, trace, timings = event[1], event[2], event[3]
                session.drop_cursor(cursor.id)
                await self._send(writer, session, frames.pack_json_frame(
                    MSG_DONE, {
                        "cursor": cursor.id,
                        "report": report.to_dict(),
                        "trace": trace,
                        "timings": timings,
                    }))
                return
            elif kind == "error":
                exc = event[1]
                with self._stats_lock:
                    self._cursors_aborted += 1
                session.drop_cursor(cursor.id)
                await self._send_error(writer, session, ERR_QUERY,
                                       str(exc), type=type(exc).__name__,
                                       cursor=cursor.id)
                return
            else:  # cancelled (drain-abort or racing CLOSE)
                session.drop_cursor(cursor.id)
                code = ERR_SHUTDOWN if self._draining else ERR_CURSOR
                await self._send_error(writer, session, code,
                                       f"cursor {cursor.id} cancelled",
                                       cursor=cursor.id)
                return

    async def _handle_close_cursor(self, writer, session: _WireSession,
                                   payload: bytes) -> None:
        obj = frames.decode_json_payload(payload)
        cursor = session.cursors.pop(obj.get("cursor"), None)
        if cursor is not None:
            cursor.cancel()
        await self._send(writer, session, frames.pack_json_frame(
            MSG_CLOSED, {"cursor": obj.get("cursor")}))

    # -- introspection -------------------------------------------------------

    def connections_snapshot(self) -> list[dict]:
        """Rows for ``sys.connections``: one per live wire session."""
        now = time.time()
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        return [
            {
                "session": s.id, "peer": s.peer, "principal": s.principal,
                "open_cursors": len(s.cursors),
                "cursors_total": s.cursors_total,
                "bytes_in": s.bytes_in, "bytes_out": s.bytes_out,
                "idle_s": round(now - s.last_activity, 3),
                "connected_at": s.connected_at,
            }
            for s in sorted(sessions, key=lambda s: s.no)
        ]

    def stats(self) -> dict:
        """Scrape-time counters (merged into the service collector)."""
        with self._sessions_lock:
            connections = len(self._sessions)
            open_cursors = sum(len(s.cursors)
                               for s in self._sessions.values())
            bytes_in = sum(s.bytes_in for s in self._sessions.values())
            bytes_out = sum(s.bytes_out for s in self._sessions.values())
        with self._stats_lock:
            return {
                "connections": connections,
                "connections_total": self._connections_total,
                "cursors_open": open_cursors,
                "cursors_aborted_total": self._cursors_aborted,
                "auth_failures_total": self._auth_failures,
                "protocol_errors_total": self._protocol_errors,
                "session_bytes_in": bytes_in,
                "session_bytes_out": bytes_out,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WireServer({self.host}:{self.port}, " \
               f"sessions={len(self._sessions)})"
