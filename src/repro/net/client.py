"""The synchronous remote client: ``connect_tcp`` → DB-API shapes.

:func:`connect_tcp` opens one authenticated wire session and returns a
:class:`RemoteConnection` whose cursors are the *same*
:class:`repro.api.cursor.Cursor` class used in-process — the cursor
only consumes a "run" protocol (``names`` / ``dtypes`` / ``batches()``
/ ``report`` / ``close``), and :class:`_RemoteRun` implements it over
OPEN/FETCH/CLOSE frames.  Rows therefore come back through the exact
fetchone/fetchmany/fetchall/iteration surface local code uses, and are
bit-identical to an in-process cursor: batches travel codec-compressed
(:mod:`repro.storage.codecs`) and floats in parameters travel as
``float.hex()``.

One request/response exchange is in flight per connection at a time (a
lock enforces it), matching the server's strict framing.  SQL text and
parameter values always travel separately — parameters as tagged typed
payloads, never interpolated into the statement.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterator, Optional

from repro.api.cursor import Cursor
from repro.db.exec.result import Result
from repro.errors import (
    AdmissionError,
    ExecutionError,
    RemoteQueryError,
    ServiceError,
    WireAuthError,
    WireError,
    WireProtocolError,
    WireShutdownError,
)
from repro.net import frames
from repro.net.frames import (
    ERR_AUTH,
    ERR_OVERLOAD,
    ERR_PROTOCOL,
    ERR_SHUTDOWN,
    ERR_UNSUPPORTED,
    MSG_BATCH,
    MSG_CLOSE_CURSOR,
    MSG_CLOSED,
    MSG_DONE,
    MSG_ERROR,
    MSG_FETCH,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_OPENED,
    MSG_PING,
    MSG_PONG,
    MSG_WELCOME,
    PROTOCOL_VERSION,
)

__all__ = ["connect_tcp", "RemoteConnection", "RemoteReport",
           "raise_wire_error"]


def raise_wire_error(obj: dict) -> None:
    """Raise the client-side exception for one server ERROR payload."""
    code = obj.get("code", "")
    message = obj.get("error", "remote error")
    if code == ERR_AUTH:
        raise WireAuthError(message)
    if code == ERR_PROTOCOL:
        raise WireProtocolError(message)
    if code == ERR_SHUTDOWN:
        raise WireShutdownError(message)
    if code == ERR_OVERLOAD:
        raise AdmissionError(message)
    if code == ERR_UNSUPPORTED:
        raise ServiceError(message)
    if code == frames.ERR_QUERY:
        raise RemoteQueryError(message, remote_type=obj.get("type", ""))
    raise WireError(f"[{code}] {message}")


class RemoteReport:
    """A :class:`QueryReport`-shaped view of the DONE frame's report.

    Attribute access reads the dict the server serialised, so
    ``cursor.report.rows_out`` (and every other counter) works the same
    against a remote cursor; :meth:`to_dict` returns the plain data.
    """

    def __init__(self, data: dict, timings: Optional[dict] = None) -> None:
        self._data = dict(data)
        self.timings = dict(timings or {})

    def __getattr__(self, name: str):
        try:
            return self._data[name]
        except KeyError:
            if name == "spans":
                return None  # spans never travel in DONE frames
            raise AttributeError(name) from None

    def to_dict(self, *, include_spans: bool = False) -> dict:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RemoteReport(rows_out={self._data.get('rows_out')}, "
                f"total_s={self._data.get('total_s')})")


class _RemoteRun:
    """One open server-side cursor, shaped like a StreamingQuery.

    Satisfies the run protocol :class:`repro.api.cursor.Cursor`
    consumes; :meth:`batches` FETCHes ahead ``fetch_batches`` at a time
    and fully reads each response before yielding, so the connection is
    idle between pulls and :meth:`close` can always send CLOSE_CURSOR.
    """

    def __init__(self, conn: "RemoteConnection", cursor_id: int,
                 names: list[str], dtypes: list, sql: str) -> None:
        self._conn = conn
        self._cursor_id = cursor_id
        self.sql = sql
        self.is_rowset = True
        self.names = names
        self.dtypes = dtypes
        self.rowcount = -1
        self.report: Optional[RemoteReport] = None
        self.trace: list[dict] = []
        self._finished = False
        self._closed = False

    def batches(self) -> Iterator[Result]:
        while not self._finished:
            for result in self._fetch_once():
                yield result

    def _fetch_once(self) -> list[Result]:
        """One FETCH round trip; marks the run finished on DONE/ERROR."""
        want = self._conn._fetch_batches
        results: list[Result] = []
        with self._conn._lock:
            self._conn._send(frames.pack_json_frame(MSG_FETCH, {
                "cursor": self._cursor_id, "max_batches": want}))
            while len(results) < want:
                msg_type, payload = self._conn._recv()
                if msg_type == MSG_BATCH:
                    cursor_id, result = frames.decode_result_batch(
                        payload, self.names)
                    if cursor_id != self._cursor_id:
                        raise WireProtocolError(
                            f"batch for cursor {cursor_id}, "
                            f"expected {self._cursor_id}")
                    results.append(result)
                    continue
                if msg_type == MSG_DONE:
                    obj = frames.decode_json_payload(payload)
                    self.report = RemoteReport(obj.get("report", {}),
                                               obj.get("timings"))
                    self.trace = obj.get("trace", [])
                    self.rowcount = int(getattr(self.report, "rows_out",
                                                -1))
                    self._finished = True
                    self._closed = True  # server dropped the cursor
                    break
                if msg_type == MSG_ERROR:
                    self._finished = True
                    self._closed = True
                    raise_wire_error(frames.decode_json_payload(payload))
                raise WireProtocolError(
                    f"unexpected {frames.MESSAGE_NAMES[msg_type]} "
                    "during FETCH")
        return results

    def close(self) -> None:
        """Abandon the stream: frees the server cursor (and its worker)."""
        if self._closed:
            return
        self._closed = True
        self._finished = True
        if self._conn.closed:
            return
        with self._conn._lock:
            self._conn._send(frames.pack_json_frame(
                MSG_CLOSE_CURSOR, {"cursor": self._cursor_id}))
            msg_type, payload = self._conn._recv()
            if msg_type == MSG_ERROR:
                raise_wire_error(frames.decode_json_payload(payload))
            if msg_type != MSG_CLOSED:
                raise WireProtocolError(
                    f"expected CLOSED, got "
                    f"{frames.MESSAGE_NAMES[msg_type]}")


class RemotePreparedStatement:
    """Client-side prepared statement: the SQL travels once per execute
    (verbatim), values travel as typed payloads, and the *server's*
    plan cache makes repeat executions compile-free."""

    def __init__(self, connection: "RemoteConnection", sql: str) -> None:
        self.connection = connection
        self.sql = sql

    def execute(self, params=None, *,
                cursor: Optional[Cursor] = None) -> Cursor:
        target = cursor if cursor is not None else self.connection.cursor()
        return target.execute(self.sql, params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = " ".join(self.sql.split())[:60]
        return f"RemotePreparedStatement({head!r})"


class RemoteConnection:
    """One authenticated TCP session against a served warehouse."""

    def __init__(self, sock: socket.socket, welcome: dict, *,
                 batch_rows: Optional[int] = None,
                 fetch_batches: int = 1,
                 max_frame_bytes: int = frames.DEFAULT_MAX_FRAME_BYTES
                 ) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._batch_rows = batch_rows
        self._fetch_batches = max(1, fetch_batches)
        self._max_frame_bytes = max_frame_bytes
        self._closed = False
        self.session = welcome.get("session", "")
        self.principal = welcome.get("principal", "")
        self.server_protocol = welcome.get("protocol", 0)

    # -- cursors (the shared DB-API surface) ---------------------------------

    def cursor(self, *, batch_rows: Optional[int] = None) -> Cursor:
        self._check_open()
        return Cursor(self._run, batch_rows=batch_rows or self._batch_rows)

    def execute(self, sql: str, params=None) -> Cursor:
        return self.cursor().execute(sql, params)

    def prepare(self, sql: str) -> RemotePreparedStatement:
        self._check_open()
        return RemotePreparedStatement(self, sql)

    def _run(self, sql: str, params, batch_rows: int) -> _RemoteRun:
        self._check_open()
        with self._lock:
            self._send(frames.pack_json_frame(MSG_OPEN, {
                "sql": sql,
                "params": frames.pack_params(params),
                "batch_rows": batch_rows,
            }))
            msg_type, payload = self._recv()
        if msg_type == MSG_ERROR:
            raise_wire_error(frames.decode_json_payload(payload))
        if msg_type != MSG_OPENED:
            raise WireProtocolError(
                f"expected OPENED, got {frames.MESSAGE_NAMES[msg_type]}")
        obj = frames.decode_json_payload(payload)
        return _RemoteRun(self, obj["cursor"], obj["names"],
                          frames.dtypes_from_names(obj["dtypes"]), sql)

    # -- connection management ----------------------------------------------

    def ping(self) -> bool:
        self._check_open()
        with self._lock:
            self._send(frames.pack_frame(MSG_PING))
            msg_type, _payload = self._recv()
        return msg_type == MSG_PONG

    def commit(self) -> None:
        """No-op: the engine autocommits."""

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(frames.pack_frame(MSG_GOODBYE))
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    # -- framing -------------------------------------------------------------

    def _send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            self._closed = True
            raise ConnectionError(f"connection lost: {exc}") from exc

    def _recv(self) -> tuple[int, bytes]:
        try:
            return frames.recv_frame_sock(
                self._sock, max_frame_bytes=self._max_frame_bytes)
        except ConnectionError:
            self._closed = True
            raise

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"RemoteConnection({self.session or '?'}, {state})"


def connect_tcp(host: str, port: int, *, token: str,
                timeout: Optional[float] = 30.0,
                batch_rows: Optional[int] = None,
                fetch_batches: int = 1,
                max_frame_bytes: int = frames.DEFAULT_MAX_FRAME_BYTES
                ) -> RemoteConnection:
    """Open an authenticated connection to a served warehouse.

    ``timeout`` bounds every socket operation (connect and each frame
    read); ``fetch_batches`` is the FETCH-ahead window — how many result
    batches each round trip may carry.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(frames.pack_json_frame(MSG_HELLO, {
            "token": token, "protocol": PROTOCOL_VERSION}))
        msg_type, payload = frames.recv_frame_sock(
            sock, max_frame_bytes=max_frame_bytes)
        if msg_type == MSG_ERROR:
            raise_wire_error(frames.decode_json_payload(payload))
        if msg_type != MSG_WELCOME:
            raise WireProtocolError(
                f"expected WELCOME, got {frames.MESSAGE_NAMES[msg_type]}")
        welcome = frames.decode_json_payload(payload)
    except BaseException:
        sock.close()
        raise
    return RemoteConnection(sock, welcome, batch_rows=batch_rows,
                            fetch_batches=fetch_batches,
                            max_frame_bytes=max_frame_bytes)
