"""The wire protocol subsystem: remote access to a served warehouse.

Server side, :class:`~repro.net.server.WireServer` is owned by a
:class:`~repro.service.service.WarehouseService`
(``warehouse.serve(tcp_port=..., auth_tokens=[...])``) and speaks a
length-prefixed binary protocol (:mod:`repro.net.frames`) with
server-side cursors and bounded backpressure windows.  Client side,
:func:`connect_tcp` returns a DB-API-shaped connection reusing the
in-process :class:`repro.api.cursor.Cursor`, and
:func:`connect_tcp_async` is its asyncio-native twin.  ``repro-serve``
(:mod:`repro.net.cli`) serves a warehouse until SIGTERM.
"""

from repro.net.aio import AsyncConnection, AsyncCursor, connect_tcp_async
from repro.net.client import (
    RemoteConnection,
    RemotePreparedStatement,
    RemoteReport,
    connect_tcp,
)
from repro.net.frames import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
)
from repro.net.server import WireServer

__all__ = [
    "AsyncConnection",
    "AsyncCursor",
    "DEFAULT_MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RemoteConnection",
    "RemotePreparedStatement",
    "RemoteReport",
    "WireServer",
    "connect_tcp",
    "connect_tcp_async",
]
