"""The wire frame format: length-prefixed, typed, codec-compressed.

Every message on a wire connection is one frame::

    u32 length (little-endian) | u8 type | payload[length - 1]

The length prefix covers the type byte plus the payload, so a reader
always knows exactly how many bytes to consume; a frame longer than the
negotiated :data:`MAX_FRAME_BYTES` is refused *before* the payload is
read (the peer gets a typed error frame, then the connection closes).

Control payloads (HELLO, OPEN, FETCH, ...) are UTF-8 JSON.  Bound
parameter values travel as *tagged* JSON (:func:`pack_params` /
:func:`unpack_params`) — ints, bools, strings and NULL natively, floats
as ``float.hex()`` so every bit pattern survives the trip — and the SQL
text itself travels verbatim and is compiled server-side with the
values bound through the engine's prepared-statement machinery: values
are never interpolated into SQL.

Result batches are binary: :func:`encode_result_batch` runs every column
through the segment page codecs of :mod:`repro.storage.codecs` (RLE /
dict / frame-of-reference / plain, smallest wins) so transport
compression is the same machinery — and the same tests — as storage
compression.  Null masks travel as packed bits alongside each column,
exactly like the segment page layer.
"""

from __future__ import annotations

import json
import math
import socket
import struct
from typing import Optional

import numpy as np

from repro.db.column import Column
from repro.db.exec.result import Result
from repro.db.types import DataType, numpy_dtype
from repro.errors import WireProtocolError
from repro.storage.codecs import decode_array, encode_array

PROTOCOL_VERSION = 1

DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024
"""Refuse frames larger than this (either direction) by default."""

_U32 = struct.Struct("<I")
_HEADER = struct.Struct("<IB")  # length + type
_BATCH_COL = struct.Struct("<BBB I")  # dtype code, codec id, null flag, nbytes

# -- message types -----------------------------------------------------------

# client -> server
MSG_HELLO = 0x01          # {token, principal?, client?} — must be first
MSG_OPEN = 0x02           # {sql, params?, batch_rows?} -> OPENED | ERROR
MSG_FETCH = 0x03          # {cursor, max_batches?} -> BATCH* [DONE|ERROR]
MSG_CLOSE_CURSOR = 0x04   # {cursor} -> CLOSED
MSG_PING = 0x05           # {} -> PONG
MSG_GOODBYE = 0x06        # {} -> connection closes cleanly

# server -> client
MSG_WELCOME = 0x81        # {session, server, protocol}
MSG_OPENED = 0x82         # {cursor, names, dtypes}
MSG_BATCH = 0x83          # binary result batch (see encode_result_batch)
MSG_DONE = 0x84           # {cursor, report, trace} — stream exhausted
MSG_CLOSED = 0x85         # {cursor}
MSG_PONG = 0x86           # {}
MSG_ERROR = 0xFF          # {code, error, type?} — typed failure

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO", MSG_OPEN: "OPEN", MSG_FETCH: "FETCH",
    MSG_CLOSE_CURSOR: "CLOSE_CURSOR", MSG_PING: "PING",
    MSG_GOODBYE: "GOODBYE",
    MSG_WELCOME: "WELCOME", MSG_OPENED: "OPENED", MSG_BATCH: "BATCH",
    MSG_DONE: "DONE", MSG_CLOSED: "CLOSED", MSG_PONG: "PONG",
    MSG_ERROR: "ERROR",
}

# Error codes carried by MSG_ERROR frames.
ERR_AUTH = "auth"              # handshake failed (bad/missing token)
ERR_PROTOCOL = "protocol"      # malformed/oversized/unexpected frame
ERR_UNSUPPORTED = "unsupported"  # statement kind the wire refuses
ERR_QUERY = "query"            # the query itself failed (compile/run)
ERR_CURSOR = "cursor"          # unknown/closed cursor id
ERR_SHUTDOWN = "shutdown"      # server drained past its deadline
ERR_OVERLOAD = "overload"      # admission queue full

# Wire codes for DataType (stable — new types append).
_DTYPE_CODES = {
    DataType.BOOLEAN: 0,
    DataType.BIGINT: 1,
    DataType.DOUBLE: 2,
    DataType.VARCHAR: 3,
    DataType.TIMESTAMP: 4,
}
_DTYPE_FROM_CODE = {code: dtype for dtype, code in _DTYPE_CODES.items()}


# ---------------------------------------------------------------------------
# Frame packing
# ---------------------------------------------------------------------------


def pack_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: u32 length + u8 type + payload."""
    return _HEADER.pack(len(payload) + 1, msg_type) + payload


def _json_fallback(value):
    # numpy scalars (trace counters) serialise as their python value
    item = getattr(value, "item", None)
    return item() if callable(item) else str(value)


def pack_json_frame(msg_type: int, obj: dict) -> bytes:
    return pack_frame(msg_type,
                      json.dumps(obj, separators=(",", ":"),
                                 default=_json_fallback).encode("utf-8"))


def decode_json_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"control payload is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireProtocolError("control payload must be a JSON object")
    return obj


def split_header(header: bytes, *, max_frame_bytes: int) -> tuple[int, int]:
    """Parse the 5-byte frame header → ``(type, payload length)``.

    Validates the length prefix against ``max_frame_bytes`` before any
    payload is read.
    """
    if len(header) != _HEADER.size:
        raise WireProtocolError(
            f"torn frame header: got {len(header)} of {_HEADER.size} bytes")
    length, msg_type = _HEADER.unpack(header)
    if length < 1:
        raise WireProtocolError(f"invalid frame length {length}")
    if length - 1 > max_frame_bytes:
        raise WireProtocolError(
            f"frame of {length - 1} bytes exceeds the "
            f"{max_frame_bytes}-byte limit")
    if msg_type not in MESSAGE_NAMES:
        raise WireProtocolError(f"unknown frame type 0x{msg_type:02x}")
    return msg_type, length - 1


HEADER_SIZE = _HEADER.size


def recv_frame_sock(sock: socket.socket, *,
                    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
                    ) -> tuple[int, bytes]:
    """Blocking frame read off a socket → ``(type, payload)``.

    Raises :class:`WireProtocolError` on torn/oversized/garbage frames
    and :class:`ConnectionError` on a cleanly closed peer.
    """
    header = _recv_exact(sock, HEADER_SIZE, allow_eof=True)
    if header is None:
        raise ConnectionError("connection closed by peer")
    msg_type, length = split_header(header, max_frame_bytes=max_frame_bytes)
    payload = _recv_exact(sock, length, allow_eof=False)
    return msg_type, payload


def _recv_exact(sock: socket.socket, n: int,
                *, allow_eof: bool) -> Optional[bytes]:
    parts: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise WireProtocolError(
                f"torn frame: connection closed with {remaining} of "
                f"{n} bytes unread")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# Parameter packing (typed payloads, never interpolated SQL)
# ---------------------------------------------------------------------------


def _tag_value(value) -> list:
    if value is None:
        return ["z"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        # float.hex round-trips every finite bit pattern; inf/nan are
        # spelled out (JSON has no literal for them).
        if math.isnan(value):
            return ["f", "nan"]
        if math.isinf(value):
            return ["f", "inf" if value > 0 else "-inf"]
        return ["f", value.hex()]
    if isinstance(value, str):
        return ["s", value]
    raise WireProtocolError(
        f"parameter type {type(value).__name__} cannot travel on the wire")


def _untag_value(tagged):
    if not isinstance(tagged, list) or not tagged:
        raise WireProtocolError(f"malformed tagged parameter: {tagged!r}")
    tag = tagged[0]
    if tag == "z":
        return None
    if tag in ("b", "i", "s"):
        return tagged[1]
    if tag == "f":
        raw = tagged[1]
        if raw == "nan":
            return math.nan
        if raw == "inf":
            return math.inf
        if raw == "-inf":
            return -math.inf
        return float.fromhex(raw)
    raise WireProtocolError(f"unknown parameter tag {tag!r}")


def pack_params(params) -> Optional[dict]:
    """Tag bound parameter values for the OPEN payload (None for none)."""
    if params is None:
        return None
    if isinstance(params, dict):
        return {"named": {str(k): _tag_value(v) for k, v in params.items()}}
    if isinstance(params, (list, tuple)):
        return {"positional": [_tag_value(v) for v in params]}
    raise WireProtocolError(
        f"parameters must be a sequence or mapping, got "
        f"{type(params).__name__}")


def unpack_params(packed) -> "dict | tuple | None":
    if packed is None:
        return None
    if not isinstance(packed, dict):
        raise WireProtocolError("malformed parameter payload")
    if "named" in packed:
        named = packed["named"]
        if not isinstance(named, dict):
            raise WireProtocolError("malformed named-parameter payload")
        return {k: _untag_value(v) for k, v in named.items()}
    if "positional" in packed:
        positional = packed["positional"]
        if not isinstance(positional, list):
            raise WireProtocolError("malformed positional-parameter payload")
        return tuple(_untag_value(v) for v in positional)
    raise WireProtocolError("parameter payload has neither style")


# ---------------------------------------------------------------------------
# Result batch encoding (storage page codecs over the wire)
# ---------------------------------------------------------------------------


def dtype_names(dtypes: list[DataType]) -> list[str]:
    return [d.value for d in dtypes]


def dtypes_from_names(names) -> list[DataType]:
    try:
        return [DataType(n) for n in names]
    except ValueError as exc:
        raise WireProtocolError(f"unknown column type: {exc}") from exc


def encode_result_batch(cursor_id: int, result: Result) -> bytes:
    """One BATCH payload: cursor id + codec-compressed columns."""
    parts = [_U32.pack(cursor_id), _U32.pack(result.row_count),
             _U32.pack(result.column_count)]
    for col in result.columns:
        values = col.values
        if col.dtype == DataType.VARCHAR and values.dtype != object:
            values = values.astype(object)
        codec_id, payload = encode_array(col.dtype, values)
        has_nulls = col.valid is not None
        parts.append(_BATCH_COL.pack(_DTYPE_CODES[col.dtype], codec_id,
                                     1 if has_nulls else 0, len(payload)))
        parts.append(payload)
        if has_nulls:
            parts.append(np.packbits(col.valid).tobytes())
    return b"".join(parts)


def decode_result_batch(payload: bytes,
                        names: list[str]) -> tuple[int, Result]:
    """Decode one BATCH payload → ``(cursor_id, Result)``."""
    try:
        (cursor_id,) = _U32.unpack_from(payload, 0)
        (row_count,) = _U32.unpack_from(payload, 4)
        (n_cols,) = _U32.unpack_from(payload, 8)
        if n_cols != len(names):
            raise WireProtocolError(
                f"batch has {n_cols} columns, cursor described {len(names)}")
        offset = 12
        columns: list[Column] = []
        for _ in range(n_cols):
            dtype_code, codec_id, has_nulls, nbytes = \
                _BATCH_COL.unpack_from(payload, offset)
            offset += _BATCH_COL.size
            dtype = _DTYPE_FROM_CODE.get(dtype_code)
            if dtype is None:
                raise WireProtocolError(f"unknown dtype code {dtype_code}")
            values = decode_array(dtype, codec_id,
                                  payload[offset:offset + nbytes], row_count)
            offset += nbytes
            valid = None
            if has_nulls:
                mask_len = (row_count + 7) // 8
                bits = np.frombuffer(payload, dtype=np.uint8,
                                     count=mask_len, offset=offset)
                valid = np.unpackbits(bits, count=row_count).astype(bool)
                offset += mask_len
            if dtype != DataType.VARCHAR:
                values = values.astype(numpy_dtype(dtype))
            columns.append(Column(dtype, values, valid))
        return cursor_id, Result(list(names), columns)
    except WireProtocolError:
        raise
    except Exception as exc:  # struct errors, codec corruption, ...
        raise WireProtocolError(f"malformed batch payload: {exc}") from exc
