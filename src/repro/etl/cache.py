"""The extraction cache — lazy loading per §3.3.

"Materialization of the extracted and transformed data is simply caching"
— this module is that cache.  Entries live at **record grain**
``(uri, seq_no)`` so overlapping queries reuse each other's extractions
partially; each entry stores the transformed columns of one record plus
the file's mtime at admission.

Policies: LRU (the paper's), FIFO and a cost-aware variant for the
eviction ablation.  The byte budget models "not larger than the size of
the system's main memory".

Staleness (lazy refresh): :meth:`ExtractionCache.validate_file` compares
the file's current mtime with the admission-time mtime; on mismatch all of
the file's entries are dropped, forcing re-extraction from the updated
file during the same query — no separate refresh job ever runs.

Concurrency: the cache is shared by every session of a
:class:`~repro.service.service.WarehouseService`, so all public methods
are thread-safe.  Two locking layers cooperate:

* a set of **stripe locks**, one per hash bucket of URIs, serialise the
  multi-step per-file sequences (validate → refresh → extract → admit)
  so two sessions never interleave staleness handling for one file;
* a single **structural lock** guards the shared LRU map, byte counter
  and per-URI index for the short critical sections that mutate them.

Stripe locks are always acquired before the structural lock and eviction
only ever takes the structural lock, so the order is acyclic.  Entries
can be **protected** (in-flight markers) while a coalesced extraction's
waiters still need them; protected entries are never evicted — if every
entry is protected the cache temporarily overcommits, exactly like the
buffer pool's pinned pages, and trims back as soon as protection drops.
"""

from __future__ import annotations

import itertools
import logging
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import CacheInvariantError, ETLError

logger = logging.getLogger("repro.etl.cache")

POLICIES = ("lru", "fifo", "cost")

STRIPE_COUNT = 16
"""Number of per-URI lock stripes (power of two, keeps hashing cheap)."""


@dataclass
class CacheEntry:
    columns: dict[str, np.ndarray]
    mtime_ns: int
    nbytes: int
    admitted_seq: int
    cost_estimate: float
    hits: int = 0


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0
    stale_drops: int = 0
    widenings: int = 0
    restored: int = 0  # entries re-admitted from a storage snapshot
    spills: int = 0  # entries persisted to a storage snapshot

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ExtractionCache:
    """Bounded record-grain cache of extracted, transformed actual data."""

    def __init__(self, budget_bytes: int = 256 * 1024 * 1024,
                 policy: str = "lru") -> None:
        if policy not in POLICIES:
            raise ETLError(f"unknown cache policy {policy!r}")
        self.budget_bytes = budget_bytes
        self.policy = policy
        self._entries: "OrderedDict[tuple[str, int], CacheEntry]" = OrderedDict()
        self._file_mtime: dict[str, int] = {}
        # Per-URI seq_no index so staleness drops and introspection are
        # O(entries of that file), not O(all entries).
        self._by_uri: dict[str, set[int]] = {}
        self._bytes = 0
        self._admission_counter = itertools.count(1)
        self.stats = CacheStats()
        self.epoch = 0  # bumped on every mutation; recycler signatures use it
        # Concurrency: stripe locks serialise per-file sequences, the
        # structural lock guards the shared maps (see module docstring).
        self._lock = threading.RLock()
        self._stripes = [threading.RLock() for _ in range(STRIPE_COUNT)]
        # In-flight markers: (uri, seq) -> protection refcount.  Protected
        # entries are exempt from eviction.
        self._protected: dict[tuple[str, int], int] = {}

    # -- locking -----------------------------------------------------------------

    def _stripe_for(self, uri: str) -> threading.RLock:
        return self._stripes[hash(uri) % STRIPE_COUNT]

    @contextmanager
    def file_lock(self, uri: str) -> Iterator[None]:
        """Serialise a multi-step per-file sequence (validate → refresh →
        extract → admit) against other sessions touching the same stripe."""
        with self._stripe_for(uri):
            yield

    # -- in-flight markers -------------------------------------------------------

    def protect(self, uri: str, seq_no: int) -> None:
        """Exempt an entry from eviction while a coalesced flight's
        waiters may still need it (refcounted)."""
        key = (uri, seq_no)
        with self._lock:
            self._protected[key] = self._protected.get(key, 0) + 1

    def unprotect(self, uri: str, seq_no: int) -> None:
        key = (uri, seq_no)
        with self._lock:
            count = self._protected.get(key)
            if count is None:
                raise ETLError(f"unprotect of unprotected entry {key}")
            if count <= 1:
                del self._protected[key]
            else:
                self._protected[key] = count - 1
            self._evict_to_budget()

    def protected_count(self) -> int:
        with self._lock:
            return len(self._protected)

    # -- staleness ---------------------------------------------------------------

    def validate_file(self, uri: str, current_mtime_ns: int) -> bool:
        """Lazy refresh check: drop the file's entries if it changed.

        Returns ``True`` when cached entries (if any) are still valid.
        """
        with self._stripe_for(uri), self._lock:
            known = self._file_mtime.get(uri)
            if known is None:
                return True
            if known == current_mtime_ns:
                return True
            dropped = self._invalidate_file_locked(uri)
            self.stats.stale_drops += dropped
            return False

    def invalidate_file(self, uri: str) -> int:
        with self._stripe_for(uri), self._lock:
            return self._invalidate_file_locked(uri)

    def _invalidate_file_locked(self, uri: str) -> int:
        doomed = self._by_uri.pop(uri, None) or set()
        for seq_no in doomed:
            entry = self._entries.pop((uri, seq_no))
            self._bytes -= entry.nbytes
        self._file_mtime.pop(uri, None)
        if doomed:
            self.epoch += 1
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._file_mtime.clear()
            self._by_uri.clear()
            self._bytes = 0
            self.epoch += 1

    # -- lookup / admission ------------------------------------------------------------

    def get(self, uri: str, seq_no: int,
            needed: list[str]) -> Optional[dict[str, np.ndarray]]:
        """Return the record's columns if all ``needed`` ones are cached."""
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get((uri, seq_no))
            if entry is None or any(col not in entry.columns for col in needed):
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            entry.hits += 1
            if self.policy == "lru":
                self._entries.move_to_end((uri, seq_no))
            return {col: entry.columns[col] for col in needed}

    def put(self, uri: str, seq_no: int, mtime_ns: int,
            columns: dict[str, np.ndarray],
            *, cost_estimate: float = 1.0) -> bool:
        """Admit (or widen) one record's transformed columns.

        Widening merges the new columns over the cached ones.  If the
        widened entry would exceed the whole budget, the admission is
        rejected and the *previously cached entry stays intact* — an
        over-budget widening must not lose columns that were already paid
        for.
        """
        key = (uri, seq_no)
        with self._stripe_for(uri), self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                merged = dict(existing.columns)
                merged.update(columns)
                columns = merged
            nbytes = sum(arr.nbytes for arr in columns.values())
            if nbytes > self.budget_bytes:
                return False
            if existing is not None:
                self._bytes -= existing.nbytes
                self.stats.widenings += 1
                del self._entries[key]
            self._entries[key] = CacheEntry(
                columns=columns,
                mtime_ns=mtime_ns,
                nbytes=nbytes,
                admitted_seq=next(self._admission_counter),
                cost_estimate=cost_estimate,
            )
            self._file_mtime[uri] = mtime_ns
            self._by_uri.setdefault(uri, set()).add(seq_no)
            self._bytes += nbytes
            self.stats.admissions += 1
            self.epoch += 1
            self._evict_to_budget()
            return True

    def _evict_to_budget(self) -> None:
        while self._bytes > self.budget_bytes and self._entries:
            victim = self._pick_victim()
            if victim is None:
                # Everything left is protected by an in-flight extraction:
                # overcommit temporarily, like pinned buffer-pool pages.
                return
            entry = self._entries.pop(victim)
            self._drop_from_uri_index(victim)
            self._bytes -= entry.nbytes
            self.stats.evictions += 1
            self.epoch += 1

    def _drop_from_uri_index(self, key: tuple[str, int]) -> None:
        uri, seq_no = key
        seqs = self._by_uri.get(uri)
        if seqs is not None:
            seqs.discard(seq_no)
            if not seqs:
                del self._by_uri[uri]

    def _pick_victim(self) -> Optional[tuple[str, int]]:
        if self.policy in ("lru", "fifo"):
            for key in self._entries:
                if key not in self._protected:
                    return key
            return None
        candidates = [k for k in self._entries if k not in self._protected]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda key: (
                self._entries[key].cost_estimate
                / max(self._entries[key].nbytes, 1)
            ),
        )

    # -- consistency --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert internal bookkeeping consistency (stress-test hook).

        Verifies, atomically under the structural lock:

        * the byte counter equals the sum of entry sizes;
        * total bytes fit the budget unless in-flight protection forces
          an overcommit;
        * the per-URI index and the entry map describe the same key set;
        * every indexed URI has an admission mtime.

        Raises :class:`~repro.errors.CacheInvariantError` on violation.
        """
        with self._lock:
            actual = sum(entry.nbytes for entry in self._entries.values())
            if actual != self._bytes:
                raise CacheInvariantError(
                    f"byte counter {self._bytes} != sum of entries {actual}"
                )
            if self._bytes > self.budget_bytes:
                unprotected = [k for k in self._entries
                               if k not in self._protected]
                if unprotected:
                    raise CacheInvariantError(
                        f"over budget ({self._bytes} > {self.budget_bytes}) "
                        f"with {len(unprotected)} evictable entries"
                    )
            indexed = {
                (uri, seq) for uri, seqs in self._by_uri.items()
                for seq in seqs
            }
            present = set(self._entries)
            if indexed != present:
                missing = present - indexed
                stale = indexed - present
                raise CacheInvariantError(
                    f"uri index out of sync: missing={sorted(missing)[:4]} "
                    f"stale={sorted(stale)[:4]}"
                )
            for uri in self._by_uri:
                if uri not in self._file_mtime:
                    raise CacheInvariantError(
                        f"indexed file {uri!r} has no admission mtime"
                    )

    # -- introspection (demo capability 7) ------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def cached_seq_nos(self, uri: str) -> list[int]:
        with self._lock:
            return sorted(self._by_uri.get(uri, ()))

    def contents(self) -> list[tuple[str, int, int, int]]:
        """(uri, seq_no, bytes, hits) per entry, in eviction order."""
        with self._lock:
            return [
                (uri, seq, entry.nbytes, entry.hits)
                for (uri, seq), entry in self._entries.items()
            ]

    # -- persistence (storage-engine warm starts) -----------------------------------

    def export_entries(self) -> list[
        tuple[str, int, int, float, dict[str, np.ndarray]]
    ]:
        """Snapshot every entry as ``(uri, seq, mtime_ns, cost, columns)``.

        Eviction order is preserved so a restore replays admissions in
        the same order and reproduces the LRU/FIFO state.
        """
        with self._lock:
            return [
                (uri, seq_no, entry.mtime_ns, entry.cost_estimate,
                 dict(entry.columns))
                for (uri, seq_no), entry in self._entries.items()
            ]

    def import_entries(
        self,
        entries: list[tuple[str, int, int, float, dict[str, np.ndarray]]],
    ) -> int:
        """Re-admit snapshot entries (budget and policy still apply)."""
        restored = 0
        for uri, seq_no, mtime_ns, cost, columns in entries:
            if self.put(uri, seq_no, mtime_ns, columns,
                        cost_estimate=cost):
                restored += 1
        # Restores are bookkeeping, not workload: keep admission counts
        # meaningful for the eviction ablation.
        with self._lock:
            self.stats.admissions -= restored
            self.stats.restored += restored
        return restored

    def spill(self, store, *, skip=None) -> int:
        """Persist the cache into a table store's snapshot area.

        ``store`` is a :class:`~repro.storage.store.TableStore` or a
        directory path.  ``skip`` is an optional predicate
        ``(uri, seq_no, mtime_ns, columns) -> bool``; entries it accepts
        are left out of the snapshot (the lazy warehouse skips entries
        already covered by a promoted segment — persisting the hot set
        twice would only cost checkpoint time and dead cache budget on
        restore).  Returns the number of entries written.
        """
        store = _as_store(store)
        entries = self.export_entries()
        if skip is not None:
            entries = [
                entry for entry in entries
                if not skip(entry[0], entry[1], entry[2], entry[4])
            ]
        written = store.save_cache_snapshot(entries)
        with self._lock:
            self.stats.spills += written
        logger.info("spilled %d cache entries to %s", written, store.root)
        return written

    def restore(self, store) -> int:
        """Warm-start from a snapshot written by :meth:`spill`."""
        store = _as_store(store)
        return self.import_entries(store.load_cache_snapshot())

    def snapshot(self) -> dict:
        """Counters and occupancy as plain data (metrics collectors)."""
        with self._lock:
            return {
                "lookups": self.stats.lookups,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "admissions": self.stats.admissions,
                "evictions": self.stats.evictions,
                "stale_drops": self.stats.stale_drops,
                "widenings": self.stats.widenings,
                "restored": self.stats.restored,
                "spills": self.stats.spills,
                "entries": len(self._entries),
                "used_bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "protected": len(self._protected),
            }

    def render(self, max_rows: int = 20) -> str:
        lines = [
            f"extraction cache: {len(self)} entries, "
            f"{self._bytes} / {self.budget_bytes} bytes ({self.policy})"
        ]
        for uri, seq, nbytes, hits in self.contents()[:max_rows]:
            lines.append(f"  {uri} seq={seq} bytes={nbytes} hits={hits}")
        if len(self) > max_rows:
            lines.append(f"  ... {len(self) - max_rows} more entries")
        return "\n".join(lines)


def _as_store(store):
    """Accept a TableStore or a directory path (lazy import: storage
    depends on the db layer, never the reverse of this module)."""
    from repro.storage.store import TableStore

    if isinstance(store, TableStore):
        return store
    return TableStore(store)
