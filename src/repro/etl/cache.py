"""The extraction cache — lazy loading per §3.3.

"Materialization of the extracted and transformed data is simply caching"
— this module is that cache.  Entries live at **record grain**
``(uri, seq_no)`` so overlapping queries reuse each other's extractions
partially; each entry stores the transformed columns of one record plus
the file's mtime at admission.

Policies: LRU (the paper's), FIFO and a cost-aware variant for the
eviction ablation.  The byte budget models "not larger than the size of
the system's main memory".

Staleness (lazy refresh): :meth:`ExtractionCache.validate_file` compares
the file's current mtime with the admission-time mtime; on mismatch all of
the file's entries are dropped, forcing re-extraction from the updated
file during the same query — no separate refresh job ever runs.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ETLError

POLICIES = ("lru", "fifo", "cost")


@dataclass
class CacheEntry:
    columns: dict[str, np.ndarray]
    mtime_ns: int
    nbytes: int
    admitted_seq: int
    cost_estimate: float
    hits: int = 0


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0
    stale_drops: int = 0
    widenings: int = 0
    restored: int = 0  # entries re-admitted from a storage snapshot

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ExtractionCache:
    """Bounded record-grain cache of extracted, transformed actual data."""

    def __init__(self, budget_bytes: int = 256 * 1024 * 1024,
                 policy: str = "lru") -> None:
        if policy not in POLICIES:
            raise ETLError(f"unknown cache policy {policy!r}")
        self.budget_bytes = budget_bytes
        self.policy = policy
        self._entries: "OrderedDict[tuple[str, int], CacheEntry]" = OrderedDict()
        self._file_mtime: dict[str, int] = {}
        # Per-URI seq_no index so staleness drops and introspection are
        # O(entries of that file), not O(all entries).
        self._by_uri: dict[str, set[int]] = {}
        self._bytes = 0
        self._admission_counter = itertools.count(1)
        self.stats = CacheStats()
        self.epoch = 0  # bumped on every mutation; recycler signatures use it

    # -- staleness ---------------------------------------------------------------

    def validate_file(self, uri: str, current_mtime_ns: int) -> bool:
        """Lazy refresh check: drop the file's entries if it changed.

        Returns ``True`` when cached entries (if any) are still valid.
        """
        known = self._file_mtime.get(uri)
        if known is None:
            return True
        if known == current_mtime_ns:
            return True
        dropped = self.invalidate_file(uri)
        self.stats.stale_drops += dropped
        return False

    def invalidate_file(self, uri: str) -> int:
        doomed = self._by_uri.pop(uri, None) or set()
        for seq_no in doomed:
            entry = self._entries.pop((uri, seq_no))
            self._bytes -= entry.nbytes
        self._file_mtime.pop(uri, None)
        if doomed:
            self.epoch += 1
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._file_mtime.clear()
        self._by_uri.clear()
        self._bytes = 0
        self.epoch += 1

    # -- lookup / admission ------------------------------------------------------------

    def get(self, uri: str, seq_no: int,
            needed: list[str]) -> Optional[dict[str, np.ndarray]]:
        """Return the record's columns if all ``needed`` ones are cached."""
        self.stats.lookups += 1
        entry = self._entries.get((uri, seq_no))
        if entry is None or any(col not in entry.columns for col in needed):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        entry.hits += 1
        if self.policy == "lru":
            self._entries.move_to_end((uri, seq_no))
        return {col: entry.columns[col] for col in needed}

    def put(self, uri: str, seq_no: int, mtime_ns: int,
            columns: dict[str, np.ndarray],
            *, cost_estimate: float = 1.0) -> bool:
        """Admit (or widen) one record's transformed columns.

        Widening merges the new columns over the cached ones.  If the
        widened entry would exceed the whole budget, the admission is
        rejected and the *previously cached entry stays intact* — an
        over-budget widening must not lose columns that were already paid
        for.
        """
        key = (uri, seq_no)
        existing = self._entries.get(key)
        if existing is not None:
            merged = dict(existing.columns)
            merged.update(columns)
            columns = merged
        nbytes = sum(arr.nbytes for arr in columns.values())
        if nbytes > self.budget_bytes:
            return False
        if existing is not None:
            self._bytes -= existing.nbytes
            self.stats.widenings += 1
            del self._entries[key]
        self._entries[key] = CacheEntry(
            columns=columns,
            mtime_ns=mtime_ns,
            nbytes=nbytes,
            admitted_seq=next(self._admission_counter),
            cost_estimate=cost_estimate,
        )
        self._file_mtime[uri] = mtime_ns
        self._by_uri.setdefault(uri, set()).add(seq_no)
        self._bytes += nbytes
        self.stats.admissions += 1
        self.epoch += 1
        self._evict_to_budget()
        return True

    def _evict_to_budget(self) -> None:
        while self._bytes > self.budget_bytes and self._entries:
            victim = self._pick_victim()
            entry = self._entries.pop(victim)
            self._drop_from_uri_index(victim)
            self._bytes -= entry.nbytes
            self.stats.evictions += 1
            self.epoch += 1

    def _drop_from_uri_index(self, key: tuple[str, int]) -> None:
        uri, seq_no = key
        seqs = self._by_uri.get(uri)
        if seqs is not None:
            seqs.discard(seq_no)
            if not seqs:
                del self._by_uri[uri]

    def _pick_victim(self) -> tuple[str, int]:
        if self.policy in ("lru", "fifo"):
            return next(iter(self._entries))
        return min(
            self._entries,
            key=lambda key: (
                self._entries[key].cost_estimate
                / max(self._entries[key].nbytes, 1)
            ),
        )

    # -- introspection (demo capability 7) ------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def cached_seq_nos(self, uri: str) -> list[int]:
        return sorted(self._by_uri.get(uri, ()))

    def contents(self) -> list[tuple[str, int, int, int]]:
        """(uri, seq_no, bytes, hits) per entry, in eviction order."""
        return [
            (uri, seq, entry.nbytes, entry.hits)
            for (uri, seq), entry in self._entries.items()
        ]

    # -- persistence (storage-engine warm starts) -----------------------------------

    def export_entries(self) -> list[
        tuple[str, int, int, float, dict[str, np.ndarray]]
    ]:
        """Snapshot every entry as ``(uri, seq, mtime_ns, cost, columns)``.

        Eviction order is preserved so a restore replays admissions in
        the same order and reproduces the LRU/FIFO state.
        """
        return [
            (uri, seq_no, entry.mtime_ns, entry.cost_estimate,
             dict(entry.columns))
            for (uri, seq_no), entry in self._entries.items()
        ]

    def import_entries(
        self,
        entries: list[tuple[str, int, int, float, dict[str, np.ndarray]]],
    ) -> int:
        """Re-admit snapshot entries (budget and policy still apply)."""
        restored = 0
        for uri, seq_no, mtime_ns, cost, columns in entries:
            if self.put(uri, seq_no, mtime_ns, columns,
                        cost_estimate=cost):
                restored += 1
        # Restores are bookkeeping, not workload: keep admission counts
        # meaningful for the eviction ablation.
        self.stats.admissions -= restored
        self.stats.restored += restored
        return restored

    def spill(self, store) -> int:
        """Persist the cache into a table store's snapshot area.

        ``store`` is a :class:`~repro.storage.store.TableStore` or a
        directory path.  Returns the number of entries written.
        """
        store = _as_store(store)
        return store.save_cache_snapshot(self.export_entries())

    def restore(self, store) -> int:
        """Warm-start from a snapshot written by :meth:`spill`."""
        store = _as_store(store)
        return self.import_entries(store.load_cache_snapshot())

    def render(self, max_rows: int = 20) -> str:
        lines = [
            f"extraction cache: {len(self)} entries, "
            f"{self._bytes} / {self.budget_bytes} bytes ({self.policy})"
        ]
        for uri, seq, nbytes, hits in self.contents()[:max_rows]:
            lines.append(f"  {uri} seq={seq} bytes={nbytes} hits={hits}")
        if len(self) > max_rows:
            lines.append(f"  ... {len(self) - max_rows} more entries")
        return "\n".join(lines)


def _as_store(store):
    """Accept a TableStore or a directory path (lazy import: storage
    depends on the db layer, never the reverse of this module)."""
    from repro.storage.store import TableStore

    if isinstance(store, TableStore):
        return store
    return TableStore(store)
