"""Access-heat tracking: the adaptive middle path between lazy and eager.

The paper's crossover (our E7/E13 benches) says lazy ETL wins the first
query while eager ETL wins repeated scans.  "On-Demand Big Data
Integration" (PAPERS.md) argues the operator should not have to choose:
track what is *actually* queried and materialize only that.  This module
is the tracking half — :class:`AccessHeatTracker` records, per extraction
unit ``(file uri, record seq_no)``, how often queries touched it and
through which data columns, with exponential decay so yesterday's hot
channel cools off on its own.

Units are the extraction grain the rest of the system already uses: one
mSEED record at ``RECORD`` granularity, the whole-file pseudo record at
coarser granularities.  The tracker is fed from
:meth:`~repro.etl.lazy.LazyDataBinding.fetch` — every cache hit, fresh
extraction and promoted-segment read lands here — and read by the
:class:`~repro.service.promoter.Promoter`, which materializes the hottest
units into :class:`~repro.storage.store.TableStore` segments and demotes
the coldest when over budget.

Thread safety: one tracker is shared by every worker of a
:class:`~repro.service.service.WarehouseService` plus the background
promoter, so all public methods take the internal lock.  Touches are
O(records per file per query) dict updates — noise next to extraction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

HALF_LIFE_S = 300.0
"""Default decay half-life: a unit untouched for 5 minutes has half the
heat it had, untouched for an hour it is stone cold."""

KINDS = ("extract", "cache_hit", "eager_hit")
"""How a touched unit was served: fresh extraction, extraction-cache
hit, or a read from a promoted (eagerly materialized) segment."""

PRUNE_EVERY_TOUCHES = 2048
"""Cold units are swept every this many touches, so a long-running
service tracks the *active* set, not every unit ever touched."""

PRUNE_BELOW_SCORE = 1 / 64
"""Decayed score under which a unit is considered stone cold: six
half-lives without a touch (30 min at the default half-life)."""

EXPORT_MAX_UNITS = 4096
"""Checkpoint snapshots keep only the hottest units — heat state rides
inside the store manifest, which every commit re-serialises."""


@dataclass
class HeatUnit:
    """Mutable per-(uri, seq_no) heat state."""

    score: float = 0.0
    last_touch: float = 0.0       # wall-clock (persists across processes)
    columns: set = field(default_factory=set)
    nbytes: int = 0               # last observed extracted payload size
    extractions: int = 0
    cache_hits: int = 0
    eager_hits: int = 0

    def decayed(self, now: float, half_life_s: float) -> float:
        """The score as of ``now`` (stored score is as of last_touch)."""
        if self.score == 0.0:
            return 0.0
        age = max(now - self.last_touch, 0.0)
        return self.score * 0.5 ** (age / half_life_s)


@dataclass
class HeatStats:
    touches: int = 0
    forgotten_files: int = 0
    restored_units: int = 0
    pruned_units: int = 0


class AccessHeatTracker:
    """Per-unit access frequency with exponential decay.

    ``clock`` is injectable for deterministic tests; it must return
    seconds as a float and be comparable across process restarts (the
    default ``time.time`` is — tracker state survives
    ``checkpoint()`` → ``warm_start()``).
    """

    def __init__(self, *, half_life_s: float = HALF_LIFE_S,
                 clock: Callable[[], float] = time.time) -> None:
        if half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        self.half_life_s = half_life_s
        self.clock = clock
        self._units: dict[tuple[str, int], HeatUnit] = {}
        self._lock = threading.Lock()
        self._touches_since_prune = 0
        self.stats = HeatStats()

    # -- recording ---------------------------------------------------------------

    def touch(self, uri: str, seq_no: int, columns: Iterable[str],
              *, kind: str = "cache_hit", nbytes: int = 0,
              weight: float = 1.0) -> None:
        """Record one access to one unit (see :meth:`touch_units`)."""
        self.touch_units(uri, [seq_no], columns, kind=kind,
                         nbytes=nbytes, weight=weight)

    def touch_units(self, uri: str, seq_nos: Iterable[int],
                    columns: Iterable[str], *, kind: str = "cache_hit",
                    nbytes: int = 0, weight: float = 1.0) -> None:
        """Record one query's access to several units of one file.

        ``nbytes`` is the total payload across the units; it is split
        evenly as a per-unit size estimate (exact sizes do not matter —
        the promoter only needs the order of magnitude for budgeting).
        """
        if kind not in KINDS:
            raise ValueError(f"unknown access kind {kind!r}")
        seq_nos = list(seq_nos)
        if not seq_nos:
            return
        per_unit_bytes = nbytes // len(seq_nos)
        cols = set(columns)
        now = self.clock()
        with self._lock:
            for seq_no in seq_nos:
                unit = self._units.get((uri, seq_no))
                if unit is None:
                    unit = self._units[(uri, seq_no)] = HeatUnit()
                unit.score = unit.decayed(now, self.half_life_s) + weight
                unit.last_touch = now
                unit.columns |= cols
                if per_unit_bytes:
                    unit.nbytes = per_unit_bytes
                if kind == "extract":
                    unit.extractions += 1
                elif kind == "cache_hit":
                    unit.cache_hits += 1
                else:
                    unit.eager_hits += 1
            self.stats.touches += len(seq_nos)
            self._touches_since_prune += len(seq_nos)
            if self._touches_since_prune >= PRUNE_EVERY_TOUCHES:
                self._touches_since_prune = 0
                self._prune_locked(now, PRUNE_BELOW_SCORE)

    def prune(self, min_score: float = PRUNE_BELOW_SCORE) -> int:
        """Drop units whose decayed score fell below ``min_score``.

        Runs automatically every :data:`PRUNE_EVERY_TOUCHES` touches, so
        the tracked population follows the active working set instead of
        growing without bound over a long-running service.
        """
        with self._lock:
            return self._prune_locked(self.clock(), min_score)

    def _prune_locked(self, now: float, min_score: float) -> int:
        doomed = [
            key for key, unit in self._units.items()
            if unit.decayed(now, self.half_life_s) < min_score
        ]
        for key in doomed:
            del self._units[key]
        self.stats.pruned_units += len(doomed)
        return len(doomed)

    def forget_file(self, uri: str) -> int:
        """Drop every unit of a file (its record layout changed: seq_nos
        may mean different byte ranges now)."""
        with self._lock:
            doomed = [key for key in self._units if key[0] == uri]
            for key in doomed:
                del self._units[key]
            if doomed:
                self.stats.forgotten_files += 1
            return len(doomed)

    # -- reading -----------------------------------------------------------------

    def score_of(self, uri: str, seq_no: int,
                 now: Optional[float] = None) -> float:
        now = self.clock() if now is None else now
        with self._lock:
            unit = self._units.get((uri, seq_no))
            return 0.0 if unit is None else unit.decayed(now, self.half_life_s)

    def snapshot(self, now: Optional[float] = None
                 ) -> list[tuple[str, int, float, HeatUnit]]:
        """``(uri, seq_no, decayed_score, unit)`` hottest-first."""
        now = self.clock() if now is None else now
        with self._lock:
            items = [
                (uri, seq_no, unit.decayed(now, self.half_life_s), unit)
                for (uri, seq_no), unit in self._units.items()
            ]
        items.sort(key=lambda item: (-item[2], item[0], item[1]))
        return items

    def hottest(self, limit: int, *, min_score: float = 0.0,
                exclude: Optional[set] = None
                ) -> list[tuple[str, int, float, HeatUnit]]:
        """The ``limit`` hottest units at or above ``min_score``."""
        exclude = exclude or set()
        picked = []
        for uri, seq_no, score, unit in self.snapshot():
            if score < min_score:
                break  # snapshot is sorted: everything after is colder
            if (uri, seq_no) in exclude:
                continue
            picked.append((uri, seq_no, score, unit))
            if len(picked) >= limit:
                break
        return picked

    def __len__(self) -> int:
        with self._lock:
            return len(self._units)

    # -- persistence (checkpoint / warm start) ------------------------------------

    def export_state(self, max_units: int = EXPORT_MAX_UNITS) -> dict:
        """JSON-safe snapshot for the store manifest's ``meta`` area.

        Capped at the ``max_units`` hottest units: the snapshot lives
        inside the manifest, which every later commit re-serialises, so
        it must stay proportional to the hot set, not history.
        """
        hottest = self.snapshot()[:max_units]
        return {
            "half_life_s": self.half_life_s,
            "units": [
                [uri, seq_no, unit.score, unit.last_touch,
                 sorted(unit.columns), unit.nbytes, unit.extractions,
                 unit.cache_hits, unit.eager_hits]
                for uri, seq_no, _score, unit in hottest
            ],
        }

    def import_state(self, state: Optional[dict]) -> int:
        """Merge a prior :meth:`export_state` snapshot (warm start).

        Existing units keep whichever side is hotter — a warm start into
        a tracker that already saw traffic must not erase live heat.
        """
        if not state:
            return 0
        now = self.clock()
        restored = 0
        with self._lock:
            for entry in state.get("units", ()):
                (uri, seq_no, score, last_touch, columns, nbytes,
                 extractions, cache_hits, eager_hits) = entry
                incoming = HeatUnit(
                    score=float(score), last_touch=float(last_touch),
                    columns=set(columns), nbytes=int(nbytes),
                    extractions=int(extractions), cache_hits=int(cache_hits),
                    eager_hits=int(eager_hits),
                )
                key = (str(uri), int(seq_no))
                existing = self._units.get(key)
                if existing is None or (
                    incoming.decayed(now, self.half_life_s)
                    > existing.decayed(now, self.half_life_s)
                ):
                    self._units[key] = incoming
                    restored += 1
            self.stats.restored_units += restored
        return restored

    def render(self, max_rows: int = 12) -> str:
        lines = [f"heat tracker: {len(self)} units, "
                 f"half-life {self.half_life_s:.0f}s"]
        for uri, seq_no, score, unit in self.snapshot()[:max_rows]:
            lines.append(
                f"  {uri} seq={seq_no} score={score:.2f} "
                f"extract={unit.extractions} cache={unit.cache_hits} "
                f"eager={unit.eager_hits}"
            )
        return "\n".join(lines)
