"""The mSEED source adapter: how seismic volumes populate the warehouse.

Implements the paper's schema derivation: "the normalized data warehouse
schema ... includes three tables, straightforwardly derived from the mSEED
format" — F per file, R per record, D per sample, with file URI and record
sequence number as the foreign-key identifiers.

The record-level transformations of §3.2 happen at the tail of extraction,
exactly as the paper places them: sample timestamps are materialised from
(record start, rate, index) and sample values widened to the warehouse
type.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.db.table import ColumnSpec
from repro.db.types import DataType
from repro.errors import ExtractionError
from repro.etl.framework import ExtractedRecords, SourceAdapter
from repro.etl.metadata import WHOLE_FILE_SEQ, FileMeta, RecordMeta
from repro.mseed.encodings import encoding_name
from repro.mseed.files import read_records_from, scan_file_headers
from repro.mseed.records import decode_header
from repro.mseed.repository import FileInfo, Repository
from repro.mseed.synthesize import parse_filename
from repro.util.timefmt import MICROS_PER_DAY, from_yday

_HEADER_PROBE_BYTES = 64


class MSeedAdapter(SourceAdapter):
    """Source adapter for Mini-SEED repositories."""

    def __init__(self, value_type: DataType = DataType.BIGINT) -> None:
        if value_type not in (DataType.BIGINT, DataType.DOUBLE):
            raise ExtractionError("sample_value must be BIGINT or DOUBLE")
        self.value_type = value_type

    # -- schema ------------------------------------------------------------------

    def file_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("dataquality", DataType.VARCHAR),
            ColumnSpec("network", DataType.VARCHAR),
            ColumnSpec("station", DataType.VARCHAR),
            ColumnSpec("location", DataType.VARCHAR),
            ColumnSpec("channel", DataType.VARCHAR),
            ColumnSpec("encoding", DataType.VARCHAR),
            ColumnSpec("record_length", DataType.BIGINT),
            ColumnSpec("n_records", DataType.BIGINT),
            ColumnSpec("start_time", DataType.TIMESTAMP),
            ColumnSpec("end_time", DataType.TIMESTAMP),
            ColumnSpec("sample_rate", DataType.DOUBLE),
            ColumnSpec("file_size", DataType.BIGINT),
            ColumnSpec("mtime_ns", DataType.BIGINT),
        ]

    def record_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("seq_no", DataType.BIGINT, not_null=True),
            ColumnSpec("start_time", DataType.TIMESTAMP),
            ColumnSpec("end_time", DataType.TIMESTAMP),
            ColumnSpec("frequency", DataType.DOUBLE),
            ColumnSpec("sample_count", DataType.BIGINT),
            ColumnSpec("timing_quality", DataType.BIGINT),
        ]

    def data_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("seq_no", DataType.BIGINT, not_null=True),
            ColumnSpec("sample_time", DataType.TIMESTAMP),
            ColumnSpec("sample_value", self.value_type),
        ]

    @property
    def key_columns(self) -> tuple[str, ...]:
        return ("file_location", "seq_no")

    @property
    def range_column(self) -> Optional[str]:
        return "sample_time"

    # -- harvesting ---------------------------------------------------------------

    def harvest_from_filename(self, info: FileInfo) -> Optional[FileMeta]:
        parsed = parse_filename(info.name)
        if parsed is None:
            return None
        start = from_yday(
            int(parsed["year"]), int(parsed["doy"]),
            hour=int(parsed["hhmm"][:2]), minute=int(parsed["hhmm"][2:]),
        )
        return FileMeta(
            uri=info.uri,
            size=info.size,
            mtime_ns=info.mtime_ns,
            network=parsed["network"],
            station=parsed["station"],
            location=parsed["location"],
            channel=parsed["channel"],
            start_time_us=start,
            # The name carries no duration: assume at most a day of data.
            end_time_us=start + MICROS_PER_DAY,
            exact_span=False,
        )

    def harvest_file(self, repo: Repository, info: FileInfo,
                     *, per_record: bool,
                     ) -> tuple[FileMeta, list[RecordMeta]]:
        if per_record:
            headers = scan_file_headers(repo.path_of(info.uri))
            if not headers:
                raise ExtractionError(f"{info.uri} contains no records")
            repo.record_read(info.uri, len(headers) * _HEADER_PROBE_BYTES)
            first = headers[0]
            meta = FileMeta(
                uri=info.uri,
                size=info.size,
                mtime_ns=info.mtime_ns,
                dataquality=first.quality,
                network=first.network,
                station=first.station,
                location=first.location,
                channel=first.channel,
                encoding=encoding_name(first.encoding),
                record_length=first.record_length,
                n_records=len(headers),
                start_time_us=min(h.start_time_us for h in headers),
                end_time_us=max(h.end_time_us for h in headers),
                sample_rate=first.sample_rate,
                exact_span=True,
            )
            records = [
                RecordMeta(
                    uri=info.uri,
                    seq_no=h.sequence_number,
                    start_time_us=h.start_time_us,
                    end_time_us=h.end_time_us,
                    frequency=h.sample_rate,
                    sample_count=h.sample_count,
                    timing_quality=h.timing_quality,
                )
                for h in headers
            ]
            return meta, records

        # FILE granularity: probe only the first record header.
        with open(repo.path_of(info.uri), "rb") as handle:
            head = handle.read(_HEADER_PROBE_BYTES)
        repo.record_read(info.uri, _HEADER_PROBE_BYTES)
        header = decode_header(head)
        n_records = max(info.size // header.record_length, 1)
        # Span estimate: assume every record resembles the first.
        per_record_span = header.end_time_us - header.start_time_us
        estimated_end = header.start_time_us + per_record_span * n_records
        meta = FileMeta(
            uri=info.uri,
            size=info.size,
            mtime_ns=info.mtime_ns,
            dataquality=header.quality,
            network=header.network,
            station=header.station,
            location=header.location,
            channel=header.channel,
            encoding=encoding_name(header.encoding),
            record_length=header.record_length,
            n_records=n_records,
            start_time_us=header.start_time_us,
            end_time_us=estimated_end,
            sample_rate=header.sample_rate,
            exact_span=False,
        )
        record = RecordMeta(
            uri=info.uri,
            seq_no=WHOLE_FILE_SEQ,
            start_time_us=meta.start_time_us,
            end_time_us=meta.end_time_us,
            frequency=meta.sample_rate,
            sample_count=header.sample_count * n_records,
        )
        return meta, [record]

    # -- row shaping ------------------------------------------------------------------

    def file_row(self, meta: FileMeta) -> dict[str, object]:
        return {
            "file_location": meta.uri,
            "dataquality": meta.dataquality,
            "network": meta.network,
            "station": meta.station,
            "location": meta.location,
            "channel": meta.channel,
            "encoding": meta.encoding,
            "record_length": meta.record_length,
            "n_records": meta.n_records,
            "start_time": meta.start_time_us,
            "end_time": meta.end_time_us,
            "sample_rate": meta.sample_rate,
            "file_size": meta.size,
            "mtime_ns": meta.mtime_ns,
        }

    def record_row(self, meta: RecordMeta) -> dict[str, object]:
        return {
            "file_location": meta.uri,
            "seq_no": meta.seq_no,
            "start_time": meta.start_time_us,
            "end_time": meta.end_time_us,
            "frequency": meta.frequency,
            "sample_count": meta.sample_count,
            "timing_quality": meta.timing_quality,
        }

    # -- extraction -------------------------------------------------------------------

    def extract(self, repo: Repository, uri: str,
                seq_nos: Optional[Sequence[int]],
                needed: Sequence[str]) -> ExtractedRecords:
        """Read, decompress and transform the requested records.

        This is the expensive step Lazy ETL defers; per §3.2, record- and
        value-level transformations (timestamp materialisation, type
        widening) run here, "at the end of the extraction phase".
        """
        whole_file = seq_nos is None or WHOLE_FILE_SEQ in set(seq_nos)
        wanted = None if whole_file else list(seq_nos)  # type: ignore[arg-type]
        with repo.open(uri) as handle:
            records = read_records_from(handle, wanted)
        if wanted is not None and len(records) != len(set(wanted)):
            found = {r.header.sequence_number for r in records}
            raise ExtractionError(
                f"{uri}: records {sorted(set(wanted) - found)} not found"
            )
        value_np = (np.int64 if self.value_type == DataType.BIGINT
                    else np.float64)
        per_record: list[dict[str, np.ndarray]] = []
        for record in records:
            columns: dict[str, np.ndarray] = {}
            if "sample_time" in needed:
                columns["sample_time"] = record.sample_times_us()
            if "sample_value" in needed:
                columns["sample_value"] = record.samples.astype(value_np)
            per_record.append(columns)

        if seq_nos is not None and whole_file:
            # Coarse metadata granularity labels the entire file as pseudo
            # record 0: merge everything into a single cacheable entry.
            merged = {
                name: np.concatenate([rec[name] for rec in per_record])
                for name in (per_record[0] if per_record else {})
            }
            return ExtractedRecords(uri=uri, seq_nos=[WHOLE_FILE_SEQ],
                                    per_record=[merged] if per_record else [])
        return ExtractedRecords(
            uri=uri,
            seq_nos=[r.header.sequence_number for r in records],
            per_record=per_record,
        )
