"""Metadata harvesting at three granularities.

The paper prefers eagerly loading metadata because it is "smaller in size
and cheaper to acquire than actual data ... even cheaper if metadata is
encoded in the filename".  The three :class:`Granularity` levels map that
cost spectrum (experiment E9 sweeps them):

* ``FILENAME`` — parse the file name, never open the file.  F is exact
  for stream identity, approximate for time span; R holds one pseudo
  record (seq_no 0 = "whole file").
* ``FILE`` — read the first record header only; adds exact sample rate,
  encoding and a good span estimate.  R still holds the pseudo record.
* ``RECORD`` — header-scan every record (the paper's setting): R is exact
  per record, enabling record-level extraction pruning.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MSeedError
from repro.etl.framework import SourceAdapter
from repro.mseed.repository import Repository
from repro.util.oplog import OperationLog

WHOLE_FILE_SEQ = 0
"""Sentinel seq_no meaning "the entire file" (coarse granularities)."""


class Granularity(enum.Enum):
    FILENAME = "filename"
    FILE = "file"
    RECORD = "record"


@dataclass
class FileMeta:
    """Canonical file-level metadata (one row of F)."""

    uri: str
    size: int
    mtime_ns: int
    dataquality: str = "D"
    network: str = ""
    station: str = ""
    location: str = ""
    channel: str = ""
    encoding: str = ""
    record_length: int = 0
    n_records: int = 0
    start_time_us: int = 0
    end_time_us: int = 0
    sample_rate: float = 0.0
    exact_span: bool = True


@dataclass
class RecordMeta:
    """Canonical record-level metadata (one row of R)."""

    uri: str
    seq_no: int
    start_time_us: int
    end_time_us: int
    frequency: float
    sample_count: int
    timing_quality: int = 0


@dataclass
class HarvestResult:
    """Everything initial loading produced, plus what it cost."""

    granularity: Granularity
    files: list[FileMeta] = field(default_factory=list)
    records: list[RecordMeta] = field(default_factory=list)
    files_opened: int = 0
    bytes_read: int = 0
    seconds: float = 0.0
    skipped: list[tuple[str, str]] = field(default_factory=list)


def harvest_repository(
    repo: Repository,
    adapter: SourceAdapter,
    granularity: Granularity = Granularity.RECORD,
    oplog: Optional[OperationLog] = None,
    *,
    strict: bool = False,
) -> HarvestResult:
    """Harvest metadata for every file in the repository.

    Real archives contain the occasional corrupt or foreign file; by
    default those are *skipped* (recorded in ``skipped`` and the oplog)
    so one bad volume cannot block bootstrapping a warehouse over
    millions of files.  ``strict=True`` raises instead.
    """
    started = time.perf_counter()
    result = HarvestResult(granularity=granularity)
    reads_before = repo.bytes_read
    for info in repo.list_files():
        try:
            if granularity is Granularity.FILENAME:
                meta = adapter.harvest_from_filename(info)
                if meta is None:
                    # Fall back to opening the header — a foreign file name.
                    meta, records = adapter.harvest_file(repo, info,
                                                         per_record=False)
                    result.files_opened += 1
                else:
                    records = [_pseudo_record(meta)]
            elif granularity is Granularity.FILE:
                meta, records = adapter.harvest_file(repo, info,
                                                     per_record=False)
                result.files_opened += 1
            else:
                meta, records = adapter.harvest_file(repo, info,
                                                     per_record=True)
                result.files_opened += 1
        except MSeedError as exc:
            if strict:
                raise
            result.skipped.append((info.uri, str(exc)))
            if oplog is not None:
                oplog.record("harvest", f"skipped corrupt file {info.uri}",
                             error=str(exc)[:80])
            continue
        result.files.append(meta)
        result.records.extend(records)
        if oplog is not None:
            oplog.record(
                "harvest", f"metadata from {info.uri}",
                granularity=granularity.value, records=len(records),
            )
    result.bytes_read = repo.bytes_read - reads_before
    result.seconds = time.perf_counter() - started
    return result


def _pseudo_record(meta: FileMeta) -> RecordMeta:
    """The whole-file pseudo record used below RECORD granularity."""
    return RecordMeta(
        uri=meta.uri,
        seq_no=WHOLE_FILE_SEQ,
        start_time_us=meta.start_time_us,
        end_time_us=meta.end_time_us,
        frequency=meta.sample_rate,
        sample_count=0,
    )


@dataclass
class RecordSpan:
    """Slim record descriptor kept in the in-memory index for pruning."""

    seq_no: int
    start_time_us: int
    end_time_us: int
    sample_count: int


class RecordIndex:
    """In-memory mirror of record metadata, used by lazy extraction.

    The run-time rewrite asks this index two questions: which records of a
    file overlap the query's time bounds, and what a file's full record
    list is.  It is built from the initial harvest and maintained by
    :class:`repro.etl.refresh.MetadataSync`.
    """

    def __init__(self) -> None:
        self._by_file: dict[str, list[RecordSpan]] = {}
        self._exact: dict[str, bool] = {}

    def load(self, result: HarvestResult) -> None:
        for record in result.records:
            self.add_record(record)
        for meta in result.files:
            self._exact[meta.uri] = (
                result.granularity is Granularity.RECORD
            )

    def add_record(self, record: RecordMeta) -> None:
        self._by_file.setdefault(record.uri, []).append(
            RecordSpan(
                seq_no=record.seq_no,
                start_time_us=record.start_time_us,
                end_time_us=record.end_time_us,
                sample_count=record.sample_count,
            )
        )

    def replace_file(self, uri: str, records: list[RecordMeta],
                     exact: bool) -> None:
        self._by_file[uri] = []
        for record in records:
            self.add_record(record)
        self._exact[uri] = exact

    def drop_file(self, uri: str) -> None:
        self._by_file.pop(uri, None)
        self._exact.pop(uri, None)

    def files(self) -> list[str]:
        return sorted(self._by_file)

    def spans(self, uri: str) -> list[RecordSpan]:
        return self._by_file.get(uri, [])

    def is_exact(self, uri: str) -> bool:
        return self._exact.get(uri, False)

    def prune(
        self, uri: str, seq_nos: list[int],
        bounds: tuple[Optional[int], Optional[int]],
    ) -> list[int]:
        """Drop records that cannot overlap the time bounds.

        A record with span ``[s, e]`` survives iff ``e >= lo and s <= hi``.
        Inexact (estimated) spans are never pruned away — correctness over
        savings.
        """
        lo, hi = bounds
        if lo is None and hi is None:
            return seq_nos
        if not self.is_exact(uri):
            return seq_nos
        spans = {span.seq_no: span for span in self.spans(uri)}
        kept = []
        for seq in seq_nos:
            span = spans.get(seq)
            if span is None:
                kept.append(seq)  # unknown record: do not prune
                continue
            if lo is not None and span.end_time_us < lo:
                continue
            if hi is not None and span.start_time_us > hi:
                continue
            kept.append(seq)
        return kept
