"""ETL framework abstractions.

The warehouse model follows the paper's normalised schema [12]: a
file-metadata table ``F``, a record-metadata table ``R`` and an
actual-data table ``D``, with ``(file_location)`` and
``(file_location, seq_no)`` as the identifying foreign keys.  A
:class:`SourceAdapter` teaches the ETL strategies how one file format
populates that model; :mod:`repro.etl.mseed_adapter` is the format the
paper demonstrates on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.db.table import ColumnSpec
from repro.mseed.repository import FileInfo, Repository

if TYPE_CHECKING:
    from repro.etl.metadata import FileMeta, RecordMeta


@dataclass
class ETLReport:
    """What an ingestion run cost — the numbers experiment E1 compares."""

    strategy: str = ""
    seconds: float = 0.0
    files_listed: int = 0
    files_opened: int = 0
    records_loaded: int = 0
    samples_loaded: int = 0
    bytes_read: int = 0

    def row(self) -> list[str]:
        from repro.util.human import format_bytes, format_duration

        return [
            self.strategy,
            format_duration(self.seconds),
            str(self.files_listed),
            str(self.files_opened),
            str(self.records_loaded),
            str(self.samples_loaded),
            format_bytes(self.bytes_read),
        ]


@dataclass
class ExtractedRecords:
    """Columnar output of extracting a set of records from one file.

    ``per_record`` aligns with ``seq_nos``: for each record, a dict of
    column name → numpy array of that record's rows.  Keeping per-record
    slices lets the extraction cache admit and reuse single records.
    """

    uri: str
    seq_nos: list[int]
    per_record: list[dict[str, np.ndarray]] = field(default_factory=list)

    def total_rows(self) -> int:
        if not self.per_record:
            return 0
        first_col = next(iter(self.per_record[0]))
        return sum(len(rec[first_col]) for rec in self.per_record)


class SourceAdapter(abc.ABC):
    """Format-specific logic plugged into the ETL strategies."""

    # -- schema ------------------------------------------------------------------

    @abc.abstractmethod
    def file_columns(self) -> list[ColumnSpec]:
        """Schema of the file-metadata table (F)."""

    @abc.abstractmethod
    def record_columns(self) -> list[ColumnSpec]:
        """Schema of the record-metadata table (R)."""

    @abc.abstractmethod
    def data_columns(self) -> list[ColumnSpec]:
        """Schema of the actual-data table (D)."""

    # -- metadata harvesting --------------------------------------------------------

    @abc.abstractmethod
    def harvest_from_filename(self, info: FileInfo) -> Optional["FileMeta"]:
        """File-level metadata from the name alone (§3: "even cheaper ...
        the file does not even need to be read"); ``None`` if the name is
        not self-describing."""

    @abc.abstractmethod
    def harvest_file(self, repo: Repository, info: FileInfo,
                     *, per_record: bool,
                     ) -> tuple["FileMeta", list["RecordMeta"]]:
        """Header-only harvest.  ``per_record=False`` may return a single
        whole-file pseudo-record (coarse granularity)."""

    # -- row shaping ------------------------------------------------------------------

    @abc.abstractmethod
    def file_row(self, meta: "FileMeta") -> dict[str, object]:
        """A row of F for one file."""

    @abc.abstractmethod
    def record_row(self, meta: "RecordMeta") -> dict[str, object]:
        """A row of R for one record."""

    # -- actual data -------------------------------------------------------------------

    @abc.abstractmethod
    def extract(self, repo: Repository, uri: str,
                seq_nos: Optional[Sequence[int]],
                needed: Sequence[str]) -> ExtractedRecords:
        """Extract + record-level transform of the given records.

        ``seq_nos=None`` (or containing the 0 sentinel) means every record
        in the file.  ``needed`` names the D columns to materialise — the
        engine's column pruning reaches all the way down to here.
        """

    @property
    @abc.abstractmethod
    def key_columns(self) -> tuple[str, ...]:
        """D columns joining to R: ``(file_location, seq_no)``."""

    @property
    @abc.abstractmethod
    def range_column(self) -> Optional[str]:
        """The D column usable for record pruning (``sample_time``)."""
