"""A second source format: directories of CSV sensor logs.

The Lazy ETL core is format-agnostic — everything format-specific lives
behind :class:`~repro.etl.framework.SourceAdapter`.  This adapter proves
it with a completely different source: plain-text CSV files named
``SENSOR_CHANNEL_YYYYMMDD.csv`` containing ``timestamp_us,value`` lines.

CSV has no record structure, so "records" are fixed-size **line blocks**
(default 1000 rows).  Harvesting a file reads it once and remembers each
block's *byte offset* — a positional map in the spirit of NoDB — so lazy
extraction later parses only the byte ranges of the blocks a query needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.db.table import ColumnSpec
from repro.db.types import DataType
from repro.errors import ExtractionError
from repro.etl.framework import ExtractedRecords, SourceAdapter
from repro.etl.metadata import WHOLE_FILE_SEQ, FileMeta, RecordMeta
from repro.mseed.repository import FileInfo, Repository
from repro.util.timefmt import MICROS_PER_DAY, from_ymd


@dataclass(frozen=True)
class _BlockSpan:
    seq_no: int
    byte_offset: int
    byte_length: int
    start_time_us: int
    end_time_us: int
    rows: int


def write_csv_file(path: str | os.PathLike, *, sensor: str, channel: str,
                   start_time_us: int, interval_us: int,
                   values: Sequence[float]) -> None:
    """Write one sensor log (helper for tests/examples)."""
    with open(path, "w") as handle:
        handle.write("timestamp_us,value\n")
        for index, value in enumerate(values):
            stamp = start_time_us + index * interval_us
            handle.write(f"{stamp},{float(value)!r}\n")


def csv_filename(sensor: str, channel: str, start_time_us: int) -> str:
    from repro.util.timefmt import to_datetime

    moment = to_datetime(start_time_us)
    return f"{sensor}_{channel}_{moment:%Y%m%d}.csv"


class CsvDirAdapter(SourceAdapter):
    """Source adapter for CSV sensor-log directories."""

    def __init__(self, block_rows: int = 1000) -> None:
        if block_rows < 1:
            raise ExtractionError("block_rows must be positive")
        self.block_rows = block_rows
        # uri -> block spans, built during harvest (the positional map).
        self._spans: dict[str, list[_BlockSpan]] = {}

    # -- schema ------------------------------------------------------------------

    def file_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("dataquality", DataType.VARCHAR),
            ColumnSpec("network", DataType.VARCHAR),
            ColumnSpec("station", DataType.VARCHAR),
            ColumnSpec("location", DataType.VARCHAR),
            ColumnSpec("channel", DataType.VARCHAR),
            ColumnSpec("encoding", DataType.VARCHAR),
            ColumnSpec("record_length", DataType.BIGINT),
            ColumnSpec("n_records", DataType.BIGINT),
            ColumnSpec("start_time", DataType.TIMESTAMP),
            ColumnSpec("end_time", DataType.TIMESTAMP),
            ColumnSpec("sample_rate", DataType.DOUBLE),
            ColumnSpec("file_size", DataType.BIGINT),
            ColumnSpec("mtime_ns", DataType.BIGINT),
        ]

    def record_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("seq_no", DataType.BIGINT, not_null=True),
            ColumnSpec("start_time", DataType.TIMESTAMP),
            ColumnSpec("end_time", DataType.TIMESTAMP),
            ColumnSpec("frequency", DataType.DOUBLE),
            ColumnSpec("sample_count", DataType.BIGINT),
            ColumnSpec("timing_quality", DataType.BIGINT),
        ]

    def data_columns(self) -> list[ColumnSpec]:
        return [
            ColumnSpec("file_location", DataType.VARCHAR, not_null=True),
            ColumnSpec("seq_no", DataType.BIGINT, not_null=True),
            ColumnSpec("sample_time", DataType.TIMESTAMP),
            ColumnSpec("sample_value", DataType.DOUBLE),
        ]

    @property
    def key_columns(self) -> tuple[str, ...]:
        return ("file_location", "seq_no")

    @property
    def range_column(self) -> Optional[str]:
        return "sample_time"

    # -- harvesting ---------------------------------------------------------------

    def harvest_from_filename(self, info: FileInfo) -> Optional[FileMeta]:
        base = info.name
        if not base.endswith(".csv"):
            return None
        parts = base[:-4].split("_")
        if len(parts) != 3 or len(parts[2]) != 8 or not parts[2].isdigit():
            return None
        sensor, channel, day = parts
        start = from_ymd(int(day[:4]), int(day[4:6]), int(day[6:8]))
        return FileMeta(
            uri=info.uri, size=info.size, mtime_ns=info.mtime_ns,
            network="CSV", station=sensor, location="", channel=channel,
            encoding="CSV", start_time_us=start,
            end_time_us=start + MICROS_PER_DAY, exact_span=False,
        )

    def _scan_blocks(self, repo: Repository, info: FileInfo
                     ) -> tuple[list[_BlockSpan], int, int]:
        """One pass over the file building the positional block map."""
        spans: list[_BlockSpan] = []
        with repo.open(info.uri) as handle:
            header = handle.readline()
            if not header.startswith(b"timestamp_us"):
                raise ExtractionError(f"{info.uri}: not a sensor CSV")
            offset = handle.tell()
            block_start_offset = offset
            rows = 0
            first_us = last_us = 0
            block_first_us = 0
            seq = 1
            total_rows = 0
            for line in handle:
                stamp = int(line.split(b",", 1)[0])
                if rows == 0:
                    block_first_us = stamp
                if total_rows == 0:
                    first_us = stamp
                last_us = stamp
                rows += 1
                total_rows += 1
                offset += len(line)
                if rows == self.block_rows:
                    spans.append(_BlockSpan(
                        seq_no=seq, byte_offset=block_start_offset,
                        byte_length=offset - block_start_offset,
                        start_time_us=block_first_us, end_time_us=stamp,
                        rows=rows,
                    ))
                    seq += 1
                    rows = 0
                    block_start_offset = offset
            if rows:
                spans.append(_BlockSpan(
                    seq_no=seq, byte_offset=block_start_offset,
                    byte_length=offset - block_start_offset,
                    start_time_us=block_first_us, end_time_us=last_us,
                    rows=rows,
                ))
        if not spans:
            raise ExtractionError(f"{info.uri}: no data rows")
        return spans, first_us, last_us

    def harvest_file(self, repo: Repository, info: FileInfo,
                     *, per_record: bool,
                     ) -> tuple[FileMeta, list[RecordMeta]]:
        spans, first_us, last_us = self._scan_blocks(repo, info)
        self._spans[info.uri] = spans
        named = self.harvest_from_filename(info)
        sensor = named.station if named else info.name
        channel = named.channel if named else ""
        total_rows = sum(s.rows for s in spans)
        rate = 0.0
        if total_rows > 1 and last_us > first_us:
            rate = (total_rows - 1) * 1e6 / (last_us - first_us)
        meta = FileMeta(
            uri=info.uri, size=info.size, mtime_ns=info.mtime_ns,
            network="CSV", station=sensor, location="", channel=channel,
            encoding="CSV", record_length=0, n_records=len(spans),
            start_time_us=first_us, end_time_us=last_us,
            sample_rate=rate, exact_span=True,
        )
        if per_record:
            records = [
                RecordMeta(uri=info.uri, seq_no=s.seq_no,
                           start_time_us=s.start_time_us,
                           end_time_us=s.end_time_us, frequency=rate,
                           sample_count=s.rows)
                for s in spans
            ]
        else:
            records = [RecordMeta(uri=info.uri, seq_no=WHOLE_FILE_SEQ,
                                  start_time_us=first_us,
                                  end_time_us=last_us, frequency=rate,
                                  sample_count=total_rows)]
        return meta, records

    # -- row shaping ------------------------------------------------------------------

    def file_row(self, meta: FileMeta) -> dict[str, object]:
        return {
            "file_location": meta.uri, "dataquality": meta.dataquality,
            "network": meta.network, "station": meta.station,
            "location": meta.location, "channel": meta.channel,
            "encoding": meta.encoding, "record_length": meta.record_length,
            "n_records": meta.n_records, "start_time": meta.start_time_us,
            "end_time": meta.end_time_us, "sample_rate": meta.sample_rate,
            "file_size": meta.size, "mtime_ns": meta.mtime_ns,
        }

    def record_row(self, meta: RecordMeta) -> dict[str, object]:
        return {
            "file_location": meta.uri, "seq_no": meta.seq_no,
            "start_time": meta.start_time_us, "end_time": meta.end_time_us,
            "frequency": meta.frequency, "sample_count": meta.sample_count,
            "timing_quality": meta.timing_quality,
        }

    # -- extraction -------------------------------------------------------------------

    def _parse_block(self, blob: bytes, needed: Sequence[str]
                     ) -> dict[str, np.ndarray]:
        lines = blob.splitlines()
        columns: dict[str, np.ndarray] = {}
        if "sample_time" in needed:
            columns["sample_time"] = np.fromiter(
                (int(line.split(b",", 1)[0]) for line in lines),
                dtype=np.int64, count=len(lines),
            )
        if "sample_value" in needed:
            columns["sample_value"] = np.fromiter(
                (float(line.rsplit(b",", 1)[1]) for line in lines),
                dtype=np.float64, count=len(lines),
            )
        if not columns:
            columns["sample_value"] = np.zeros(len(lines))
        return columns

    def extract(self, repo: Repository, uri: str,
                seq_nos: Optional[Sequence[int]],
                needed: Sequence[str]) -> ExtractedRecords:
        spans = self._spans.get(uri)
        if spans is None:
            # Extraction before harvest (or after a restart): rebuild the
            # positional map first.
            info = repo.stat(uri)
            spans, _first, _last = self._scan_blocks(repo, info)
            self._spans[uri] = spans
        whole_file = seq_nos is None or WHOLE_FILE_SEQ in set(seq_nos)
        wanted = (spans if whole_file
                  else [s for s in spans if s.seq_no in set(seq_nos)])
        if not whole_file and len(wanted) != len(set(seq_nos)):
            missing = set(seq_nos) - {s.seq_no for s in wanted}
            raise ExtractionError(f"{uri}: blocks {sorted(missing)} not found")
        path = repo.path_of(uri)
        out = ExtractedRecords(uri=uri, seq_nos=[])
        with open(path, "rb") as handle:
            nbytes = 0
            for span in wanted:
                handle.seek(span.byte_offset)
                blob = handle.read(span.byte_length)
                nbytes += span.byte_length
                out.seq_nos.append(
                    WHOLE_FILE_SEQ if (whole_file and seq_nos is not None)
                    else span.seq_no
                )
                out.per_record.append(self._parse_block(blob, needed))
        repo.record_read(uri, nbytes)
        if whole_file and seq_nos is not None:
            merged = {
                name: np.concatenate([rec[name] for rec in out.per_record])
                for name in out.per_record[0]
            }
            return ExtractedRecords(uri=uri, seq_nos=[WHOLE_FILE_SEQ],
                                    per_record=[merged])
        return out
