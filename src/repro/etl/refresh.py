"""Repository refresh: incremental metadata sync and eager re-loading.

The paper claims Lazy ETL "makes updating and extending a warehouse with
modified and additional files more efficient" (§1).  Two halves implement
that:

* query-time staleness handling lives in the extraction cache
  (:meth:`repro.etl.cache.ExtractionCache.validate_file`) — updated files
  are re-extracted transparently "when the data warehouse is queried";
* :class:`MetadataSync` here keeps the *metadata* tables aligned with the
  repository: new files gain F/R rows, modified files are re-harvested,
  vanished files are dropped.  Only changed files are touched.

For the eager baseline, :class:`EagerRefresh` must additionally re-extract
every changed file's actual data — the cost experiment E6 measures.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from repro.errors import FileMissingError, MSeedError
from repro.etl.eager import EagerETL
from repro.etl.lazy import LazyETL, _columnar
from repro.etl.metadata import Granularity

logger = logging.getLogger("repro.etl.refresh")


@dataclass
class SyncReport:
    """What one refresh pass did and cost."""

    seconds: float = 0.0
    added: list[str] = field(default_factory=list)
    updated: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    samples_reloaded: int = 0

    @property
    def changed(self) -> int:
        return len(self.added) + len(self.updated) + len(self.removed)


class MetadataSync:
    """Incremental metadata refresh for a lazy warehouse."""

    def __init__(self, lazy: LazyETL) -> None:
        self.lazy = lazy

    def _known_mtimes(self) -> dict[str, int]:
        result = self.lazy.db.query(
            f"SELECT file_location, mtime_ns FROM {self.lazy.files_table}"
        )
        return {uri: mtime for uri, mtime in result.rows()}

    def _harvest_or_none(self, info):
        """Harvest one file, or ``None`` if it vanished since the scan.

        ``sync`` lists the repository and then opens each changed file; a
        file deleted in that window (live archives do this constantly)
        must degrade to "removed", not crash the whole sync pass.
        """
        try:
            return self.lazy.harvest_single(info)
        except (FileMissingError, FileNotFoundError) as exc:
            logger.warning("file %s vanished during sync: %s",
                           info.uri, exc)
            self.lazy.db.oplog.record(
                "refresh", f"file {info.uri} vanished during sync",
                error=str(exc)[:80],
            )
            return None
        except MSeedError as exc:
            # Torn mid-rewrite content: treat like a vanished file; the
            # next sync will pick the file up once it is stable again.
            logger.warning("file %s unreadable during sync "
                           "(torn rewrite?): %s", info.uri, exc)
            self.lazy.db.oplog.record(
                "refresh", f"file {info.uri} unreadable during sync",
                error=str(exc)[:80],
            )
            return None

    def sync(self) -> SyncReport:
        """One incremental pass; touches only changed files."""
        started = time.perf_counter()
        report = SyncReport()
        known = self._known_mtimes()
        current = {info.uri: info for info in self.lazy.repo.list_files()}

        file_rows: list[dict] = []
        record_rows: list[dict] = []
        for uri, info in current.items():
            if uri not in known:
                rows = self._harvest_or_none(info)
                if rows is None:
                    # Vanished between the scan and the harvest: never
                    # entered the warehouse, nothing to roll back.
                    continue
                file_rows.extend(rows[0])
                record_rows.extend(rows[1])
                report.added.append(uri)
            elif known[uri] != info.mtime_ns:
                self.lazy.delete_file_metadata(uri)
                self.lazy.cache.invalidate_file(uri)
                rows = self._harvest_or_none(info)
                if rows is None:
                    # Vanished mid-sync: the metadata is already deleted,
                    # so finish the removal instead of re-adding it.
                    self.lazy.index.drop_file(uri)
                    report.removed.append(uri)
                    continue
                file_rows.extend(rows[0])
                record_rows.extend(rows[1])
                report.updated.append(uri)
        for uri in set(known) - set(current):
            self.lazy.delete_file_metadata(uri)
            self.lazy.cache.invalidate_file(uri)
            self.lazy.index.drop_file(uri)
            report.removed.append(uri)

        if file_rows:
            self.lazy.db.bulk_insert(
                (self.lazy.schema, "files"), _columnar(file_rows),
                enforce_keys=True,
            )
        if record_rows:
            self.lazy.db.bulk_insert(
                (self.lazy.schema, "records"), _columnar(record_rows),
                enforce_keys=True,
            )
        report.seconds = time.perf_counter() - started
        self.lazy.db.oplog.record(
            "refresh", "lazy metadata sync",
            added=len(report.added), updated=len(report.updated),
            removed=len(report.removed),
            seconds=round(report.seconds, 4),
        )
        return report


class EagerRefresh:
    """Refresh for the eager baseline: changed files re-extract fully."""

    def __init__(self, eager: EagerETL) -> None:
        self.eager = eager
        # Reuse the metadata diffing by delegating to a sync over the same
        # tables; the eager pipeline shares the lazy DDL object.
        self._meta_sync = MetadataSync(eager._ddl)

    def refresh(self) -> SyncReport:
        """Metadata sync plus full re-extraction of changed files' data."""
        started = time.perf_counter()
        report = self._meta_sync.sync()
        for uri in report.updated + report.removed:
            self.eager.delete_file_data(uri)
        for uri in report.added + report.updated:
            report.samples_reloaded += self.eager.load_file_data(uri)
        report.seconds = time.perf_counter() - started
        self.eager.db.oplog.record(
            "refresh", "eager refresh",
            changed=report.changed, samples=report.samples_reloaded,
            seconds=round(report.seconds, 4),
        )
        return report
