"""Lazy ETL: metadata-only initial loading + query-time extraction.

:class:`LazyETL` performs the paper's initial loading — only metadata goes
into the warehouse, the actual-data table stays **virtual** — and registers
a :class:`LazyDataBinding` with the engine.  At query time the engine's
run-time rewriting operator calls :meth:`LazyDataBinding.fetch`, which
plays §3.1-§3.3 out in order:

1. *identify* — deduplicate the (file, record) pairs the metadata plan
   selected and prune records outside the query's time bounds using the
   record index;
2. *refresh check* — per file, compare the repository mtime with the cache
   admission mtime and drop stale entries (§3.3's lazy refresh);
3. *cache fetch or extract* — per record, either reuse the cached
   transformed columns (the best case: "no ETL process needs to be
   performed") or decompress just the missing records and run the
   record-level transforms;
4. *load* — admit freshly extracted records to the bounded LRU cache.

Every step appends to the run-time ``trace``, which is what the demo GUI
panels (4)-(7) display.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.db.column import Column
from repro.db.exec.engine import Database
from repro.db.table import TableSchema, ForeignKeySpec
from repro.errors import ExtractionError
from repro.etl.cache import ExtractionCache
from repro.etl.framework import ETLReport, SourceAdapter
from repro.etl.heat import AccessHeatTracker
from repro.etl.metadata import (
    Granularity,
    HarvestResult,
    RecordIndex,
    RecordMeta,
    WHOLE_FILE_SEQ,
    harvest_repository,
)
from repro.mseed.repository import Repository
from repro.util.oplog import OperationLog

logger = logging.getLogger("repro.etl.lazy")


class LazyDataBinding:
    """The engine-facing half of lazy extraction (a LazyTableBinding).

    ``metadata_refresh`` is invoked when query-time staleness detection
    finds a file whose content changed: the hook re-harvests that file's
    metadata so the record index (and the F/R tables) match the new
    layout before extraction proceeds — "refreshments are handled ...
    when the data warehouse is queried" (§3).

    Concurrency hooks (installed by
    :class:`~repro.service.service.WarehouseService`, both ``None`` in
    single-threaded use, where they add zero overhead):

    * ``coalescer`` — a single-flight table; when set, concurrent
      sessions needing the same (file, record) ranges extract them
      exactly once and share the result;
    * ``extract_pool`` — a shared worker pool; when set, one query's
      per-file extraction work fans out across workers.

    Per-file staleness handling is serialised through the cache's stripe
    locks, and metadata refreshes additionally through a global refresh
    lock (metadata-table DML is not concurrency-safe by design — updates
    to the repository under live traffic are the rare event, queries are
    the common one).
    """

    def __init__(self, repo: Repository, adapter: SourceAdapter,
                 index: RecordIndex, cache: ExtractionCache,
                 oplog: OperationLog,
                 metadata_refresh=None, heat=None) -> None:
        self.repo = repo
        self.adapter = adapter
        self.index = index
        self.cache = cache
        self.oplog = oplog
        self.metadata_refresh = metadata_refresh
        # Adaptive promotion hooks: an AccessHeatTracker observing every
        # served unit, and (when storage is attached) the PromotedStore
        # consulted before the extraction cache.  Both optional; None
        # keeps the classic pure-lazy behaviour.
        self.heat = heat
        self.promoted = None
        self._data_specs = {spec.name: spec for spec in adapter.data_columns()}
        # When a query needs no data column at all (e.g. COUNT(*)), one is
        # still extracted so row multiplicity is exact at any granularity.
        self._count_column = next(
            name for name in self._data_specs
            if name not in adapter.key_columns
        )
        # Concurrency hooks (see class docstring).
        self.coalescer = None
        self.extract_pool = None
        # Sharded execution hook: when set (by SeismicWarehouse.
        # ensure_sharding), raw extraction is routed to the shard worker
        # that owns the file instead of decoding in this process.  Same
        # signature/return as ``adapter.extract`` minus the repo handle;
        # everything around it — cache admission, staleness, coalescing,
        # tracing — still runs here, unchanged.
        self.remote_extractor = None
        self.wait_timeout_s = 30.0
        self._refresh_lock = threading.RLock()
        # Observability hook: an ExtractionInstruments bundle (installed
        # by the warehouse); None keeps the hot path free of metric work.
        self.metrics = None

    # -- LazyTableBinding protocol ------------------------------------------------

    @property
    def key_columns(self) -> tuple[str, ...]:
        return self.adapter.key_columns

    @property
    def range_column(self) -> Optional[str]:
        return self.adapter.range_column

    @property
    def cache_epoch(self) -> int:
        return self.cache.epoch

    def fetch(
        self,
        keys: dict[str, np.ndarray],
        needed: list[str],
        time_bounds: tuple[Optional[int], Optional[int]],
        trace: list[dict],
    ) -> dict[str, Column]:
        """Extract/transform/load exactly the rows the metadata selected."""
        uri_key, seq_key = self.key_columns
        uris = keys[uri_key]
        seqs = keys[seq_key].astype(np.int64)

        per_file: dict[str, list[int]] = {}
        seen: set[tuple[str, int]] = set()
        for uri, seq in zip(uris, seqs):
            pair = (str(uri), int(seq))
            if pair not in seen:
                seen.add(pair)
                per_file.setdefault(pair[0], []).append(pair[1])

        data_cols = [n for n in needed if n not in self.key_columns]
        uris = sorted(per_file)
        pieces: list[tuple[str, int, dict[str, np.ndarray], int]] = []
        if self.extract_pool is not None and len(uris) > 1:
            # Fan this query's per-file work across the shared pool.  Each
            # file gets a private trace list, merged back in file order so
            # the trace (and the assembled output) stay deterministic.
            local_traces: list[list[dict]] = [[] for _ in uris]
            results = self.extract_pool.map_ordered(
                lambda pair: self._fetch_file(
                    pair[1], sorted(per_file[pair[1]]), data_cols,
                    time_bounds, local_traces[pair[0]],
                ),
                list(enumerate(uris)),
            )
            for local in local_traces:
                trace.extend(local)
            for file_pieces in results:
                pieces.extend(file_pieces)
        else:
            for uri in uris:
                pieces.extend(
                    self._fetch_file(uri, sorted(per_file[uri]), data_cols,
                                     time_bounds, trace)
                )
        return self._assemble(pieces, needed, data_cols)

    def scan_all(self, needed: list[str],
                 trace: list[dict]) -> dict[str, Column]:
        """§3.1 worst case: the required subset is the entire repository."""
        data_cols = [n for n in needed if n not in self.key_columns]
        pieces: list[tuple[str, int, dict[str, np.ndarray], int]] = []
        for uri in self.index.files():
            seq_nos = [span.seq_no for span in self.index.spans(uri)]
            pieces.extend(
                self._fetch_file(uri, sorted(seq_nos), data_cols,
                                 (None, None), trace)
            )
        return self._assemble(pieces, needed, data_cols)

    # -- internals --------------------------------------------------------------------

    def _fetch_file(
        self, uri: str, seq_nos: list[int], data_cols: list[str],
        time_bounds: tuple[Optional[int], Optional[int]],
        trace: list[dict],
    ) -> list[tuple[str, int, dict[str, np.ndarray], int]]:
        if not data_cols:
            data_cols = [self._count_column]
        # (1) metadata-driven pruning of records outside the time window.
        kept = self.index.prune(uri, seq_nos, time_bounds)
        if len(kept) < len(seq_nos):
            trace.append({"op": "prune", "file": uri,
                          "dropped_records": len(seq_nos) - len(kept)})
        if not kept:
            return []

        # (2) staleness: compare repository mtime with cache admission
        # mtime.  The cache stripe lock serialises this per file, so two
        # sessions never race the drop-and-refresh sequence.
        with self.cache.file_lock(uri):
            info = self.repo.stat(uri)
            stale = not self.cache.validate_file(uri, info.mtime_ns)
            if not stale and self.promoted is not None:
                # A fully-promoted file may have no cache entries (its
                # spill is skipped), so the promoted store carries the
                # staleness sentinel that survives restarts.
                stale = self.promoted.file_is_stale(uri, info.mtime_ns)
            if stale:
                trace.append({"op": "refresh", "file": uri,
                              "reason": "mtime newer than cache admission"})
                self.handle_stale_file(uri)
                if self.metadata_refresh is not None:
                    live = {span.seq_no for span in self.index.spans(uri)}
                    dropped = [s for s in kept if s not in live]
                    if dropped:
                        trace.append({"op": "refresh", "file": uri,
                                      "records_gone": len(dropped)})
                    kept = [s for s in kept if s in live]
                    if not kept:
                        return []

        # Another session's staleness refresh may have replaced this
        # file's record layout after OUR metadata sub-plan selected keys:
        # the live index is the authority on which records still exist.
        kept = self._only_live_records(uri, kept, trace)
        if not kept:
            return []

        # (3) promoted fetch, cache fetch, or extraction — cheapest first:
        # eagerly materialized segments (disk pages through the buffer
        # pool), then the in-memory extraction cache, then the source file.
        eager_hits: list[tuple[int, dict[str, np.ndarray]]] = []
        hits: list[tuple[int, dict[str, np.ndarray]]] = []
        missing: list[int] = []
        eager_pages = 0
        # Per-file short-circuit: probing the promoted store per record
        # is pointless (and pays a lock each) for files with no units.
        promoted = self.promoted
        if promoted is not None and not promoted.file_has_units(uri):
            promoted = None
        for seq in kept:
            if promoted is not None:
                served = promoted.fetch(uri, seq, data_cols,
                                        info.mtime_ns)
                if served is not None:
                    columns, pages = served
                    eager_hits.append((seq, columns))
                    eager_pages += pages
                    continue
            cached = self.cache.get(uri, seq, data_cols)
            if cached is None:
                missing.append(seq)
            else:
                hits.append((seq, cached))
        if eager_hits:
            trace.append({"op": "promoted_fetch", "file": uri,
                          "records": len(eager_hits),
                          "rows": sum(_rows_of(c) for _s, c in eager_hits),
                          "pages_read": eager_pages,
                          "mtime_ns": info.mtime_ns})
        if hits:
            trace.append({"op": "cache_fetch", "file": uri,
                          "records": len(hits),
                          "mtime_ns": info.mtime_ns})
        pieces = [(uri, seq, cols, _rows_of(cols))
                  for seq, cols in eager_hits + hits]

        extracted_from = len(pieces)
        if missing:
            try:
                pieces.extend(self._extract_missing(
                    uri, missing, data_cols, info.mtime_ns, trace))
            except ExtractionError:
                # A refresh landed between the liveness check and the
                # extraction (concurrent sessions): retry once against
                # the refreshed index; re-raise if nothing changed.
                remaining = self._only_live_records(uri, missing, trace)
                if len(remaining) == len(missing):
                    raise
                if remaining:
                    info = self.repo.stat(uri)
                    pieces.extend(self._extract_missing(
                        uri, remaining, data_cols, info.mtime_ns, trace))
        self._record_heat(uri, data_cols, eager_hits, hits,
                          pieces[extracted_from:])
        pieces.sort(key=lambda piece: piece[1])
        return pieces

    def handle_stale_file(self, uri: str) -> None:
        """React to an observed file rewrite (shared by the query path
        and the background promoter).

        ``ExtractionCache.validate_file`` is a *consuming* check — it
        drops the file's entries and forgets its admission mtime, so
        only the caller that saw it return ``False`` knows the file
        changed.  Whoever consumes the signal must run the full
        reaction: drop promoted segments and heat (both carry per-record
        state of the *old* layout) and re-harvest the file's metadata.
        Callers hold the file's stripe lock; metadata-table DML is
        additionally globally serialised through the refresh lock.
        """
        logger.info("stale file %s: dropping cache/promoted state and "
                    "re-harvesting metadata", uri)
        if self.metrics is not None:
            self.metrics.stale_files_total.inc()
        self.oplog.record("cache", f"stale entries dropped for {uri}")
        if self.promoted is not None:
            self.promoted.invalidate_file(uri)
        if self.heat is not None:
            self.heat.forget_file(uri)
        if self.metadata_refresh is not None:
            with self._refresh_lock:
                self.metadata_refresh(uri)

    def _record_heat(self, uri: str, data_cols: list[str],
                     eager_hits: list, hits: list,
                     extracted: list) -> None:
        """Feed the heat tracker with how each unit was served.

        ``extracted`` carries the freshly extracted pieces (not just seq
        numbers) so extraction touches record payload-size estimates too
        — the promoter's budget-aware selection depends on them even for
        units the cache never managed to retain.
        """
        heat = self.heat
        if heat is None:
            return
        if eager_hits:
            heat.touch_units(
                uri, [seq for seq, _c in eager_hits], data_cols,
                kind="eager_hit",
                nbytes=sum(arr.nbytes for _s, cols in eager_hits
                           for arr in cols.values()),
            )
        if hits:
            heat.touch_units(
                uri, [seq for seq, _c in hits], data_cols,
                kind="cache_hit",
                nbytes=sum(arr.nbytes for _s, cols in hits
                           for arr in cols.values()),
            )
        if extracted:
            heat.touch_units(
                uri, [seq for _u, seq, _c, _r in extracted], data_cols,
                kind="extract",
                nbytes=sum(arr.nbytes for _u, _s, cols, _r in extracted
                           for arr in cols.values()),
            )

    def _only_live_records(self, uri: str, seq_nos: list[int],
                           trace: list[dict]) -> list[int]:
        """Drop records the (possibly concurrently refreshed) index no
        longer lists; inexact granularities are never filtered."""
        if not self.index.is_exact(uri):
            return seq_nos
        live = {span.seq_no for span in self.index.spans(uri)}
        kept = [s for s in seq_nos if s in live]
        if len(kept) < len(seq_nos):
            trace.append({"op": "refresh", "file": uri,
                          "records_gone": len(seq_nos) - len(kept)})
        return kept

    def _extract_missing(
        self, uri: str, missing: list[int], data_cols: list[str],
        mtime_ns: int, trace: list[dict],
    ) -> list[tuple[str, int, dict[str, np.ndarray], int]]:
        if self.coalescer is not None:
            return self._extract_coalesced(uri, missing, data_cols,
                                           mtime_ns, trace)
        return self._extract_direct(uri, missing, data_cols, mtime_ns, trace)

    def _extract_direct(
        self, uri: str, missing: list[int], data_cols: list[str],
        mtime_ns: int, trace: list[dict], *, protect: bool = False,
    ) -> list[tuple[str, int, dict[str, np.ndarray], int]]:
        """Extract ``missing`` records here, admit them, return pieces.

        ``protect=True`` marks each admitted entry as in-flight (exempt
        from eviction) — the coalesced path holds the protection until its
        flight is published, then lifts it.
        """
        started = time.perf_counter()
        if self.remote_extractor is not None:
            extracted = self.remote_extractor(uri, missing, data_cols)
        else:
            extracted = self.adapter.extract(self.repo, uri, missing,
                                             data_cols)
        elapsed = time.perf_counter() - started
        trace.append({
            "op": "extract", "file": uri, "records": len(missing),
            "rows": extracted.total_rows(),
            "seconds": round(elapsed, 4),
            "seq_lo": min(missing), "seq_hi": max(missing),
            "mtime_ns": mtime_ns,
        })
        if self.metrics is not None:
            self.metrics.extract_seconds.observe(elapsed)
            self.metrics.extract_records_total.inc(len(missing))
            self.metrics.extract_rows_total.inc(extracted.total_rows())
        self.oplog.record(
            "extract", f"extracted {len(missing)} records from {uri}",
            rows=extracted.total_rows(), seconds=round(elapsed, 4),
        )
        pieces = []
        # (4) lazy loading: admit the transformed records to the cache.
        for seq, columns in zip(extracted.seq_nos, extracted.per_record):
            if protect:
                self.cache.protect(uri, seq)
            self.cache.put(uri, seq, mtime_ns, columns,
                           cost_estimate=elapsed / max(len(missing), 1))
            pieces.append((uri, seq, columns, _rows_of(columns)))
        return pieces

    def _extract_coalesced(
        self, uri: str, missing: list[int], data_cols: list[str],
        mtime_ns: int, trace: list[dict],
    ) -> list[tuple[str, int, dict[str, np.ndarray], int]]:
        """Single-flight extraction: lead what we claimed, wait for the rest.

        Leading happens before waiting, so a session never blocks on
        another flight while holding unpublished claims — the no-deadlock
        argument in :mod:`repro.service.coalescer`.
        """
        outcome = self.coalescer.claim(uri, missing, data_cols, mtime_ns)
        pieces: list[tuple[str, int, dict[str, np.ndarray], int]] = []
        if outcome.led_seqs:
            try:
                led = self._extract_direct(uri, outcome.led_seqs, data_cols,
                                           mtime_ns, trace, protect=True)
            except BaseException as exc:
                self.coalescer.publish(uri, outcome.flight, {}, error=exc)
                raise
            try:
                self.coalescer.publish(
                    uri, outcome.flight,
                    {seq: columns for _uri, seq, columns, _rows in led},
                )
            finally:
                for _uri, seq, _columns, _rows in led:
                    self.cache.unprotect(uri, seq)
            pieces.extend(led)
        for flight, seqs in outcome.waits.items():
            started = time.perf_counter()
            got = self.coalescer.wait(flight, seqs, self.wait_timeout_s)
            waited = time.perf_counter() - started
            if self.metrics is not None:
                self.metrics.coalesce_wait_seconds.observe(waited)
            if got is None:
                # The flight failed, timed out or covered fewer records
                # than we need: extract those records ourselves.
                logger.debug("coalesce fallback on %s: flight covered "
                             "%d records short", uri, len(seqs))
                trace.append({"op": "coalesce_fallback", "file": uri,
                              "records": len(seqs)})
                pieces.extend(self._extract_direct(uri, seqs, data_cols,
                                                   mtime_ns, trace))
                continue
            rows = sum(_rows_of(columns) for columns in got.values())
            trace.append({
                "op": "extract_wait", "file": uri, "records": len(got),
                "rows": rows, "seconds": round(waited, 4),
                "seq_lo": min(got), "seq_hi": max(got),
                "mtime_ns": mtime_ns,
            })
            self.oplog.record(
                "extract",
                f"shared {len(got)} records of {uri} from another session",
                rows=rows, seconds=round(waited, 4),
            )
            pieces.extend(
                (uri, seq, columns, _rows_of(columns))
                for seq, columns in got.items()
            )
        return pieces

    def _assemble(
        self,
        pieces: list[tuple[str, int, dict[str, np.ndarray], int]],
        needed: list[str],
        data_cols: list[str],
    ) -> dict[str, Column]:
        uri_key, seq_key = self.key_columns
        total = sum(rows for _u, _s, _c, rows in pieces)
        out: dict[str, Column] = {}
        if uri_key in needed:
            uris = np.empty(total, dtype=object)
            cursor = 0
            for uri, _seq, _cols, rows in pieces:
                uris[cursor:cursor + rows] = uri
                cursor += rows
            column = Column(self._data_specs[uri_key].dtype, uris)
            # The pieces are uri-ordered runs, so the join dictionary is
            # known here for free — one np.repeat instead of the join
            # re-factorizing this wide column on every query.
            uniques = sorted({uri for uri, _s, _c, _r in pieces})
            code_of = {uri: i for i, uri in enumerate(uniques)}
            run_codes = np.array(
                [code_of[uri] for uri, _s, _c, _r in pieces], dtype=np.int64
            )
            run_rows = np.array([rows for _u, _s, _c, rows in pieces],
                                dtype=np.int64)
            column.set_dictionary(np.repeat(run_codes, run_rows), uniques)
            out[uri_key] = column
        if seq_key in needed:
            seqs = np.empty(total, dtype=np.int64)
            cursor = 0
            for _uri, seq, _cols, rows in pieces:
                seqs[cursor:cursor + rows] = seq
                cursor += rows
            out[seq_key] = Column.from_numpy(
                self._data_specs[seq_key].dtype, seqs
            )
        for name in data_cols:
            spec = self._data_specs.get(name)
            if spec is None:
                raise ExtractionError(f"unknown data column {name!r}")
            if pieces:
                values = np.concatenate(
                    [cols[name] for _u, _s, cols, _r in pieces]
                )
            else:
                values = np.empty(0, dtype=np.int64)
            out[name] = Column.from_numpy(spec.dtype, values)
        return out


def _rows_of(columns: dict[str, np.ndarray]) -> int:
    return len(next(iter(columns.values()))) if columns else 0


@dataclass
class LazySetup:
    """Handles returned by :meth:`LazyETL.initial_load`."""

    report: ETLReport
    harvest: HarvestResult
    binding: LazyDataBinding


class LazyETL:
    """Metadata-only initial loading for a warehouse over a repository."""

    def __init__(
        self,
        db: Database,
        repo: Repository,
        adapter: SourceAdapter,
        *,
        schema: str = "mseed",
        granularity: Granularity = Granularity.RECORD,
        cache_budget_bytes: int = 256 * 1024 * 1024,
        cache_policy: str = "lru",
    ) -> None:
        self.db = db
        self.repo = repo
        self.adapter = adapter
        self.schema = schema
        self.granularity = granularity
        self.cache = ExtractionCache(cache_budget_bytes, cache_policy)
        self.index = RecordIndex()
        self.heat = AccessHeatTracker()
        self.binding: Optional[LazyDataBinding] = None

    @property
    def files_table(self) -> str:
        return f"{self.schema}.files"

    @property
    def records_table(self) -> str:
        return f"{self.schema}.records"

    @property
    def data_table(self) -> str:
        return f"{self.schema}.data"

    def create_tables(self) -> None:
        """Create the three-table warehouse schema (F, R, virtual D)."""
        catalog = self.db.catalog
        catalog.create_schema(self.schema, if_not_exists=True)
        catalog.create_table(
            (self.schema, "files"),
            TableSchema(columns=self.adapter.file_columns(),
                        primary_key=("file_location",)),
        )
        catalog.create_table(
            (self.schema, "records"),
            TableSchema(
                columns=self.adapter.record_columns(),
                primary_key=("file_location", "seq_no"),
                foreign_keys=[
                    ForeignKeySpec(
                        columns=("file_location",),
                        ref_table=self.files_table,
                        ref_columns=("file_location",),
                    )
                ],
            ),
        )
        catalog.create_table(
            (self.schema, "data"),
            TableSchema(
                columns=self.adapter.data_columns(),
                foreign_keys=[
                    ForeignKeySpec(
                        columns=("file_location", "seq_no"),
                        ref_table=self.records_table,
                        ref_columns=("file_location", "seq_no"),
                    )
                ],
            ),
        )

    def warm_start(self, store) -> LazySetup:
        """Restart from a checkpoint instead of re-harvesting.

        The persisted F/R tables are *attached* (disk-backed, columns
        fault in lazily) and the record index is rebuilt from R's rows —
        metadata, cheap by the paper's own argument.  The extraction
        cache restores from its snapshot, so queries that re-visit
        checkpointed records are pure cache hits: zero re-extraction.
        """
        started = time.perf_counter()
        # Adopt the checkpoint's granularity wholesale: the persisted R
        # rows, record index and cache entries were produced at it, and a
        # mismatched instance setting would mix seq_no schemes on refresh.
        self.granularity = Granularity(
            store.get_meta("granularity", self.granularity.value)
        )
        self.create_tables()
        self.db.attach(store)
        self._rebuild_index_from_records(self.granularity)
        restored = self.cache.restore(store)
        self.heat.import_state(store.get_meta("heat_state"))
        self.binding = LazyDataBinding(self.repo, self.adapter, self.index,
                                       self.cache, self.db.oplog,
                                       metadata_refresh=self.refresh_file_metadata,
                                       heat=self.heat)
        self.db.register_lazy_table(self.data_table, self.binding)
        files_table = self.db.catalog.table((self.schema, "files"))
        records_table = self.db.catalog.table((self.schema, "records"))
        report = ETLReport(
            strategy=f"lazy[{self.granularity.value}]+warm",
            seconds=time.perf_counter() - started,
            files_listed=files_table.row_count,
            files_opened=0,
            records_loaded=records_table.row_count,
            samples_loaded=0,
            bytes_read=0,
        )
        self.db.oplog.record(
            "etl", "warm start from checkpoint",
            files=report.files_listed, records=report.records_loaded,
            cache_entries=restored, seconds=round(report.seconds, 4),
        )
        return LazySetup(report=report,
                         harvest=HarvestResult(granularity=self.granularity),
                         binding=self.binding)

    def checkpoint(self, store) -> int:
        """Persist metadata tables + extraction cache for warm restarts."""
        if self.db.catalog.store is None:
            self.db.attach(store)
        store = self.db.catalog.store
        store.set_meta("granularity", self.granularity.value)
        # Heat survives restarts: a warm-started warehouse resumes
        # promotion where the previous process left off.
        store.set_meta("heat_state", self.heat.export_state())
        self.db.checkpoint()
        entries = self.cache.spill(store, skip=self._covered_by_promotion)
        self.db.oplog.record("storage", "lazy warehouse checkpoint",
                             cache_entries=entries)
        return entries

    def _covered_by_promotion(self, uri: str, seq_no: int, mtime_ns: int,
                              columns: dict) -> bool:
        """True when a promoted segment already persists this cache
        entry (same generation, at least the same columns) — spilling it
        again would store the hot set twice and restore dead weight."""
        promoted = None if self.binding is None else self.binding.promoted
        if promoted is None:
            return False
        unit = promoted.unit(uri, seq_no)
        return (unit is not None and unit.mtime_ns == mtime_ns
                and set(columns) <= set(unit.columns))

    def _rebuild_index_from_records(self, exact_granularity: Granularity) -> None:
        """Reconstruct the in-memory record index from the R table."""
        records = self.db.catalog.table((self.schema, "records"))
        uris = records.column("file_location").values
        seqs = records.column("seq_no").values
        starts = records.column("start_time").values
        ends = records.column("end_time").values
        freqs = records.column("frequency").values
        counts = records.column("sample_count").values
        per_file: dict[str, list[RecordMeta]] = {}
        for i in range(records.row_count):
            uri = str(uris[i])
            per_file.setdefault(uri, []).append(RecordMeta(
                uri=uri,
                seq_no=int(seqs[i]),
                start_time_us=int(starts[i]),
                end_time_us=int(ends[i]),
                frequency=float(freqs[i]),
                sample_count=int(counts[i]),
            ))
        exact = exact_granularity is Granularity.RECORD
        for uri, metas in per_file.items():
            self.index.replace_file(uri, metas, exact=exact)

    def initial_load(self) -> LazySetup:
        """The paper's instant-on bootstrap: load metadata, bind D lazily."""
        started = time.perf_counter()
        self.repo.reset_counters()
        harvest = harvest_repository(self.repo, self.adapter,
                                     self.granularity, self.db.oplog)
        self.load_metadata(harvest)
        self.index.load(harvest)
        self.binding = LazyDataBinding(self.repo, self.adapter, self.index,
                                       self.cache, self.db.oplog,
                                       metadata_refresh=self.refresh_file_metadata,
                                       heat=self.heat)
        self.db.register_lazy_table(self.data_table, self.binding)
        report = ETLReport(
            strategy=f"lazy[{self.granularity.value}]",
            seconds=time.perf_counter() - started,
            files_listed=len(harvest.files),
            files_opened=harvest.files_opened,
            records_loaded=len(harvest.records),
            samples_loaded=0,
            bytes_read=harvest.bytes_read,
        )
        self.db.oplog.record(
            "etl", "lazy initial load complete",
            files=report.files_listed, records=report.records_loaded,
            seconds=round(report.seconds, 4),
        )
        return LazySetup(report=report, harvest=harvest, binding=self.binding)

    def load_metadata(self, harvest: HarvestResult) -> None:
        """Bulk insert the harvested F and R rows."""
        file_rows = [self.adapter.file_row(m) for m in harvest.files]
        record_rows = [self.adapter.record_row(m) for m in harvest.records]
        if file_rows:
            self.db.bulk_insert(
                (self.schema, "files"), _columnar(file_rows),
                enforce_keys=True,
            )
        if record_rows:
            self.db.bulk_insert(
                (self.schema, "records"), _columnar(record_rows),
                enforce_keys=True,
            )

    # -- single-file metadata maintenance ---------------------------------------

    def harvest_single(self, info) -> tuple[list[dict], list[dict]]:
        """Harvest one file at the configured granularity.

        Updates the record index and returns the (F rows, R rows) to
        insert.  Shared by the query-time staleness hook and the explicit
        metadata sync.
        """
        from repro.etl.metadata import _pseudo_record

        if self.granularity is Granularity.FILENAME:
            meta = self.adapter.harvest_from_filename(info)
            if meta is None:
                meta, records = self.adapter.harvest_file(
                    self.repo, info, per_record=False)
            else:
                records = [_pseudo_record(meta)]
        else:
            meta, records = self.adapter.harvest_file(
                self.repo, info,
                per_record=self.granularity is Granularity.RECORD,
            )
        self.index.replace_file(
            info.uri, records,
            exact=self.granularity is Granularity.RECORD,
        )
        return ([self.adapter.file_row(meta)],
                [self.adapter.record_row(r) for r in records])

    def delete_file_metadata(self, uri: str) -> None:
        escaped = uri.replace("'", "''")
        self.db.execute(
            f"DELETE FROM {self.records_table} "
            f"WHERE file_location = '{escaped}'"
        )
        self.db.execute(
            f"DELETE FROM {self.files_table} "
            f"WHERE file_location = '{escaped}'"
        )

    def refresh_file_metadata(self, uri: str) -> None:
        """Re-harvest one changed file's F/R rows and record index."""
        info = self.repo.stat(uri)
        self.delete_file_metadata(uri)
        file_rows, record_rows = self.harvest_single(info)
        if file_rows:
            self.db.bulk_insert((self.schema, "files"),
                                _columnar(file_rows), enforce_keys=True)
        if record_rows:
            self.db.bulk_insert((self.schema, "records"),
                                _columnar(record_rows), enforce_keys=True)
        self.db.oplog.record("refresh", f"metadata refreshed for {uri}",
                             records=len(record_rows))


def _columnar(rows: list[dict[str, object]]) -> dict[str, list]:
    """Pivot row dicts into column lists."""
    if not rows:
        return {}
    return {key: [row[key] for row in rows] for key in rows[0]}
