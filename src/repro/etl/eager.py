"""Eager ETL — the traditional baseline the paper compares against.

Everything is extracted, transformed and bulk-loaded before the first
query can run: metadata *and* every sample of every file, with the
record-level transforms (timestamp materialisation) applied up front.
This is the "high initial investment of time" of §1, and the storage
blow-up of §4 (a Steim-compressed repository grows several-fold once the
samples and their 8-byte timestamps are materialised in the warehouse).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.db.column import Column
from repro.db.exec.engine import Database
from repro.etl.framework import ETLReport, SourceAdapter
from repro.etl.lazy import LazyETL, _columnar
from repro.etl.metadata import Granularity, HarvestResult, harvest_repository
from repro.mseed.repository import Repository


class EagerETL:
    """Full extract → transform → bulk load, before any query."""

    def __init__(self, db: Database, repo: Repository,
                 adapter: SourceAdapter, *, schema: str = "mseed") -> None:
        self.db = db
        self.repo = repo
        self.adapter = adapter
        self.schema = schema
        # Table creation is shared with the lazy pipeline (same schema).
        self._ddl = LazyETL(db, repo, adapter, schema=schema)

    @property
    def data_table(self) -> str:
        return f"{self.schema}.data"

    def create_tables(self) -> None:
        self._ddl.create_tables()

    def initial_load(self) -> ETLReport:
        """Load metadata and all actual data; returns the cost report."""
        started = time.perf_counter()
        self.repo.reset_counters()
        harvest = harvest_repository(self.repo, self.adapter,
                                     Granularity.RECORD, self.db.oplog)
        self._ddl.load_metadata(harvest)
        samples = self._load_all_data(harvest)
        report = ETLReport(
            strategy="eager",
            seconds=time.perf_counter() - started,
            files_listed=len(harvest.files),
            files_opened=len(harvest.files),
            records_loaded=len(harvest.records),
            samples_loaded=samples,
            bytes_read=self.repo.bytes_read,
        )
        self.db.oplog.record(
            "etl", "eager initial load complete",
            files=report.files_listed, samples=samples,
            seconds=round(report.seconds, 4),
        )
        return report

    def _load_all_data(self, harvest: HarvestResult) -> int:
        data_cols = [spec.name for spec in self.adapter.data_columns()
                     if spec.name not in self.adapter.key_columns]
        total = 0
        for meta in harvest.files:
            total += self.load_file_data(meta.uri, data_cols)
        return total

    def load_file_data(self, uri: str,
                       data_cols: Optional[list[str]] = None) -> int:
        """Extract one file completely and append its rows to D."""
        if data_cols is None:
            data_cols = [spec.name for spec in self.adapter.data_columns()
                         if spec.name not in self.adapter.key_columns]
        extracted = self.adapter.extract(self.repo, uri, None, data_cols)
        uri_key, seq_key = self.adapter.key_columns
        rows = extracted.total_rows()
        if rows == 0:
            return 0
        uris = np.empty(rows, dtype=object)
        seqs = np.empty(rows, dtype=np.int64)
        cursor = 0
        for seq, columns in zip(extracted.seq_nos, extracted.per_record):
            count = len(next(iter(columns.values()))) if columns else 0
            uris[cursor:cursor + count] = uri
            seqs[cursor:cursor + count] = seq
            cursor += count
        batch: dict[str, object] = {uri_key: uris, seq_key: seqs}
        for name in data_cols:
            batch[name] = np.concatenate(
                [rec[name] for rec in extracted.per_record]
            )
        self.db.bulk_insert((self.schema, "data"), batch)
        return rows

    def delete_file_data(self, uri: str) -> None:
        """Drop one file's rows from D (used by eager refresh)."""
        escaped = uri.replace("'", "''")
        self.db.execute(
            f"DELETE FROM {self.data_table} WHERE file_location = '{escaped}'"
        )
