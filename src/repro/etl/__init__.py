"""Lazy ETL — the paper's primary contribution.

Three interchangeable ingestion strategies over the same warehouse schema:

* :class:`~repro.etl.lazy.LazyETL` — the paper's system: initial loading
  covers only metadata; actual data is extracted/transformed/loaded at
  query time through a run-time plan rewrite, with an LRU extraction cache
  and mtime-based lazy refresh.
* :class:`~repro.etl.eager.EagerETL` — the traditional baseline: extract,
  transform and bulk load everything before the first query.
* :class:`~repro.etl.external.ExternalTableETL` — the external-table /
  NoDB-style comparator from §2: no up-front loading at all, but every
  query re-extracts the entire repository.
"""

from repro.etl.framework import SourceAdapter, ETLReport
from repro.etl.metadata import (
    Granularity,
    FileMeta,
    RecordMeta,
    HarvestResult,
    harvest_repository,
)
from repro.etl.cache import ExtractionCache, CacheStats
from repro.etl.heat import AccessHeatTracker, HeatUnit
from repro.etl.mseed_adapter import MSeedAdapter
from repro.etl.csv_adapter import CsvDirAdapter
from repro.etl.lazy import LazyETL, LazyDataBinding
from repro.etl.eager import EagerETL
from repro.etl.external import ExternalTableETL, ExternalBinding
from repro.etl.refresh import MetadataSync, SyncReport

__all__ = [
    "SourceAdapter",
    "ETLReport",
    "Granularity",
    "FileMeta",
    "RecordMeta",
    "HarvestResult",
    "harvest_repository",
    "ExtractionCache",
    "CacheStats",
    "AccessHeatTracker",
    "HeatUnit",
    "MSeedAdapter",
    "CsvDirAdapter",
    "LazyETL",
    "LazyDataBinding",
    "EagerETL",
    "ExternalTableETL",
    "ExternalBinding",
    "MetadataSync",
    "SyncReport",
]
