"""External-table / NoDB-style baseline (§2 related work).

Commercial "external tables" expose file data as if it were a table but
"require every query to access the entire dataset, because they are
actually intended for loading a file's content".  This module models that
comparator: a single wide virtual table carrying file metadata, record
metadata and samples side by side, whose binding can only do a full
repository scan — no metadata tables, no extraction cache, no pruning.

A `dataview` view over the wide table (with its alias map widened so the
paper's ``F.``/``R.``/``D.`` qualifiers resolve) lets the exact same SQL
run against all three ingestion strategies.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.db.column import Column
from repro.db.exec.engine import Database
from repro.db.table import ColumnSpec, TableSchema
from repro.etl.framework import ETLReport, SourceAdapter
from repro.mseed.repository import Repository


class ExternalBinding:
    """A LazyTableBinding that only supports full scans (no keys)."""

    def __init__(self, repo: Repository, adapter: SourceAdapter) -> None:
        self.repo = repo
        self.adapter = adapter
        self.scans = 0

    @property
    def key_columns(self) -> tuple[str, ...]:
        return ()

    @property
    def range_column(self) -> Optional[str]:
        return None

    @property
    def cache_epoch(self) -> int:
        # Every scan re-reads the repository, so results are always fresh —
        # and never recyclable: the epoch advances per scan.
        return self.scans

    def fetch(self, keys, needed, time_bounds, trace):  # pragma: no cover
        raise NotImplementedError("external tables cannot fetch selectively")

    def scan_all(self, needed: list[str],
                 trace: list[dict]) -> dict[str, Column]:
        """Harvest + extract the whole repository, every single query."""
        self.scans += 1
        started = time.perf_counter()
        data_cols = [
            spec.name for spec in self.adapter.data_columns()
            if spec.name not in self.adapter.key_columns
        ]
        wanted_data = [n for n in needed if n in data_cols]
        chunks: list[dict[str, object]] = []
        total_rows = 0
        for info in self.repo.list_files():
            meta, records = self.adapter.harvest_file(self.repo, info,
                                                      per_record=True)
            extracted = self.adapter.extract(
                self.repo, info.uri, None, wanted_data or data_cols
            )
            record_by_seq = {r.seq_no: r for r in records}
            file_row = self.adapter.file_row(meta)
            for seq, columns in zip(extracted.seq_nos, extracted.per_record):
                rows = len(next(iter(columns.values()))) if columns else 0
                record_row = self.adapter.record_row(record_by_seq[seq])
                chunks.append({
                    "file_row": file_row,
                    "record_row": record_row,
                    "seq": seq,
                    "uri": info.uri,
                    "columns": columns,
                    "rows": rows,
                })
                total_rows += rows
        trace.append({
            "op": "external_scan",
            "files": len(self.repo.list_files()),
            "rows": total_rows,
            "seconds": round(time.perf_counter() - started, 4),
        })
        return self._assemble(chunks, needed, total_rows)

    def _assemble(self, chunks: list[dict[str, object]], needed: list[str],
                  total_rows: int) -> dict[str, Column]:
        specs = {spec.name: spec for spec in external_table_columns(self.adapter)}
        out: dict[str, Column] = {}
        for name in needed:
            spec = specs[name]
            if name in ("file_location", "seq_no"):
                values = np.empty(total_rows,
                                  dtype=object if name == "file_location"
                                  else np.int64)
                cursor = 0
                for chunk in chunks:
                    value = chunk["uri"] if name == "file_location" else chunk["seq"]
                    values[cursor:cursor + chunk["rows"]] = value  # type: ignore[index]
                    cursor += chunk["rows"]  # type: ignore[operator]
                out[name] = Column.from_numpy(spec.dtype, values)
                continue
            sample = chunks[0]["columns"] if chunks else {}
            if chunks and name in sample:  # type: ignore[operator]
                values = np.concatenate(
                    [chunk["columns"][name] for chunk in chunks]  # type: ignore[index]
                ) if chunks else np.empty(0)
                out[name] = Column.from_numpy(spec.dtype, values)
                continue
            # A metadata attribute repeated across the record's samples.
            values = np.empty(
                total_rows,
                dtype=object if spec.dtype.name == "VARCHAR" else np.float64,
            )
            cursor = 0
            for chunk in chunks:
                row_source = (
                    chunk["record_row"]
                    if name in chunk["record_row"] else chunk["file_row"]  # type: ignore[operator]
                )
                values[cursor:cursor + chunk["rows"]] = row_source[name]  # type: ignore[index]
                cursor += chunk["rows"]  # type: ignore[operator]
            out[name] = Column.from_values(spec.dtype, list(values)) \
                if spec.dtype.name == "VARCHAR" else \
                Column.from_numpy(spec.dtype, values)
        return out


def external_table_columns(adapter: SourceAdapter) -> list[ColumnSpec]:
    """The wide (universal-table) schema: F ∪ R ∪ D without duplicates.

    Name collisions between file and record metadata (start_time, ...) are
    resolved in favour of the *record*, matching what the dataview exposes.
    """
    out: dict[str, ColumnSpec] = {}
    for spec in adapter.file_columns():
        out[spec.name] = ColumnSpec(spec.name, spec.dtype)
    for spec in adapter.record_columns():
        out[spec.name] = ColumnSpec(spec.name, spec.dtype)
    for spec in adapter.data_columns():
        out[spec.name] = ColumnSpec(spec.name, spec.dtype)
    return list(out.values())


class ExternalTableETL:
    """Set up the external-table warehouse (no loading happens at all)."""

    def __init__(self, db: Database, repo: Repository,
                 adapter: SourceAdapter, *, schema: str = "mseed") -> None:
        self.db = db
        self.repo = repo
        self.adapter = adapter
        self.schema = schema
        self.binding: Optional[ExternalBinding] = None

    @property
    def raw_table(self) -> str:
        return f"{self.schema}.raw"

    def create_tables(self) -> None:
        self.db.catalog.create_schema(self.schema, if_not_exists=True)
        self.db.catalog.create_table(
            (self.schema, "raw"),
            TableSchema(columns=external_table_columns(self.adapter)),
        )

    def initial_load(self) -> ETLReport:
        """Registration only — external tables never load anything."""
        started = time.perf_counter()
        files = self.repo.list_files()
        self.binding = ExternalBinding(self.repo, self.adapter)
        self.db.register_lazy_table(self.raw_table, self.binding)
        return ETLReport(
            strategy="external",
            seconds=time.perf_counter() - started,
            files_listed=len(files),
            files_opened=0,
            records_loaded=0,
            samples_loaded=0,
            bytes_read=0,
        )
