"""Single-flight extraction coalescing.

When N concurrent sessions need the same (file, record) ranges, exactly
one of them — the *leader* — runs the extraction; the others become
*waiters* and share the leader's result the moment it is published.  The
work is deduplicated even when the extraction cache cannot retain the
records (tiny budget, eviction storm): results travel through the flight
object itself, not the cache.

Claims are **record-grain**: a flight key is ``(uri, seq_no, column
signature, file mtime)``, so two queries that overlap on some records of
a file coalesce on the overlap and extract their private remainders
independently.  The mtime is the file *generation*: a session that has
observed a rewrite claims under the new mtime and can never be handed
rows from a flight that is still extracting the old content.  One
:meth:`ExtractionCoalescer.claim` call groups all records it wins the
lead for into a single :class:`ExtractionFlight`, so the leader still
extracts its records in one adapter call per file.

The flight table is lock-striped by URI hash — claims for different
files never contend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

FlightKey = tuple[str, int, tuple[str, ...], int]

STRIPE_COUNT = 16


class ExtractionFlight:
    """One in-flight extraction: a leader's promise of per-record columns."""

    __slots__ = ("uri", "done", "results", "error")

    def __init__(self, uri: str) -> None:
        self.uri = uri
        self.done = threading.Event()
        self.results: dict[int, dict[str, np.ndarray]] = {}
        self.error: Optional[BaseException] = None


@dataclass
class CoalescerStats:
    """Counters the service and bench E12 report."""

    flights_led: int = 0        # claim batches that extracted
    records_led: int = 0        # records extracted by leaders
    records_waited: int = 0     # records obtained by waiting on a flight
    wait_timeouts: int = 0      # waits that gave up and self-extracted
    flight_errors: int = 0      # flights whose leader failed

    def snapshot(self) -> dict[str, int]:
        return {
            "flights_led": self.flights_led,
            "records_led": self.records_led,
            "records_waited": self.records_waited,
            "wait_timeouts": self.wait_timeouts,
            "flight_errors": self.flight_errors,
        }


@dataclass
class ClaimOutcome:
    """What one claim call won and what it must wait for."""

    led_seqs: list[int] = field(default_factory=list)
    flight: Optional[ExtractionFlight] = None  # set iff led_seqs non-empty
    waits: dict[ExtractionFlight, list[int]] = field(default_factory=dict)


class ExtractionCoalescer:
    """Single-flight table for record extractions, striped by URI."""

    def __init__(self) -> None:
        # One (lock, flight table) pair per stripe: operations on one URI
        # only ever touch its own stripe's table, so stripes are fully
        # independent.
        self._stripes = [threading.Lock() for _ in range(STRIPE_COUNT)]
        self._tables: list[dict[FlightKey, ExtractionFlight]] = [
            {} for _ in range(STRIPE_COUNT)
        ]
        self.stats = CoalescerStats()
        self._stats_lock = threading.Lock()

    def _stripe_index(self, uri: str) -> int:
        return hash(uri) % STRIPE_COUNT

    # -- claiming ----------------------------------------------------------------

    def claim(self, uri: str, seq_nos: list[int], columns: list[str],
              mtime_ns: int = 0) -> ClaimOutcome:
        """Partition ``seq_nos`` into records this caller leads vs waits on.

        Atomic per URI stripe: every record is either registered under a
        fresh flight owned by this caller (the caller MUST later
        :meth:`publish` that flight) or attached to another session's
        flight already in progress.  ``mtime_ns`` is the file generation
        the caller observed — claims against different generations never
        coalesce.
        """
        colsig = tuple(sorted(columns))
        outcome = ClaimOutcome()
        stripe = self._stripe_index(uri)
        with self._stripes[stripe]:
            table = self._tables[stripe]
            for seq in seq_nos:
                key = (uri, seq, colsig, mtime_ns)
                flight = table.get(key)
                if flight is None:
                    if outcome.flight is None:
                        outcome.flight = ExtractionFlight(uri)
                    table[key] = outcome.flight
                    outcome.led_seqs.append(seq)
                else:
                    outcome.waits.setdefault(flight, []).append(seq)
        return outcome

    def publish(self, uri: str, flight: ExtractionFlight,
                results: dict[int, dict[str, np.ndarray]],
                error: Optional[BaseException] = None) -> None:
        """Resolve a led flight: hand results (or the failure) to waiters
        and retire every key the flight holds so later queries start
        fresh.  A leader MUST call this exactly once per led flight, even
        when extraction found nothing (empty ``results``) — waiters for
        records the flight did not produce fall back to self-extraction.
        """
        flight.results = results
        flight.error = error
        stripe = self._stripe_index(uri)
        with self._stripes[stripe]:
            table = self._tables[stripe]
            doomed = [key for key, f in table.items() if f is flight]
            for key in doomed:
                del table[key]
        with self._stats_lock:
            if error is None:
                self.stats.flights_led += 1
                self.stats.records_led += len(results)
            else:
                self.stats.flight_errors += 1
        flight.done.set()

    # -- waiting -----------------------------------------------------------------

    def wait(self, flight: ExtractionFlight, seq_nos: list[int],
             timeout: Optional[float]) -> Optional[dict[int, dict[str, np.ndarray]]]:
        """Block until the flight resolves; return the requested records.

        Returns ``None`` when the flight failed, timed out, or did not
        produce every requested record — callers fall back to extracting
        those records themselves (correctness over sharing).
        """
        if not flight.done.wait(timeout):
            with self._stats_lock:
                self.stats.wait_timeouts += 1
            return None
        if flight.error is not None:
            return None
        got = {seq: flight.results[seq] for seq in seq_nos
               if seq in flight.results}
        if len(got) != len(seq_nos):
            return None
        with self._stats_lock:
            self.stats.records_waited += len(got)
        return got

    # -- introspection -----------------------------------------------------------

    def in_flight(self) -> int:
        """Advisory count of registered flight keys (racy read is fine)."""
        return sum(len(table) for table in self._tables)
