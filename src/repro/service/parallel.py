"""Parallel per-file extraction executor.

A single query's lazy fetch often touches many repository files; this
executor fans the per-file extraction work of ONE query across a shared
worker pool so file reads overlap (file I/O releases the GIL, as do the
vectorised Steim decodes).  Results come back in submission order, so
query output stays deterministic regardless of completion order.

The pool is shared by every session of a
:class:`~repro.service.service.WarehouseService`.  Extraction tasks never
submit further tasks, so a saturated pool queues work but cannot
deadlock; coalesced waits are likewise safe because a flight only exists
once its leader is already running (see :mod:`repro.service.coalescer`).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class ExtractorStats:
    batches: int = 0          # fan-out calls that used the pool
    tasks: int = 0            # per-file tasks executed on the pool
    serial_batches: int = 0   # calls too small to be worth fanning out


class ParallelExtractor:
    """A bounded thread pool that maps a function over per-file work."""

    def __init__(self, max_workers: int = 4,
                 *, min_fanout: int = 2) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.min_fanout = min_fanout
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="repro-extract",
        )
        self._closed = False
        self.stats = ExtractorStats()
        self._stats_lock = threading.Lock()

    def map_ordered(self, fn: Callable[[T], R],
                    items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, in parallel, preserving item order.

        Falls back to a plain serial loop when the batch is too small to
        amortise scheduling, or after :meth:`close`.  Exceptions propagate
        (the first failing item's, in item order) after all tasks finish.
        """
        if self._closed or len(items) < self.min_fanout:
            with self._stats_lock:
                self.stats.serial_batches += 1
            return [fn(item) for item in items]
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.tasks += len(items)
        futures = [self._pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc: object) -> Optional[bool]:
        self.close()
        return None
